#include "core/policy_evaluator.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <optional>
#include <utility>

#include "common/trace.h"
#include "expr/implication.h"

namespace cgq {

namespace {

// One element of the flattened A_q: a base attribute together with the
// aggregate function applied to the output it appears in (if any).
struct AttrFnPair {
  BaseAttr base;
  std::optional<AggFn> fn;

  bool operator<(const AttrFnPair& other) const {
    if (!(base == other.base)) return base < other.base;
    if (fn.has_value() != other.fn.has_value()) return !fn.has_value();
    if (!fn) return false;
    return static_cast<int>(*fn) < static_cast<int>(*other.fn);
  }
};

// Single-instance premise: conjuncts whose column refs all belong to
// `alias`.
std::vector<ExprPtr> PremiseForAlias(const QuerySummary& summary,
                                     const std::string& alias) {
  std::vector<ExprPtr> premise;
  for (const ExprPtr& c : summary.predicate) {
    std::vector<const Expr*> refs;
    c->CollectColumnRefs(&refs);
    bool all_match = !refs.empty();
    for (const Expr* r : refs) {
      all_match &= (r->qualifier() == alias);
    }
    if (all_match || refs.empty()) premise.push_back(c);
  }
  return premise;
}

// One relation instance's premise, hashed once per Evaluate() call and
// tested against every policy of its table.
struct AliasPremise {
  const std::string* table;
  std::vector<ExprPtr> premise;
  ExprFingerprint fp;
  /// Prebuilt premise side of the implication test (hierarchical index
  /// mode only). When `simple()`, candidate predicates are tested directly
  /// against it — bit-identical to PredicateImplies but without per-test
  /// hashing or cache locking.
  std::optional<PremiseConstraints> constraints;
  /// Columns the premise mentions (bit i = column i of `table`). Only
  /// meaningful when `maskable`: every ref mapped to a bit, no empty IN
  /// list anywhere (a contradictory OR branch can imply atoms over columns
  /// the premise never names), and the premise itself not contradictory
  /// (false implies anything). Computed in hierarchical index mode only.
  uint64_t premise_mask = 0;
  bool maskable = false;
};

// Accumulates the premise's column mask; clears `*ok` on unmappable refs
// and on empty IN lists (see AliasPremise::maskable).
void AccumulatePremiseMask(const Expr& e, const Schema* schema,
                           uint64_t* mask, bool* ok) {
  if (e.op() == ExprOp::kColumnRef) {
    std::optional<size_t> i =
        schema != nullptr ? schema->IndexOf(e.column()) : std::nullopt;
    if (!i || *i >= 64) {
      *ok = false;
      return;
    }
    *mask |= uint64_t{1} << *i;
    return;
  }
  if (e.op() == ExprOp::kIn && e.in_list().empty()) {
    *ok = false;
    return;
  }
  for (const ExprPtr& c : e.children()) {
    AccumulatePremiseMask(*c, schema, mask, ok);
  }
}

// Finalizer of the bucket-memo key components (splitmix64), so structured
// inputs (ordinals, epochs) spread over all 64 bits before they are XORed
// into the premise fingerprint.
uint64_t MixKey(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

// One step of a 64-bit hash fold (boost-style combine, splitmix-finalized
// by the caller via MixKey where needed).
uint64_t FoldHash(uint64_t h, uint64_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

// 128-bit structural fingerprint of everything Evaluate() reads from a
// summary: the disclosed (attribute, aggregate fn) pairs, the predicate
// conjuncts (qualifiers intact — they determine the per-alias premises),
// the grouping attributes, the alias → table binding, and the aggregate
// flag. Keys the catalog's evaluation memo; a collision is as (im)probable
// as an implication-cache one.
ExprFingerprint SummaryFingerprint(const QuerySummary& summary) {
  ExprFingerprint fp = FingerprintConjuncts(summary.predicate);
  const std::hash<std::string> hs;
  uint64_t h = 0x5851f42d4c957f2dULL;
  for (const auto& [id, out] : summary.outputs) {
    for (const BaseAttr& b : out.bases) {
      h = FoldHash(h, hs(b.table));
      h = FoldHash(h, hs(b.column));
    }
    h = FoldHash(h, out.fn ? 2 + static_cast<uint64_t>(*out.fn) : 1);
  }
  for (const BaseAttr& g : summary.group_attrs) {
    h = FoldHash(h, hs(g.table));
    h = FoldHash(h, hs(g.column));
  }
  for (const auto& [alias, table] : summary.alias_tables) {
    h = FoldHash(h, hs(alias));
    h = FoldHash(h, hs(table));
  }
  h = FoldHash(h, summary.is_aggregate ? 3 : 7);
  fp.hi = MixKey(fp.hi ^ h);
  fp.lo = MixKey(fp.lo + (h * 0xc4ceb9fe1a85ec53ULL | 1));
  return fp;
}

// What one policy expression contributes; computed independently per policy
// (possibly on a pool thread), applied sequentially in policy order.
// Grants carry the disclosed pair's position so the merge is an indexed
// store, not a map lookup.
struct PolicyOutcome {
  bool matched = false;  ///< relevance: A_q ∩ (A_e ∪ G_e) ≠ ∅
  bool eta = false;      ///< implication held for every instance
  int32_t implication_tests = 0;
  int32_t cache_hits = 0;
  int32_t cache_misses = 0;  ///< tests routed to the cache that missed
  int32_t prefilter_skips = 0;
  std::vector<size_t> grants;
};

}  // namespace

LocationSet PolicyEvaluator::Evaluate(const QuerySummary& summary,
                                      LocationId db,
                                      std::vector<AttrGrant>* grants) const {
  auto start = std::chrono::steady_clock::now();
  TraceSpan span("policy_eval");
  span.AddArg("db", static_cast<int64_t>(db));
  PolicyEvalStats local;
  local.evaluations = 1;
  auto merge_stats = [&] {
    local.eval_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.evaluations += local.evaluations;
    stats_.candidates += local.candidates;
    stats_.expressions_matched += local.expressions_matched;
    stats_.implication_tests += local.implication_tests;
    stats_.implication_cache_hits += local.implication_cache_hits;
    stats_.implication_cache_misses += local.implication_cache_misses;
    stats_.prefilter_skips += local.prefilter_skips;
    stats_.eta += local.eta;
    stats_.eval_ms += local.eval_ms;
  };

  const bool hier =
      policies_->index_mode() == PolicyIndexMode::kHierarchical;

  // Hierarchical mode: a summary evaluated before (same database, same
  // policy epoch) resolves from the catalog's evaluation memo without
  // touching the index — except when the caller wants provenance, which
  // the memo does not store. The stored set is the verbatim result of the
  // full evaluation below, so decisions are identical either way.
  uint64_t memo_a = 0, memo_b = 0;
  if (hier) {
    const ExprFingerprint sfp = SummaryFingerprint(summary);
    memo_a = sfp.hi ^ MixKey((static_cast<uint64_t>(db) << 1) +
                             policies_->epoch() * 0x9e3779b97f4a7c15ULL);
    memo_b = sfp.lo;
    if (grants == nullptr) {
      if (std::optional<LocationSet> hit =
              policies_->FindEvalMemo(memo_a, memo_b)) {
        merge_stats();
        span.AddArg("policies", static_cast<int64_t>(0));
        return *hit;
      }
    }
  }

  // Flatten A_q into (base attribute, aggregate fn) pairs. Besides the
  // output attributes, attributes accessed by predicates and grouping are
  // disclosed as well (cf. §4 Example 1/2: the output of
  // Γsum(acctbal)(σ name='abc'(C)) "cannot be shipped at all" because the
  // selection accesses `name`). They join A_q as un-aggregated pairs.
  std::map<AttrFnPair, LocationSet> legal;
  for (const auto& [id, out] : summary.outputs) {
    for (const BaseAttr& b : out.bases) {
      legal.emplace(AttrFnPair{b, out.fn}, LocationSet());
    }
  }
  for (const ExprPtr& c : summary.predicate) {
    std::vector<BaseAttr> bases;
    c->CollectBaseAttrs(&bases);
    for (const BaseAttr& b : bases) {
      legal.emplace(AttrFnPair{b, std::nullopt}, LocationSet());
    }
  }
  for (const BaseAttr& g : summary.group_attrs) {
    legal.emplace(AttrFnPair{g, std::nullopt}, LocationSet());
  }
  if (legal.empty()) {
    if (hier) policies_->StoreEvalMemo(memo_a, memo_b, LocationSet());
    merge_stats();
    span.AddArg("policies", static_cast<int64_t>(0));
    return LocationSet();
  }

  const std::vector<PolicyExpression>& exprs = policies_->For(db);

  // Premise (and fingerprint) per relation instance, shared by all policies.
  std::vector<AliasPremise> instances;
  instances.reserve(summary.alias_tables.size());
  for (const auto& [alias, table] : summary.alias_tables) {
    AliasPremise ap;
    ap.table = &table;
    ap.premise = PremiseForAlias(summary, alias);
    // The fingerprint keys the implication cache and, in hierarchical
    // mode, the catalog's bucket memo.
    if (cache_ != nullptr || hier) ap.fp = FingerprintConjuncts(ap.premise);
    if (hier) {
      auto def = catalog_->GetTable(table);
      const Schema* schema = def.ok() ? &(*def)->schema : nullptr;
      bool ok = schema != nullptr;
      for (const ExprPtr& c : ap.premise) {
        AccumulatePremiseMask(*c, schema, &ap.premise_mask, &ok);
      }
      ap.constraints.emplace(ap.premise);
      ap.maskable = ok && !ap.constraints->contradictory();
    }
    instances.push_back(std::move(ap));
  }

  // Flatten the deduplicated pairs into index-addressable parallel arrays:
  // the merge below stores into `pair_locs[idx]` instead of re-searching
  // the map per grant.
  std::vector<const AttrFnPair*> pairs;
  pairs.reserve(legal.size());
  for (const auto& [pair, locs] : legal) pairs.push_back(&pair);
  std::vector<LocationSet> pair_locs(pairs.size());

  // Candidate policies: only expressions over tables the query discloses
  // (legal is sorted by table, so its pairs group into contiguous runs).
  // Candidates are grouped by table run, not globally sorted — every
  // per-policy contribution is merged with commutative operations
  // (LocationSet::Union, counter sums), so the visit order is free; the
  // provenance lists are re-sorted into catalog order at the end.
  // Each pair carries its schema-column bit so relevance against a policy's
  // precomputed ship/group masks is a single AND (bit 0 = not maskable,
  // fall back to string comparison).
  struct PairBit {
    size_t idx;    ///< position in `pairs`
    uint64_t bit;  ///< 1 << schema column index, or 0
  };
  std::vector<std::vector<PairBit>> table_pairs;
  std::vector<const std::string*> run_tables;
  {
    const std::string* current = nullptr;
    const Schema* schema = nullptr;
    for (size_t idx = 0; idx < pairs.size(); ++idx) {
      const AttrFnPair& pair = *pairs[idx];
      if (current == nullptr || pair.base.table != *current) {
        current = &pair.base.table;
        run_tables.push_back(current);
        table_pairs.emplace_back();
        auto def = catalog_->GetTable(pair.base.table);
        schema = def.ok() ? &(*def)->schema : nullptr;
      }
      uint64_t bit = 0;
      if (schema != nullptr) {
        if (std::optional<size_t> i = schema->IndexOf(pair.base.column);
            i && *i < 64) {
          bit = uint64_t{1} << *i;
        }
      }
      table_pairs.back().push_back(PairBit{idx, bit});
    }
  }
  // The catalog selects per-run candidates from the run's disclosed-column
  // mask: the flat index hands back every expression over the table, the
  // hierarchical one only buckets whose signature intersects the mask
  // (pruning is off for a run with any unmappable column). In hierarchical
  // mode the implication test itself also runs here, bucket by bucket, so
  // its outcome can be memoized per (premise, bucket) in the catalog: all
  // entries of a bucket share their predicate-column mask, and workloads
  // re-evaluate the same premises — a warm Evaluate() does one memo lookup
  // per bucket and walks only the implied entries.
  std::vector<size_t> candidates;
  std::vector<size_t> candidate_table;  ///< candidate -> table_pairs index
  /// 1 = implication already established for every instance (bucket memo);
  /// 0 = eval_policy must run the per-instance tests itself.
  std::vector<uint8_t> candidate_implied;
  size_t bucket_prefiltered = 0;

  // Runs the per-instance implication dispatch for one candidate predicate
  // — the single place deciding direct-constraint vs. cache vs. plain test,
  // so the memoized and unmemoized paths stay bit-identical.
  auto test_implies = [&](const AliasPremise& ap, const PolicyExpression& e,
                          int32_t* tests, int32_t* hits, int32_t* misses) {
    ++*tests;
    if (ap.constraints.has_value() && ap.constraints->simple()) {
      // Fully normalized premise: a direct constraint check beats even a
      // memo hit (no hashing, no shard lock), same result bit for bit.
      return ap.constraints->Implies(e.predicate);
    }
    if (cache_ != nullptr) {
      bool hit = false;
      bool ok = cache_->ImpliesPrehashed(ap.fp, ap.premise, e.predicate_fp,
                                         e.predicate, &hit);
      *hits += hit ? 1 : 0;
      *misses += hit ? 0 : 1;
      return ok;
    }
    return PredicateImplies(ap.premise, e.predicate);
  };

  const uint64_t memo_epoch = hier ? policies_->epoch() : 0;
  for (size_t run = 0; run < table_pairs.size(); ++run) {
    uint64_t query_mask = 0;
    bool mask_exact = true;
    for (const PairBit& pb : table_pairs[run]) {
      query_mask |= pb.bit;
      mask_exact &= pb.bit != 0;
    }
    // Intersection of the maskable instance premises for this run's table:
    // a policy predicate requiring a column outside it fails the (per-
    // instance) implication for at least one instance, so whole buckets of
    // such predicates are pruned before the candidate walk.
    uint64_t premise_cap = ~uint64_t{0};
    bool premise_capped = false;
    std::vector<const AliasPremise*> run_instances;
    for (const AliasPremise& ap : instances) {
      if (*ap.table != *run_tables[run]) continue;
      run_instances.push_back(&ap);
      if (!ap.maskable) continue;
      premise_cap &= ap.premise_mask;
      premise_capped = true;
    }
    if (!hier) {
      policies_->AppendCandidates(db, *run_tables[run], query_mask,
                                  mask_exact, premise_cap, premise_capped,
                                  &candidates, &bucket_prefiltered);
      candidate_table.resize(candidates.size(), run);
      candidate_implied.resize(candidates.size(), 0);
      continue;
    }

    // Ascending implied positions within one bucket, for one instance
    // premise — memoized in the catalog under (premise fp, location,
    // table, bucket ordinal, epoch).
    const uint64_t table_salt =
        MixKey(std::hash<std::string>{}(*run_tables[run]) +
               (static_cast<uint64_t>(db) << 48) + memo_epoch * 0x9e3779b9);
    auto implied_for =
        [&](const AliasPremise& ap, size_t bucket,
            const std::vector<size_t>& entries)
        -> std::shared_ptr<const std::vector<uint32_t>> {
      const uint64_t ka = ap.fp.hi ^ table_salt;
      const uint64_t kb = ap.fp.lo ^ MixKey(bucket + 0x9e3779b97f4a7c15ULL);
      if (auto hit = policies_->FindBucketMemo(ka, kb)) return hit;
      auto implied = std::make_shared<std::vector<uint32_t>>();
      int32_t tests = 0, hits = 0, misses = 0;
      for (uint32_t i = 0; i < entries.size(); ++i) {
        if (test_implies(ap, exprs[entries[i]], &tests, &hits, &misses)) {
          implied->push_back(i);
        }
      }
      local.implication_tests += tests;
      local.implication_cache_hits += hits;
      local.implication_cache_misses += misses;
      std::shared_ptr<const std::vector<uint32_t>> v = std::move(implied);
      policies_->StoreBucketMemo(ka, kb, v);
      return v;
    };

    std::vector<size_t> unmaskable;
    std::vector<uint32_t> cur;  // intersection across instances
    policies_->ForEachBucket(
        db, *run_tables[run], query_mask, mask_exact, premise_cap,
        premise_capped,
        [&](size_t bucket, const std::vector<size_t>& entries) {
          // No instance of the table in the query: Algorithm 1 grants
          // nothing from its policies (the any_instance condition).
          if (run_instances.empty()) return;
          bool first = true;
          for (const AliasPremise* ap : run_instances) {
            auto implied = implied_for(*ap, bucket, entries);
            if (first) {
              cur.assign(implied->begin(), implied->end());
              first = false;
            } else {
              // Both ascending: keep positions implied for every instance.
              size_t w = 0, j = 0;
              for (uint32_t pos : cur) {
                while (j < implied->size() && (*implied)[j] < pos) ++j;
                if (j < implied->size() && (*implied)[j] == pos) {
                  cur[w++] = pos;
                }
              }
              cur.resize(w);
            }
            if (cur.empty()) break;
          }
          for (uint32_t pos : cur) {
            candidates.push_back(entries[pos]);
            candidate_table.push_back(run);
            candidate_implied.push_back(1);
          }
        },
        &unmaskable, &bucket_prefiltered);
    for (size_t e : unmaskable) {
      candidates.push_back(e);
      candidate_table.push_back(run);
      candidate_implied.push_back(0);
    }
  }
  local.candidates = static_cast<int64_t>(candidates.size());
  local.prefilter_skips += static_cast<int64_t>(bucket_prefiltered);

  // Per-policy evaluation: reads `legal` keys and the summary, writes only
  // its own outcome slot — safe to fan out.
  std::vector<PolicyOutcome> outcomes(candidates.size());
  auto eval_policy = [&](size_t ci) {
    const PolicyExpression& e = exprs[candidates[ci]];
    PolicyOutcome& o = outcomes[ci];

    // A_q ∩ (A_e ∪ G_e): does this expression speak to any output pair?
    // Mask tests are cheap enough that the grant passes below re-derive
    // per-pair relevance instead of materializing a `relevant` list.
    const bool group_counts =
        summary.is_aggregate && e.is_aggregate();
    const std::vector<PairBit>& epairs = table_pairs[candidate_table[ci]];
    auto ships = [&](const PairBit& pb) {
      return (e.masks_valid && pb.bit != 0)
                 ? (e.ship_mask & pb.bit) != 0
                 : e.HasShipAttribute(pairs[pb.idx]->base.column);
    };
    auto groups = [&](const PairBit& pb) {
      return (e.masks_valid && pb.bit != 0)
                 ? (e.group_mask & pb.bit) != 0
                 : e.HasGroupAttribute(pairs[pb.idx]->base.column);
    };
    for (const PairBit& pb : epairs) {
      if (ships(pb) || (group_counts && groups(pb))) {
        o.matched = true;
        break;
      }
    }
    if (!o.matched) return;

    // P_q ⟹ P_e, for every instance of e's table in the query. Bucket-
    // memoized candidates (hierarchical mode) arrive with the implication
    // pre-established; only flat-mode and unmaskable candidates test here.
    if (candidate_implied[ci] == 0) {
      bool implied = true;
      bool any_instance = false;
      for (size_t ii = 0; ii < instances.size(); ++ii) {
        const AliasPremise& ap = instances[ii];
        if (*ap.table != e.table) continue;
        any_instance = true;
        if (e.pred_mask_valid && ap.maskable &&
            (e.pred_mask & ~ap.premise_mask) != 0) {
          // The policy predicate requires a column this (non-contradictory)
          // premise never mentions — the implication test cannot succeed.
          ++o.prefilter_skips;
          implied = false;
          break;
        }
        if (!test_implies(ap, e, &o.implication_tests, &o.cache_hits,
                          &o.cache_misses)) {
          implied = false;
          break;
        }
      }
      if (!any_instance || !implied) return;
    }
    o.eta = true;  // Algorithm 1 reaches line 4.

    if (!e.is_aggregate()) {
      // Cases 1 & 2: a basic expression permits the cells at any
      // aggregation level, for its ship attributes.
      for (const PairBit& pb : epairs) {
        if (ships(pb)) o.grants.push_back(pb.idx);
      }
      return;
    }

    // Case 3: aggregate expression — only covers aggregate queries.
    if (!summary.is_aggregate) return;

    // G_q (restricted to e's table) ⊆ G_e; the empty subset qualifies.
    bool groups_ok = true;
    for (const BaseAttr& g : summary.group_attrs) {
      if (g.table != e.table) continue;
      groups_ok &= e.HasGroupAttribute(g.column);
    }
    if (!groups_ok) return;

    for (const PairBit& pb : epairs) {
      const AttrFnPair& pair = *pairs[pb.idx];
      bool allowed = false;
      if (!pair.fn.has_value()) {
        // Grouping attribute: implicitly shippable when listed in G_e.
        allowed = groups(pb);
      } else {
        allowed = ships(pb) && e.AllowsAggFn(*pair.fn);
      }
      if (allowed) o.grants.push_back(pb.idx);
    }
  };

  constexpr size_t kMinPoliciesForFanout = 8;
  if (pool_ != nullptr && width_ > 1 &&
      candidates.size() >= kMinPoliciesForFanout) {
    pool_->ParallelFor(candidates.size(), static_cast<size_t>(width_),
                       eval_policy);
  } else {
    for (size_t ci = 0; ci < candidates.size(); ++ci) eval_policy(ci);
  }

  // Merge: all per-policy contributions are commutative (set unions,
  // counter sums), so walking outcomes in their fixed candidate order is
  // identical to the sequential evaluation regardless of scheduling.
  // Provenance lists are only materialized when the caller asked for them.
  std::vector<std::vector<const PolicyExpression*>> granted_by;
  if (grants != nullptr) granted_by.resize(pairs.size());
  for (size_t ci = 0; ci < outcomes.size(); ++ci) {
    const PolicyOutcome& o = outcomes[ci];
    local.expressions_matched += o.matched ? 1 : 0;
    local.implication_tests += o.implication_tests;
    if (cache_ != nullptr) {
      local.implication_cache_hits += o.cache_hits;
      local.implication_cache_misses += o.cache_misses;
    }
    local.prefilter_skips += o.prefilter_skips;
    local.eta += o.eta ? 1 : 0;
    const PolicyExpression& e = exprs[candidates[ci]];
    for (size_t idx : o.grants) {
      pair_locs[idx] = pair_locs[idx].Union(e.to);
      if (grants != nullptr) granted_by[idx].push_back(&e);
    }
  }

  if (grants != nullptr) {
    grants->clear();
    for (size_t idx = 0; idx < pairs.size(); ++idx) {
      AttrGrant grant;
      grant.base = pairs[idx]->base;
      grant.fn = pairs[idx]->fn;
      grant.granted = pair_locs[idx];
      grant.granted_by = std::move(granted_by[idx]);
      // Candidates were grouped by table run; catalog order = address
      // order within the per-location expression vector.
      std::sort(grant.granted_by.begin(), grant.granted_by.end());
      grants->push_back(std::move(grant));
    }
  }

  LocationSet result = catalog_->locations().All();
  for (const LocationSet& locs : pair_locs) {
    result = result.Intersect(locs);
    if (result.empty()) break;
  }
  if (hier) policies_->StoreEvalMemo(memo_a, memo_b, result);
  merge_stats();
  span.AddArg("policies", static_cast<int64_t>(candidates.size()));
  span.AddArg("matched", local.expressions_matched);
  span.AddArg("implication_tests", local.implication_tests);
  span.AddArg("cache_hits", local.implication_cache_hits);
  span.AddArg("eta", local.eta);
  return result;
}

}  // namespace cgq
