#ifndef CGQ_CORE_POLICY_H_
#define CGQ_CORE_POLICY_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "expr/expr.h"
#include "expr/implication.h"

namespace cgq {

/// A validated dataflow policy expression (§4). One expression states which
/// cells (basic) or aggregates (aggregate form) of one table may be shipped
/// to which locations.
struct PolicyExpression {
  /// Stable catalog-unique id, assigned by PolicyCatalog::AddPolicy (-1
  /// while unregistered). The handle of RemovePolicy / `policy drop <id>;`.
  int64_t id = -1;
  std::string table;  ///< lower-cased base table name
  /// A_e: ship attributes (lower-cased). `ship *` is expanded to all
  /// columns at validation time.
  std::vector<std::string> attributes;
  /// F_e: allowed aggregate functions; empty means basic expression.
  std::vector<AggFn> agg_fns;
  /// L_e: resolved target locations.
  LocationSet to;
  /// P_e: predicate conjuncts, bound against the table (base_table set).
  std::vector<ExprPtr> predicate;
  /// G_e: allowed grouping attributes (aggregate expressions only).
  std::vector<std::string> group_by;
  /// Canonical fingerprint of `predicate`, the memo key of the implication
  /// cache. Filled by PolicyCatalog::AddPolicy; policies are immutable
  /// afterwards, so the evaluator never re-hashes a conclusion.
  ExprFingerprint predicate_fp;
  /// Schema-column bitmasks of `attributes` / `group_by` (bit i = column i
  /// of the table). Filled by AddPolicy; valid only when `masks_valid` —
  /// the evaluator falls back to the string comparisons otherwise (columns
  /// beyond 64 or tables unknown to the catalog).
  uint64_t ship_mask = 0;
  uint64_t group_mask = 0;
  bool masks_valid = false;

  bool is_aggregate() const { return !agg_fns.empty(); }
  bool HasShipAttribute(const std::string& column) const;
  bool HasGroupAttribute(const std::string& column) const;
  bool AllowsAggFn(AggFn fn) const;

  /// Renders back to (normalized) policy-expression syntax.
  std::string ToString(const LocationCatalog& locations) const;
};

/// Per-location store of dataflow policies (the paper's policy catalog,
/// Fig. 2). Population happens offline via `AddPolicyText` (parsed +
/// validated) or `AddPolicy` (pre-built); policies may also be dropped at
/// runtime with `RemovePolicy`.
///
/// Every mutation (add / remove / clear) bumps a monotonically increasing
/// `epoch`. A cached artifact derived from the catalog (e.g. an optimized
/// plan, which by Theorem 1 is compliant only w.r.t. the policy set it was
/// optimized under) is valid exactly as long as the policies it depends on
/// are unchanged; the epoch is the cheap staleness signal and
/// `TablePolicyFingerprint` the fine-grained one.
///
/// Thread safety: readers may run concurrently; mutations require
/// exclusive access (QueryService serializes them against in-flight
/// queries). `epoch()` alone is always safe to read.
class PolicyCatalog {
 public:
  explicit PolicyCatalog(const Catalog* catalog) : catalog_(catalog) {}

  PolicyCatalog(const PolicyCatalog&) = delete;
  PolicyCatalog& operator=(const PolicyCatalog&) = delete;

  /// Parses, binds and validates a policy expression and registers it for
  /// `location` (the database whose data it governs).
  ///
  /// Validation errors include: unknown table/columns/locations, aggregate
  /// clauses on basic expressions, and `group by` on basic expressions.
  Status AddPolicyText(const std::string& location_name,
                       const std::string& text);
  Status AddPolicy(LocationId location, PolicyExpression expr);

  /// Drops the policy with the given id (see PolicyExpression::id) from
  /// whatever location holds it and bumps the epoch. kNotFound when no
  /// such policy is registered.
  Status RemovePolicy(int64_t id);

  /// Current policy epoch: 0 for a freshly built catalog, +1 per
  /// AddPolicy / RemovePolicy / Clear. A plan optimized at epoch E is
  /// known-fresh while epoch() == E; after that its dependencies must be
  /// revalidated (or the plan re-optimized).
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Content fingerprint of the expressions governing (location, table),
  /// in index order. Two equal fingerprints mean the policies relevant to
  /// that dependency are unchanged — even if the epoch moved because an
  /// unrelated policy was added or dropped (fine-grained invalidation).
  /// Never 0, so callers may use 0 as "not computed".
  uint64_t TablePolicyFingerprint(LocationId location,
                                  const std::string& table) const;

  /// All expressions governing data stored at `location`.
  const std::vector<PolicyExpression>& For(LocationId location) const;

  /// Ascending indices (into For(location)) of the expressions whose table
  /// is `table` — the only candidates the evaluator has to inspect for a
  /// query over that table.
  const std::vector<size_t>& ForTable(LocationId location,
                                      const std::string& table) const;

  size_t TotalCount() const;
  void Clear();

  const Catalog& catalog() const { return *catalog_; }

 private:
  void RebuildTableIndex(LocationId location);

  const Catalog* catalog_;
  std::vector<std::vector<PolicyExpression>> by_location_;
  /// Per location: table -> ascending expression indices.
  std::vector<std::unordered_map<std::string, std::vector<size_t>>>
      table_index_;
  std::atomic<uint64_t> epoch_{0};
  int64_t next_id_ = 0;
};

}  // namespace cgq

#endif  // CGQ_CORE_POLICY_H_
