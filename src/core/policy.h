#ifndef CGQ_CORE_POLICY_H_
#define CGQ_CORE_POLICY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "expr/expr.h"
#include "expr/implication.h"

namespace cgq {

/// A validated dataflow policy expression (§4). One expression states which
/// cells (basic) or aggregates (aggregate form) of one table may be shipped
/// to which locations.
struct PolicyExpression {
  /// Stable catalog-unique id, assigned by PolicyCatalog::AddPolicy (-1
  /// while unregistered). The handle of RemovePolicy / `policy drop <id>;`.
  int64_t id = -1;
  std::string table;  ///< lower-cased base table name
  /// A_e: ship attributes (lower-cased). `ship *` is expanded to all
  /// columns at validation time.
  std::vector<std::string> attributes;
  /// F_e: allowed aggregate functions; empty means basic expression.
  std::vector<AggFn> agg_fns;
  /// L_e: resolved target locations.
  LocationSet to;
  /// P_e: predicate conjuncts, bound against the table (base_table set).
  std::vector<ExprPtr> predicate;
  /// G_e: allowed grouping attributes (aggregate expressions only).
  std::vector<std::string> group_by;
  /// Canonical fingerprint of `predicate`, the memo key of the implication
  /// cache. Filled by PolicyCatalog::AddPolicy; policies are immutable
  /// afterwards, so the evaluator never re-hashes a conclusion.
  ExprFingerprint predicate_fp;
  /// Schema-column bitmasks of `attributes` / `group_by` (bit i = column i
  /// of the table). Filled by AddPolicy; valid only when `masks_valid` —
  /// the evaluator falls back to the string comparisons otherwise (columns
  /// beyond 64 or tables unknown to the catalog).
  uint64_t ship_mask = 0;
  uint64_t group_mask = 0;
  bool masks_valid = false;
  /// Columns the query premise must constrain for P_q ⟹ P_e to have any
  /// chance of succeeding (bit i = column i of the table): the union of
  /// column refs per predicate conjunct, except OR conjuncts which require
  /// only the intersection over their branches (any one branch being
  /// implied suffices). Valid only when `pred_mask_valid`; the hierarchical
  /// evaluator uses it to skip implication tests whose premise does not
  /// mention the required columns (sound unless the premise is
  /// contradictory — the evaluator checks that separately).
  uint64_t pred_mask = 0;
  bool pred_mask_valid = false;

  bool is_aggregate() const { return !agg_fns.empty(); }
  bool HasShipAttribute(const std::string& column) const;
  bool HasGroupAttribute(const std::string& column) const;
  bool AllowsAggFn(AggFn fn) const;

  /// Renders back to (normalized) policy-expression syntax.
  std::string ToString(const LocationCatalog& locations) const;
};

/// How the catalog organizes expressions for candidate selection.
enum class PolicyIndexMode {
  /// PR 1 behavior: per-(location, table) index, every expression kept,
  /// Evaluate walks all expressions over the query's tables. The byte-
  /// identical reference path.
  kFlat,
  /// Hierarchical index (ROADMAP item 4): location → table → predicate-
  /// signature buckets keyed by the expressions' (ship|group, predicate)
  /// column-bitmask pair. AddPolicy merges/subsumes decision-equivalently
  /// (absorbed expressions keep their ids and resurrect on removal of
  /// their absorber); Evaluate walks only buckets whose attribute
  /// signature intersects the query's disclosed-column mask AND whose
  /// predicate columns are all constrained by the query premise, so cost
  /// grows with *relevant* policies, not catalog size.
  kHierarchical,
};

/// Parses "flat" / "hier" / "hierarchical" (the `--policy-index` knob).
Result<PolicyIndexMode> ParsePolicyIndexMode(const std::string& name);

/// Subsumption test strength for PolicySubsumes.
enum class SubsumptionMode {
  /// Lint-strength: uses the full (sound-but-incomplete) implication test
  /// on the predicates. Right for advisory findings; NOT safe as a merge
  /// rule, because algorithmic implication is not transitive, so dropping
  /// a subsumed policy could change decisions the incomplete test cannot
  /// see.
  kSemantic,
  /// Merge-strength: `super` grants a superset of `sub`'s grants for
  /// EVERY query — requires predicate fingerprints equal or `super`'s
  /// predicate empty (implied by anything), on top of the attribute /
  /// aggregate / target containments. Absorbing `sub` under `super` is
  /// then decision-invariant by construction.
  kDecisionSafe,
};

/// True when every grant `sub` could contribute to any query is already
/// granted by `super` (same table assumed). See SubsumptionMode for the
/// two strengths. Shared by the catalog's online merge and policy lint's
/// shadow detection.
bool PolicySubsumes(const PolicyExpression& super, const PolicyExpression& sub,
                    SubsumptionMode mode);

/// Per-location store of dataflow policies (the paper's policy catalog,
/// Fig. 2). Population happens offline via `AddPolicyText` (parsed +
/// validated) or `AddPolicy` (pre-built); policies may also be dropped at
/// runtime with `RemovePolicy`.
///
/// Every mutation (add / remove / clear) bumps a monotonically increasing
/// `epoch`. A cached artifact derived from the catalog (e.g. an optimized
/// plan, which by Theorem 1 is compliant only w.r.t. the policy set it was
/// optimized under) is valid exactly as long as the policies it depends on
/// are unchanged; the epoch is the cheap staleness signal and
/// `TablePolicyFingerprint` the fine-grained one.
///
/// Thread safety: readers may run concurrently; mutations require
/// exclusive access (QueryService serializes them against in-flight
/// queries). `epoch()` alone is always safe to read.
class PolicyCatalog {
 public:
  explicit PolicyCatalog(const Catalog* catalog,
                         PolicyIndexMode mode = PolicyIndexMode::kFlat)
      : catalog_(catalog), mode_(mode) {}

  PolicyCatalog(const PolicyCatalog&) = delete;
  PolicyCatalog& operator=(const PolicyCatalog&) = delete;

  /// Switches the index mode. Only legal while the catalog is empty (the
  /// flat path never re-derives bucket state); kInvalidArgument otherwise.
  Status set_index_mode(PolicyIndexMode mode);
  PolicyIndexMode index_mode() const { return mode_; }

  /// Parses, binds and validates a policy expression and registers it for
  /// `location` (the database whose data it governs).
  ///
  /// Validation errors include: unknown table/columns/locations, aggregate
  /// clauses on basic expressions, and `group by` on basic expressions.
  Status AddPolicyText(const std::string& location_name,
                       const std::string& text);
  Status AddPolicy(LocationId location, PolicyExpression expr);

  /// Drops the policy with the given id (see PolicyExpression::id) from
  /// whatever location holds it and bumps the epoch. kNotFound when no
  /// such policy is registered. In hierarchical mode removing an absorber
  /// resurrects its donors (they were merged, not dropped), and removing
  /// an absorbed policy quietly unregisters it.
  Status RemovePolicy(int64_t id);

  /// Current policy epoch: 0 for a freshly built catalog, +1 per
  /// AddPolicy / RemovePolicy / Clear. A plan optimized at epoch E is
  /// known-fresh while epoch() == E; after that its dependencies must be
  /// revalidated (or the plan re-optimized).
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Content fingerprint of the expressions governing (location, table),
  /// in index order. Two equal fingerprints mean the policies relevant to
  /// that dependency are unchanged — even if the epoch moved because an
  /// unrelated policy was added or dropped (fine-grained invalidation).
  /// Never 0, so callers may use 0 as "not computed".
  uint64_t TablePolicyFingerprint(LocationId location,
                                  const std::string& table) const;

  /// All active expressions governing data stored at `location` (in
  /// hierarchical mode, absorbed expressions live in Absorbed() instead).
  const std::vector<PolicyExpression>& For(LocationId location) const;

  /// Ascending indices (into For(location)) of the expressions whose table
  /// is `table` — the only candidates the evaluator has to inspect for a
  /// query over that table.
  const std::vector<size_t>& ForTable(LocationId location,
                                      const std::string& table) const;

  /// An installed expression merged into an active one (hierarchical mode
  /// only). Keeps its id: RemovePolicy(expr.id) unregisters it, and
  /// RemovePolicy(absorbed_by) resurrects it.
  struct AbsorbedPolicy {
    PolicyExpression expr;
    int64_t absorbed_by = -1;  ///< id of the expression that subsumes it
  };
  /// Expressions for `location` currently absorbed by an active one.
  const std::vector<AbsorbedPolicy>& Absorbed(LocationId location) const;

  /// Appends the indices (into For(location)) of the expressions over
  /// `table` that can be relevant to a query disclosing the columns in
  /// `query_mask` (bit i = column i). `mask_exact` false means some
  /// disclosed column could not be mapped to a bit, so signature pruning
  /// is disabled for the call. Flat mode appends ForTable() wholesale;
  /// hierarchical mode walks only buckets whose signature intersects
  /// `query_mask` (plus the catch-all bucket of unmaskable expressions),
  /// and additionally skips buckets whose shared predicate-column mask
  /// requires a column outside `premise_cap` — the intersection of the
  /// query's per-instance premise masks for `table` (only when
  /// `premise_capped`; see PolicyExpression::pred_mask for why such an
  /// implication test cannot succeed). Entries dropped by the predicate
  /// test are counted into `*prefiltered` when non-null. Order of the
  /// appended indices is unspecified.
  void AppendCandidates(LocationId location, const std::string& table,
                        uint64_t query_mask, bool mask_exact,
                        uint64_t premise_cap, bool premise_capped,
                        std::vector<size_t>* out,
                        size_t* prefiltered = nullptr) const;

  /// Bucket-resolved variant of AppendCandidates (hierarchical mode only;
  /// returns false without calling `fn` in flat mode). Invokes
  /// `fn(bucket_ordinal, entries)` for every bucket over `table` surviving
  /// the same two prunes, then appends the catch-all unmaskable entries to
  /// `*unmaskable`. `bucket_ordinal` is the bucket's position in the
  /// iteration order — stable until the next epoch bump, which makes
  /// (epoch, ordinal) a sound memo-key component (see FindBucketMemo).
  bool ForEachBucket(
      LocationId location, const std::string& table, uint64_t query_mask,
      bool mask_exact, uint64_t premise_cap, bool premise_capped,
      const std::function<void(size_t, const std::vector<size_t>&)>& fn,
      std::vector<size_t>* unmaskable,
      size_t* prefiltered = nullptr) const;

  /// Bucket-grained implication memo. All entries of a bucket share their
  /// predicate-column mask, and the evaluator tests one (premise, bucket)
  /// pair against every entry — so it caches the ascending positions of
  /// the implied entries under a key the caller derives from the premise
  /// fingerprint, the bucket's (location, table, ordinal) coordinates AND
  /// the epoch. Folding in the epoch is what invalidates: any mutation
  /// bumps it, orphaning old keys (orphans are dropped wholesale when a
  /// shard outgrows its cap). Thread-safe; concurrent fills of the same
  /// key are benign (identical values).
  std::shared_ptr<const std::vector<uint32_t>> FindBucketMemo(
      uint64_t a, uint64_t b) const;
  void StoreBucketMemo(
      uint64_t a, uint64_t b,
      std::shared_ptr<const std::vector<uint32_t>> implied) const;

  /// Evaluation-result memo, one level above the bucket memo: the legal
  /// ship set 𝒜(q, D, P_D) of a whole query summary, keyed by the caller's
  /// 128-bit summary fingerprint salted with (database, epoch). Workloads
  /// re-optimize structurally identical blocks, and the AR4 prewarm
  /// re-evaluates the same (group, database) pairs across plan
  /// alternatives — a warm Evaluate() becomes one lookup instead of a
  /// bucket walk. Epoch-in-key invalidation and shard flushing exactly as
  /// for the bucket memo; decisions are unaffected because the stored set
  /// is the verbatim result of the indexed evaluation.
  std::optional<LocationSet> FindEvalMemo(uint64_t a, uint64_t b) const;
  void StoreEvalMemo(uint64_t a, uint64_t b, LocationSet legal) const;

  /// True when at least one expression governs (location, t) for some t in
  /// `tables`. When false, Evaluate over those tables at `location` is
  /// identically empty — the AR4 prewarm uses this to skip the walk.
  bool HasPoliciesFor(LocationId location,
                      const std::vector<std::string>& tables) const;

  /// Installed expressions: active + absorbed (mode-invariant, so callers
  /// counting what they installed see the same number in both modes).
  size_t TotalCount() const;
  /// Active expressions only (== TotalCount() in flat mode).
  size_t ActiveCount() const;
  void Clear();

  /// Index shape counters for `policies;` / bench reporting.
  struct IndexStats {
    size_t active = 0;     ///< expressions Evaluate can walk
    size_t absorbed = 0;   ///< expressions merged into an active one
    size_t tables = 0;     ///< (location, table) pairs with any policy
    size_t buckets = 0;    ///< signature buckets (hierarchical mode)
    size_t max_bucket = 0; ///< largest bucket's entry count
  };
  IndexStats Stats() const;

  /// Test hook: deterministically permutes bucket iteration order and the
  /// entry order inside each bucket (hierarchical mode; in flat mode only
  /// the epoch moves). Decisions must be invariant under any such
  /// permutation. Bumps the epoch — bucket ordinals changed, so memo
  /// entries keyed on them must die.
  void ShuffleBucketsForTest(uint64_t seed);

  const Catalog& catalog() const { return *catalog_; }

 private:
  /// Bucket key: (attribute signature, predicate-column mask). Expressions
  /// land in the same bucket exactly when both their ship|group mask and
  /// their (valid) pred_mask agree, so candidate selection can drop a whole
  /// bucket with two ANDs — one against the query's disclosed columns, one
  /// against the premise's constrained columns.
  struct Bucket {
    uint64_t signature = 0;       ///< ship|group mask shared by all entries
    uint64_t pred_mask = 0;       ///< shared predicate-column requirement
    bool pred_valid = false;      ///< pred_mask trustworthy for all entries
    std::vector<size_t> entries;  ///< indices into by_location_[loc]
  };
  struct TableBuckets {
    std::vector<Bucket> buckets;
    /// Entries whose masks are invalid (columns ≥64 / unknown table):
    /// always walked.
    std::vector<size_t> unmaskable;
  };

  void EnsureLocation(LocationId location);
  void RebuildIndexes(LocationId location);
  /// Appends `index` (into by_location_[location]) to the matching bucket.
  void IndexActive(LocationId location, size_t index);
  /// Id of an active expression at (location, same table) that
  /// decision-safely subsumes `expr`, or -1.
  int64_t FindAbsorber(LocationId location, const PolicyExpression& expr) const;
  /// Registers `expr` (id already assigned) as active at `location`, then
  /// absorbs any existing actives it subsumes.
  void InstallActive(LocationId location, PolicyExpression expr);
  /// Re-registers a resurrected donor: absorbed again if some active
  /// subsumes it, active otherwise.
  void Reinstall(LocationId location, PolicyExpression expr);

  const Catalog* catalog_;
  PolicyIndexMode mode_;
  std::vector<std::vector<PolicyExpression>> by_location_;
  /// Per location: table -> ascending expression indices.
  std::vector<std::unordered_map<std::string, std::vector<size_t>>>
      table_index_;
  /// Hierarchical mode: per location, table -> signature buckets.
  std::vector<std::unordered_map<std::string, TableBuckets>> bucket_index_;
  /// Hierarchical mode: per location, expressions merged into actives.
  std::vector<std::vector<AbsorbedPolicy>> absorbed_;

  // --- Bucket-grained implication memo (see FindBucketMemo) ---
  struct MemoKey {
    uint64_t a = 0;
    uint64_t b = 0;
    bool operator==(const MemoKey&) const = default;
  };
  struct MemoKeyHash {
    size_t operator()(const MemoKey& k) const {
      return static_cast<size_t>(k.a);
    }
  };
  struct MemoShard {
    mutable std::mutex mu;
    std::unordered_map<MemoKey, std::shared_ptr<const std::vector<uint32_t>>,
                       MemoKeyHash>
        map;
  };
  struct EvalShard {
    mutable std::mutex mu;
    std::unordered_map<MemoKey, LocationSet, MemoKeyHash> map;
  };
  static constexpr size_t kMemoShards = 8;
  static constexpr size_t kMemoShardCap = 1 << 15;
  mutable MemoShard memo_shards_[kMemoShards];
  mutable EvalShard eval_shards_[kMemoShards];

  std::atomic<uint64_t> epoch_{0};
  int64_t next_id_ = 0;
};

}  // namespace cgq

#endif  // CGQ_CORE_POLICY_H_
