#include "core/deny_rules.h"

#include <algorithm>
#include <map>

#include "common/str_util.h"
#include "sql/lexer.h"

namespace cgq {

Result<DenyRule> ParseDenyRule(const Catalog& catalog,
                               const std::string& text) {
  CGQ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  size_t pos = 0;
  auto at = [&](size_t i) -> const Token& {
    return i < tokens.size() ? tokens[i] : tokens.back();
  };
  auto expect_word = [&](const char* w) -> Status {
    if (at(pos).type != TokenType::kIdentifier || at(pos).text != w) {
      return Status::InvalidArgument(std::string("expected '") + w +
                                     "' in deny rule '" + text + "'");
    }
    ++pos;
    return Status::OK();
  };

  DenyRule rule;
  CGQ_RETURN_NOT_OK(expect_word("deny"));
  if (at(pos).type == TokenType::kStar) {
    rule.all_attributes = true;
    ++pos;
  } else {
    while (at(pos).type == TokenType::kIdentifier && at(pos).text != "from") {
      rule.attributes.push_back(at(pos).text);
      ++pos;
      if (at(pos).type == TokenType::kComma) ++pos;
    }
    if (rule.attributes.empty()) {
      return Status::InvalidArgument("deny rule needs attributes or '*'");
    }
  }
  CGQ_RETURN_NOT_OK(expect_word("from"));
  if (at(pos).type != TokenType::kIdentifier) {
    return Status::InvalidArgument("deny rule needs a table name");
  }
  rule.table = at(pos).text;
  ++pos;
  CGQ_RETURN_NOT_OK(expect_word("to"));
  if (at(pos).type == TokenType::kStar) {
    rule.all_locations = true;
    ++pos;
  } else {
    while (at(pos).type == TokenType::kIdentifier) {
      CGQ_ASSIGN_OR_RETURN(LocationId l,
                           catalog.locations().GetId(at(pos).text));
      rule.locations.Add(l);
      ++pos;
      if (at(pos).type == TokenType::kComma) ++pos;
    }
    if (rule.locations.empty()) {
      return Status::InvalidArgument("deny rule needs locations or '*'");
    }
  }
  if (at(pos).type != TokenType::kEnd) {
    return Status::InvalidArgument("trailing input in deny rule '" + text +
                                   "'");
  }
  CGQ_ASSIGN_OR_RETURN(const TableDef* table, catalog.GetTable(rule.table));
  rule.table = table->name;
  for (const std::string& a : rule.attributes) {
    if (!table->schema.IndexOf(a)) {
      return Status::InvalidArgument("deny rule references unknown column '" +
                                     a + "'");
    }
  }
  return rule;
}

Result<std::vector<PolicyExpression>> ExpandDenyRules(
    const Catalog& catalog, const std::vector<DenyRule>& rules) {
  if (rules.empty()) {
    return Status::InvalidArgument("no deny rules to expand");
  }
  const std::string& table_name = rules.front().table;
  for (const DenyRule& r : rules) {
    if (r.table != table_name) {
      return Status::InvalidArgument(
          "ExpandDenyRules expects rules for a single table");
    }
  }
  CGQ_ASSIGN_OR_RETURN(const TableDef* table, catalog.GetTable(table_name));
  const LocationSet all = catalog.locations().All();

  // Closed world: start from the full (attribute x location) matrix and
  // subtract every deny rule.
  std::map<std::string, LocationSet> allowed;
  for (const ColumnDef& col : table->schema.columns()) {
    allowed[ToLower(col.name)] = all;
  }
  for (const DenyRule& r : rules) {
    LocationSet denied = r.all_locations ? all : r.locations;
    if (r.all_attributes) {
      for (auto& [col, locs] : allowed) {
        locs = LocationSet(locs.bits() & ~denied.bits());
      }
    } else {
      for (const std::string& a : r.attributes) {
        LocationSet& locs = allowed[a];
        locs = LocationSet(locs.bits() & ~denied.bits());
      }
    }
  }

  // One positive expression per distinct allowed-location set.
  std::map<uint64_t, std::vector<std::string>> by_locations;
  for (const auto& [col, locs] : allowed) {
    if (locs.empty()) continue;  // fully denied attribute: no expression
    by_locations[locs.bits()].push_back(col);
  }
  std::vector<PolicyExpression> out;
  for (auto& [bits, columns] : by_locations) {
    PolicyExpression e;
    e.table = table->name;
    std::sort(columns.begin(), columns.end());
    e.attributes = std::move(columns);
    e.to = LocationSet(bits);
    out.push_back(std::move(e));
  }
  return out;
}

Status AddDenyPolicies(const std::string& location,
                       const std::vector<std::string>& deny_texts,
                       PolicyCatalog* policies) {
  const Catalog& catalog = policies->catalog();
  // Group rules by table; each table expands independently.
  std::map<std::string, std::vector<DenyRule>> by_table;
  for (const std::string& text : deny_texts) {
    CGQ_ASSIGN_OR_RETURN(DenyRule rule, ParseDenyRule(catalog, text));
    by_table[rule.table].push_back(std::move(rule));
  }
  CGQ_ASSIGN_OR_RETURN(LocationId loc, catalog.locations().GetId(location));
  for (const auto& [table, rules] : by_table) {
    CGQ_ASSIGN_OR_RETURN(std::vector<PolicyExpression> expanded,
                         ExpandDenyRules(catalog, rules));
    for (PolicyExpression& e : expanded) {
      CGQ_RETURN_NOT_OK(policies->AddPolicy(loc, std::move(e)));
    }
  }
  return Status::OK();
}

}  // namespace cgq
