#ifndef CGQ_CORE_COMPLIANCE_CHECKER_H_
#define CGQ_CORE_COMPLIANCE_CHECKER_H_

#include <string>
#include <vector>

#include "core/policy_evaluator.h"
#include "plan/plan_node.h"

namespace cgq {

/// Outcome of verifying a located plan against Definition 1.
struct ComplianceReport {
  bool compliant = true;
  std::vector<std::string> violations;
};

/// Independent verifier of Definition 1 (§3.2) on a *located* physical plan
/// (locations assigned, SHIP operators materialized).
///
/// It re-derives, bottom-up and from scratch, where each subtree's output
/// may legally be shipped (via AR1–AR4 applied to the concrete tree) and
/// checks that every operator runs at a permitted site and every SHIP
/// targets a permitted location. It shares no state with the optimizer, so
/// it doubles as the oracle for Theorem-1 property tests and labels the
/// traditional optimizer's plans as compliant (C) / non-compliant (NC) in
/// the benchmarks (Fig. 5a, 6a).
ComplianceReport CheckCompliance(const PlanNode& located_root,
                                 const PolicyEvaluator& evaluator,
                                 const LocationCatalog& locations);

}  // namespace cgq

#endif  // CGQ_CORE_COMPLIANCE_CHECKER_H_
