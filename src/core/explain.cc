#include "core/explain.h"

#include <sstream>

#include "plan/summary.h"

namespace cgq {

namespace {

struct WalkInfo {
  LocationSet ship_trait;
  QuerySummary summary;
};

WalkInfo Walk(const PlanNode& node, const PolicyEvaluator& evaluator,
              const LocationCatalog& locations, int depth,
              std::ostringstream* os) {
  std::vector<WalkInfo> child_info;
  for (const PlanNodePtr& c : node.children()) {
    child_info.push_back(Walk(*c, evaluator, locations, depth + 1, os));
  }
  std::vector<const QuerySummary*> child_summaries;
  for (const WalkInfo& ci : child_info) child_summaries.push_back(&ci.summary);

  WalkInfo info;
  info.summary = SummarizeOp(node, child_summaries);

  auto indent = [&](int d) {
    for (int i = 0; i < d; ++i) *os << "  ";
  };

  if (node.kind() == PlanKind::kShip) {
    info.ship_trait = child_info[0].ship_trait;
    indent(depth);
    *os << "SHIP " << locations.GetName(node.ship_from) << " -> "
        << locations.GetName(node.ship_to) << ": ";
    if (!info.ship_trait.Contains(node.ship_to)) {
      *os << "VIOLATION (legal targets "
          << locations.SetToString(info.ship_trait) << ")\n";
      return info;
    }
    const QuerySummary& s = child_info[0].summary;
    if (s.IsSingleDatabaseBlock()) {
      LocationId db = s.source_locations.ToVector().front();
      std::vector<AttrGrant> grants;
      (void)evaluator.Evaluate(s, db, &grants);
      *os << "legal; single-database subquery of "
          << locations.GetName(db) << ", granted attribute-wise:\n";
      for (const AttrGrant& g : grants) {
        indent(depth + 1);
        *os << g.base.ToString();
        if (g.fn) *os << " [" << AggFnToString(*g.fn) << "]";
        *os << " -> " << locations.SetToString(g.granted);
        if (g.granted.Contains(node.ship_to) && !g.granted_by.empty()) {
          *os << "  via \""
              << g.granted_by.front()->ToString(locations) << "\"";
          if (g.granted_by.size() > 1) {
            *os << " (+" << g.granted_by.size() - 1 << " more)";
          }
        } else if (!g.granted.Contains(node.ship_to)) {
          *os << "  (home/trait-derived)";
        }
        *os << "\n";
      }
    } else {
      *os << "legal; composite intermediate (multi-database or "
             "post-aggregation) — every input may ship to "
          << locations.GetName(node.ship_to)
          << " (AR2), so the result inherits the site (AR3)\n";
    }
    return info;
  }

  // Non-ship operators: recompute the execution trait.
  LocationSet exec;
  if (node.kind() == PlanKind::kScan) {
    exec = LocationSet::Single(node.scan_location);
  } else {
    exec = locations.All();
    for (const WalkInfo& ci : child_info) {
      exec = exec.Intersect(ci.ship_trait);
    }
  }
  if (!exec.Contains(node.location)) {
    indent(depth);
    *os << node.Describe() << ": VIOLATION — runs at "
        << locations.GetName(node.location) << ", allowed "
        << locations.SetToString(exec) << "\n";
  }
  info.ship_trait = exec;
  if (info.summary.IsSingleDatabaseBlock()) {
    LocationId db = info.summary.source_locations.ToVector().front();
    info.ship_trait = info.ship_trait.Union(evaluator.Evaluate(info.summary, db));
  }
  return info;
}

}  // namespace

std::string ExplainCompliance(const PlanNode& located_root,
                              const PolicyEvaluator& evaluator,
                              const LocationCatalog& locations) {
  std::ostringstream os;
  os << "Compliance provenance (result at "
     << locations.GetName(located_root.location) << "):\n";
  Walk(located_root, evaluator, locations, 0, &os);
  std::string out = os.str();
  if (out.find("SHIP") == std::string::npos) {
    out += "  plan is fully local: no cross-border transfers\n";
  }

  // Evaluator instrumentation: how much Goldstein–Larson work the verdict
  // above took, and how much of it the implication cache absorbed.
  PolicyEvalStats stats = evaluator.stats();
  std::ostringstream footer;
  footer.setf(std::ios::fixed);
  footer.precision(3);
  footer << "policy evaluation: " << stats.evaluations << " evaluations, "
         << stats.implication_tests << " implication tests";
  if (stats.implication_cache_hits + stats.implication_cache_misses > 0) {
    double rate = 100.0 * static_cast<double>(stats.implication_cache_hits) /
                  static_cast<double>(stats.implication_cache_hits +
                                      stats.implication_cache_misses);
    footer << " (" << stats.implication_cache_hits << " cache hits, "
           << stats.implication_cache_misses << " misses, ";
    footer.precision(1);
    footer << rate << "% hit rate)";
    footer.precision(3);
  }
  footer << ", eta=" << stats.eta << ", " << stats.eval_ms << " ms\n";
  out += footer.str();
  return out;
}

}  // namespace cgq
