#ifndef CGQ_SERVICE_TENANT_H_
#define CGQ_SERVICE_TENANT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace cgq {

using TenantId = int64_t;

/// The pre-registered tenant every unauthenticated session runs as, with
/// unlimited quotas and weight 1 (single-user embedding, tests, shell).
constexpr TenantId kDefaultTenantId = 0;

/// Per-tenant admission limits and scheduling weight.
struct TenantQuotas {
  /// Queries of this tenant executing at once; 0 = no per-tenant cap
  /// (the service-wide worker count still applies).
  int max_inflight = 0;
  /// Queries of this tenant waiting in its queue before Submit rejects
  /// with kResourceExhausted; 0 = no per-tenant cap (the service-wide
  /// queue capacity still applies).
  int max_queued = 0;
  /// Weighted-fair share: a tenant with weight 2w is scheduled twice as
  /// often as one with weight w when both have work queued. Clamped to
  /// >= 1.
  int weight = 1;
};

/// One registered tenant.
struct TenantInfo {
  TenantId id = kDefaultTenantId;
  std::string name;
  TenantQuotas quotas;
};

/// Token -> tenant authentication and quota registry.
///
/// Thread-safe. The default tenant (id 0, empty token, name "default")
/// always exists so single-user callers need no registration step.
class TenantRegistry {
 public:
  TenantRegistry();

  /// Registers a tenant and returns its id. Fails with kAlreadyExists on
  /// a duplicate name or token. Tokens are opaque strings; the empty
  /// token is reserved for the default tenant.
  Result<TenantId> Register(const std::string& name, const std::string& token,
                            TenantQuotas quotas = {});

  /// Resolves a session token. Unknown tokens fail with
  /// kPermissionDenied (never kNotFound: the caller must not learn
  /// whether the token was close to a real one).
  Result<TenantInfo> Authenticate(const std::string& token) const;

  Result<TenantInfo> Get(TenantId id) const;
  /// Replaces a tenant's quotas (takes effect for subsequent admissions).
  Status SetQuotas(TenantId id, TenantQuotas quotas);

  /// All tenants, ordered by id.
  std::vector<TenantInfo> List() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<TenantId, TenantInfo> tenants_;
  std::unordered_map<std::string, TenantId> by_token_;
  TenantId next_id_ = kDefaultTenantId + 1;
};

}  // namespace cgq

#endif  // CGQ_SERVICE_TENANT_H_
