#include "service/query_service.h"

#include <algorithm>
#include <utility>

#include "common/trace.h"

namespace cgq {

using Clock = std::chrono::steady_clock;

namespace {
/// Stride-scheduling scale: pass advances by kStride / weight per
/// dispatch, so a weight-w tenant is picked w times as often under
/// contention. Large enough that integer division keeps ratios accurate
/// for any sane weight.
constexpr uint64_t kStride = uint64_t{1} << 20;
}  // namespace

QueryService::QueryService(Engine* engine, ServiceOptions options)
    : engine_(engine), options_(options) {
  if (options_.max_inflight <= 0) {
    options_.max_inflight = static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()));
  }
  options_.queue_capacity = std::max(0, options_.queue_capacity);
  if (options_.enable_plan_cache) {
    plan_cache_ = std::make_unique<PlanCache>(options_.plan_cache);
    engine_->set_plan_cache(plan_cache_.get());
  }
  workers_.reserve(static_cast<size_t>(options_.max_inflight));
  for (int i = 0; i < options_.max_inflight; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() {
  std::vector<TaskPtr> pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    for (auto& [id, task] : tasks_) pending.push_back(task);
  }
  // Cooperatively cancel everything: queued tasks are drained by the
  // workers (completed kCancelled, not run), running ones stop at their
  // next cancellation point.
  for (const TaskPtr& task : pending) {
    task->cancel->store(true, std::memory_order_relaxed);
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  // Complete anything a waiter might still block on.
  for (const TaskPtr& task : pending) {
    CompleteTask(task, Status::Cancelled("query service shut down"));
  }
  if (plan_cache_ != nullptr && engine_->plan_cache() == plan_cache_.get()) {
    engine_->set_plan_cache(nullptr);
  }
}

QueryService::Session QueryService::OpenSession() {
  TenantInfo def = *tenant_registry_.Get(kDefaultTenantId);
  return Session(this, std::move(def), engine_->default_options(),
                 engine_->default_exec_options());
}

Result<QueryService::Session> QueryService::OpenSession(
    const std::string& token) {
  CGQ_ASSIGN_OR_RETURN(TenantInfo tenant, tenant_registry_.Authenticate(token));
  return Session(this, std::move(tenant), engine_->default_options(),
                 engine_->default_exec_options());
}

Result<QueryService::TicketId> QueryService::Session::Submit(
    const std::string& sql) {
  return service_->SubmitTask(sql, tenant_.id, opt_, exec_);
}

Result<QueryResult> QueryService::Session::Wait(TicketId ticket) {
  return service_->WaitTask(ticket);
}

Result<QueryResult> QueryService::Session::Run(const std::string& sql) {
  CGQ_ASSIGN_OR_RETURN(TicketId ticket, Submit(sql));
  return Wait(ticket);
}

Status QueryService::Session::Cancel(TicketId ticket) {
  return service_->CancelTask(ticket);
}

Status QueryService::AddPolicy(const std::string& location,
                               const std::string& text) {
  // Writer side: waits for in-flight queries, blocks new ones, so no
  // query ever observes a half-applied catalog.
  std::unique_lock<std::shared_mutex> lock(policy_mu_);
  return engine_->AddPolicy(location, text);
}

Status QueryService::RemovePolicy(int64_t id) {
  std::unique_lock<std::shared_mutex> lock(policy_mu_);
  return engine_->policies().RemovePolicy(id);
}

ServiceStats QueryService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

std::vector<TenantServiceStats> QueryService::tenant_stats() const {
  std::vector<TenantServiceStats> out;
  for (const TenantInfo& info : tenant_registry_.List()) {
    TenantServiceStats row;
    row.tenant = info.id;
    row.name = info.name;
    row.weight = info.quotas.weight;
    out.push_back(std::move(row));
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    for (TenantServiceStats& row : out) {
      auto it = tenant_counters_.find(row.tenant);
      if (it == tenant_counters_.end()) continue;
      const TenantCounters& c = it->second;
      row.submitted = c.submitted;
      row.completed = c.completed;
      row.failed = c.failed;
      row.rejected = c.rejected;
      row.timed_out = c.timed_out;
      row.cancelled = c.cancelled;
      row.queued = c.queued;
      row.inflight = c.inflight;
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (TenantServiceStats& row : out) {
      auto it = sched_.find(row.tenant);
      if (it != sched_.end()) row.scheduled = it->second.scheduled;
    }
  }
  return out;
}

Result<QueryService::TicketId> QueryService::SubmitTask(
    const std::string& sql, TenantId tenant, const OptimizerOptions& opt,
    const ExecutorOptions& exec) {
  CGQ_ASSIGN_OR_RETURN(TenantInfo info, tenant_registry_.Get(tenant));
  auto task = std::make_shared<Task>();
  task->tenant = tenant;
  task->sql = sql;
  task->opt = opt;
  task->exec = exec;
  task->enqueued_at = Clock::now();
  task->cancel = std::make_shared<std::atomic<bool>>(false);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      return Status::Unavailable("query service is shutting down");
    }
    TenantSched& ts = sched_[tenant];
    Status reject;
    if (total_queued_ >= static_cast<size_t>(options_.queue_capacity)) {
      reject = Status::ResourceExhausted(
          "admission queue full (capacity " +
          std::to_string(options_.queue_capacity) + ")");
    } else if (info.quotas.max_queued > 0 &&
               ts.queue.size() >=
                   static_cast<size_t>(info.quotas.max_queued)) {
      reject = Status::ResourceExhausted(
          "tenant '" + info.name + "' queue quota full (" +
          std::to_string(info.quotas.max_queued) + ")");
    }
    if (!reject.ok()) {
      {
        std::lock_guard<std::mutex> slock(stats_mu_);
        ++stats_.rejected;
        ++tenant_counters_[tenant].rejected;
      }
      CGQ_COUNTER_ADD("service.rejected", 1);
      return reject;
    }
    if (ts.queue.empty()) {
      // (Re)activation: start at the current virtual time so a tenant
      // cannot bank credit while idle and then monopolize the workers.
      ts.pass = std::max(ts.pass, global_pass_);
    }
    task->id = next_ticket_++;
    ts.queue.push_back(task);
    ++total_queued_;
    tasks_[task->id] = task;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.submitted;
    ++stats_.queued;
    TenantCounters& tc = tenant_counters_[tenant];
    ++tc.submitted;
    ++tc.queued;
  }
  CGQ_COUNTER_ADD("service.submitted", 1);
  queue_cv_.notify_one();
  return task->id;
}

Result<QueryResult> QueryService::WaitTask(TicketId ticket) {
  TaskPtr task = FindTask(ticket);
  if (task == nullptr) {
    return Status::NotFound("unknown or already collected ticket " +
                            std::to_string(ticket));
  }
  const bool has_timeout = options_.queue_timeout_ms > 0;
  const auto deadline =
      task->enqueued_at + std::chrono::milliseconds(options_.queue_timeout_ms);
  {
    std::unique_lock<std::mutex> lock(task->mu);
    while (task->state != TaskState::kDone) {
      if (has_timeout && task->state == TaskState::kQueued) {
        if (task->cv.wait_until(lock, deadline) ==
                std::cv_status::timeout &&
            task->state == TaskState::kQueued) {
          // Nobody dequeued it in time: the waiter claims the timeout
          // (workers enforce the same bound at dequeue).
          lock.unlock();
          CompleteTask(task,
                       Status::ResourceExhausted(
                           "queue wait exceeded " +
                           std::to_string(options_.queue_timeout_ms) + " ms"));
          lock.lock();
        }
      } else {
        task->cv.wait(lock);
      }
    }
  }
  Result<QueryResult> result = std::move(*task->result);
  ForgetTask(ticket);
  return result;
}

Status QueryService::CancelTask(TicketId ticket) {
  TaskPtr task = FindTask(ticket);
  if (task == nullptr) {
    return Status::NotFound("unknown or already collected ticket " +
                            std::to_string(ticket));
  }
  task->cancel->store(true, std::memory_order_relaxed);
  bool queued;
  {
    std::lock_guard<std::mutex> lock(task->mu);
    queued = task->state == TaskState::kQueued;
  }
  if (queued) {
    CompleteTask(task, Status::Cancelled("cancelled while queued"));
  }
  return Status::OK();
}

QueryService::TaskPtr QueryService::PickTaskLocked(bool draining) {
  TenantSched* best = nullptr;
  TenantId best_id = 0;
  for (auto& [id, ts] : sched_) {
    if (ts.queue.empty()) continue;
    if (!draining) {
      Result<TenantInfo> info = tenant_registry_.Get(id);
      const int cap = info.ok() ? info->quotas.max_inflight : 0;
      if (cap > 0 && ts.inflight >= cap) continue;
    }
    if (best == nullptr || ts.pass < best->pass ||
        (ts.pass == best->pass && id < best_id)) {
      best = &ts;
      best_id = id;
    }
  }
  if (best == nullptr) return nullptr;
  TaskPtr task = std::move(best->queue.front());
  best->queue.pop_front();
  --total_queued_;
  ++best->inflight;
  ++best->scheduled;
  global_pass_ = best->pass;
  Result<TenantInfo> info = tenant_registry_.Get(best_id);
  const uint64_t weight =
      info.ok() ? static_cast<uint64_t>(std::max(1, info->quotas.weight)) : 1;
  best->pass += kStride / weight;
  return task;
}

void QueryService::FinishDispatch(TenantId tenant) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sched_.find(tenant);
    if (it != sched_.end()) --it->second.inflight;
  }
  // A freed per-tenant inflight slot may make a skipped tenant eligible.
  queue_cv_.notify_all();
}

void QueryService::WorkerLoop() {
  for (;;) {
    TaskPtr task;
    bool draining = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        task = PickTaskLocked(shutdown_);
        if (task != nullptr || shutdown_) break;
        queue_cv_.wait(lock);
      }
      if (task == nullptr) return;  // shutdown with nothing left
      draining = shutdown_;
    }
    if (draining) {
      CompleteTask(task, Status::Cancelled("query service shut down"));
    } else {
      RunTask(task);
    }
    FinishDispatch(task->tenant);
  }
}

void QueryService::RunTask(const TaskPtr& task) {
  // Queue-side outcomes first: claimed timeouts / cancellations.
  {
    std::lock_guard<std::mutex> lock(task->mu);
    if (task->state == TaskState::kDone) return;
  }
  if (task->cancel->load(std::memory_order_relaxed)) {
    CompleteTask(task, Status::Cancelled("cancelled while queued"));
    return;
  }
  if (options_.queue_timeout_ms > 0 &&
      Clock::now() - task->enqueued_at >
          std::chrono::milliseconds(options_.queue_timeout_ms)) {
    CompleteTask(task, Status::ResourceExhausted(
                           "queue wait exceeded " +
                           std::to_string(options_.queue_timeout_ms) + " ms"));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(task->mu);
    if (task->state == TaskState::kDone) return;
    task->state = TaskState::kRunning;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    --stats_.queued;
    ++stats_.inflight;
    TenantCounters& tc = tenant_counters_[task->tenant];
    --tc.queued;
    ++tc.inflight;
  }
  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    // Reader side: policy mutations wait until this query finishes.
    std::shared_lock<std::shared_mutex> policy_lock(policy_mu_);
    ExecutorOptions exec = task->exec;
    exec.cancel = task->cancel;
    return engine_->Run(task->sql, task->opt, exec);
  }();
  CompleteTask(task, std::move(result));
}

bool QueryService::CompleteTask(const TaskPtr& task,
                                Result<QueryResult> result) {
  const StatusCode code = result.status().code();
  {
    std::lock_guard<std::mutex> lock(task->mu);
    if (task->state == TaskState::kDone) return false;
    // Update the counters before the state flips to kDone: a waiter that
    // returns from Wait() must already see this outcome in stats().
    {
      std::lock_guard<std::mutex> slock(stats_mu_);
      TenantCounters& tc = tenant_counters_[task->tenant];
      if (task->state == TaskState::kQueued) {
        --stats_.queued;
        --tc.queued;
      } else {
        --stats_.inflight;
        --tc.inflight;
      }
      switch (code) {
        case StatusCode::kOk:
          ++stats_.completed;
          ++tc.completed;
          break;
        case StatusCode::kCancelled:
          ++stats_.cancelled;
          ++tc.cancelled;
          break;
        case StatusCode::kResourceExhausted:
          ++stats_.timed_out;
          ++tc.timed_out;
          break;
        default:
          ++stats_.failed;
          ++tc.failed;
          break;
      }
    }
    task->state = TaskState::kDone;
    task->result.emplace(std::move(result));
  }
  task->cv.notify_all();
  if (code == StatusCode::kOk) {
    CGQ_COUNTER_ADD("service.completed", 1);
  } else if (code == StatusCode::kCancelled) {
    CGQ_COUNTER_ADD("service.cancelled", 1);
  } else if (code == StatusCode::kResourceExhausted) {
    CGQ_COUNTER_ADD("service.queue_timeouts", 1);
  } else {
    CGQ_COUNTER_ADD("service.failed", 1);
  }
  return true;
}

QueryService::TaskPtr QueryService::FindTask(TicketId ticket) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tasks_.find(ticket);
  return it != tasks_.end() ? it->second : nullptr;
}

void QueryService::ForgetTask(TicketId ticket) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tasks_.find(ticket);
  if (it != tasks_.end()) tasks_.erase(it);
}

}  // namespace cgq
