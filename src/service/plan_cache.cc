#include "service/plan_cache.h"

#include <algorithm>
#include <cctype>
#include <utility>

#include "common/trace.h"
#include "plan/param_binding.h"

namespace cgq {
namespace {

bool ParamsEqual(const std::vector<Value>& a, const std::vector<Value>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i].StructurallyEquals(b[i])) return false;
  }
  return true;
}

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

inline void Mix(uint64_t* h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    *h ^= (v >> (8 * i)) & 0xff;
    *h *= kFnvPrime;
  }
}

/// Lower-cases outside single-quoted string literals and collapses runs
/// of whitespace to one space, so `SELECT  X` and `select x` share a
/// cache entry while `WHERE name = 'EU'` keeps its literal intact.
std::string NormalizeSql(const std::string& sql) {
  std::string out;
  out.reserve(sql.size());
  bool in_string = false;
  bool pending_space = false;
  for (char c : sql) {
    if (!in_string && std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    if (c == '\'') in_string = !in_string;
    out.push_back(in_string
                      ? c
                      : static_cast<char>(std::tolower(
                            static_cast<unsigned char>(c))));
  }
  return out;
}

size_t StringBytes(const std::string& s) {
  return sizeof(std::string) + s.capacity();
}

size_t ExprBytes(const ExprPtr& e);

size_t NodeBytes(const PlanNode& node) {
  size_t n = sizeof(PlanNode);
  n += node.table.capacity() + node.alias.capacity();
  for (const ExprPtr& c : node.conjuncts) n += ExprBytes(c);
  n += node.project_ids.capacity() * sizeof(AttrId);
  for (const std::string& s : node.project_names) n += StringBytes(s);
  n += node.group_ids.capacity() * sizeof(AttrId);
  n += node.agg_calls.capacity() * sizeof(AggCall);
  n += node.agg_out_ids.capacity() * sizeof(AttrId);
  for (const OutputCol& c : node.outputs) {
    n += sizeof(OutputCol) + c.name.capacity();
  }
  return n;
}

size_t ExprBytes(const ExprPtr& e) {
  // Flat estimate: expression trees are shallow (bound conjuncts); an
  // exact recursive walk is not worth coupling the cache to Expr's
  // internals.
  return e == nullptr ? 0 : 96;
}

}  // namespace

PlanCache::PlanCache(PlanCacheOptions options) : options_(options) {
  size_t n = 1;
  while (n < static_cast<size_t>(std::max(1, options_.shards))) n <<= 1;
  options_.shards = static_cast<int>(n);
  shards_ = std::vector<Shard>(n);
  per_shard_budget_ = std::max<size_t>(options_.max_bytes / n, 1);
}

PlanCache::Key PlanCache::ComputeKey(const std::string& sql,
                                     const OptimizerOptions& options) {
  const std::string norm = NormalizeSql(sql);
  // Two independent FNV-1a streams (distinct offsets) over the same
  // content give a 128-bit fingerprint, mirroring ExprFingerprint.
  uint64_t hi = kFnvOffset;
  uint64_t lo = kFnvOffset ^ 0x5bd1e9955bd1e995ULL;
  auto mix_all = [&](uint64_t v) {
    Mix(&hi, v);
    Mix(&lo, v ^ 0xa5a5a5a5a5a5a5a5ULL);
  };
  for (unsigned char c : norm) {
    hi = (hi ^ c) * kFnvPrime;
    lo = (lo ^ c) * kFnvPrime;
  }
  // Plan-shaping options only: threads / implication_cache change how
  // fast the optimizer runs, never which plan it picks.
  mix_all(options.compliant ? 1 : 0);
  mix_all(options.enable_agg_pushdown ? 2 : 0);
  mix_all(options.required_result.bits());
  mix_all(options.response_time_objective ? 4 : 0);
  mix_all(options.prefer_sort_merge_join ? 8 : 0);
  return Key{hi, lo};
}

std::vector<PlanCache::Dependency> PlanCache::CollectDependencies(
    const PlanNode& root, const PolicyCatalog& policies) {
  std::vector<Dependency> deps;
  auto walk = [&](auto&& self, const PlanNode& node) -> void {
    if (node.kind() == PlanKind::kScan) {
      bool seen = false;
      for (const Dependency& d : deps) {
        if (d.location == node.scan_location && d.table == node.table) {
          seen = true;
          break;
        }
      }
      if (!seen) {
        deps.push_back(Dependency{
            node.scan_location, node.table,
            policies.TablePolicyFingerprint(node.scan_location, node.table)});
      }
    }
    for (const PlanNodePtr& c : node.children()) self(self, *c);
  };
  walk(walk, root);
  return deps;
}

size_t PlanCache::EstimatePlanBytes(const PlanNode& root) {
  size_t n = NodeBytes(root);
  for (const PlanNodePtr& c : root.children()) n += EstimatePlanBytes(*c);
  return n;
}

std::optional<OptimizedQuery> PlanCache::Lookup(
    const Key& key, const PolicyCatalog& policies) {
  return Lookup(key, {}, policies, nullptr);
}

std::optional<OptimizedQuery> PlanCache::Lookup(
    const Key& key, const std::vector<Value>& params,
    const PolicyCatalog& policies, bool* param_hit) {
  if (param_hit != nullptr) *param_hit = false;
  Shard& shard = ShardFor(key);
  const uint64_t epoch = policies.epoch();
  std::optional<OptimizedQuery> out;
  bool invalidated = false;
  bool rebound = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      Entry& entry = *it->second;
      bool fresh = entry.epoch == epoch;
      if (!fresh) {
        // The catalog changed since this entry was cached. Fine-grained
        // check: if no policy governing a scanned (location, table) pair
        // changed content, the plan is still a valid compliance proof.
        fresh = true;
        for (const Dependency& d : entry.deps) {
          if (policies.TablePolicyFingerprint(d.location, d.table) !=
              d.fingerprint) {
            fresh = false;
            break;
          }
        }
        if (fresh) entry.epoch = epoch;
      }
      if (!fresh) {
        EraseLocked(shard, it->second);
        invalidated = true;
      } else if (ParamsEqual(params, entry.params)) {
        // Same constants as the cached text: byte-identical query.
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        out = entry.query;
        out->plan = ClonePlan(*entry.query.plan);
      } else if (entry.bindable) {
        // Same shape, different constants: serve a rebound clone.
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        out = entry.query;
        out->plan = ClonePlan(*entry.query.plan);
        rebound = true;
      }
      // Not bindable with different params: miss, but the entry stays —
      // it is still a valid proof for its own constants.
    }
  }
  if (rebound) {
    // Outside the shard lock: the clone is private to this lookup.
    BindPlanParams(out->plan.get(), params);
    if (param_hit != nullptr) *param_hit = true;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (out.has_value()) {
      ++stats_.hits;
      if (rebound) {
        ++stats_.param_hits;
      } else {
        ++stats_.exact_hits;
      }
    } else {
      ++stats_.misses;
      if (invalidated) ++stats_.invalidations;
    }
  }
  if (out.has_value()) {
    CGQ_COUNTER_ADD("plan_cache.hits", 1);
    if (rebound) CGQ_COUNTER_ADD("plan_cache.param_hits", 1);
  } else {
    CGQ_COUNTER_ADD("plan_cache.misses", 1);
    if (invalidated) CGQ_COUNTER_ADD("plan_cache.invalidations", 1);
  }
  if (invalidated) PublishGauges();
  return out;
}

void PlanCache::Insert(const Key& key, const OptimizedQuery& q,
                       const PolicyCatalog& policies) {
  Insert(key, q, {}, policies);
}

void PlanCache::Insert(const Key& key, const OptimizedQuery& q,
                       const std::vector<Value>& params,
                       const PolicyCatalog& policies) {
  if (q.plan == nullptr) return;
  Entry entry;
  entry.key = key;
  entry.query = q;
  entry.query.plan = ClonePlan(*q.plan);  // private copy, never aliased
  entry.deps = CollectDependencies(*entry.query.plan, policies);
  entry.params = params;
  // Rebindability is proven here, against the exact plan being cached:
  // if any extracted constant cannot be located in the plan (or was
  // transformed on its way in), the entry degrades to exact-match-only
  // instead of ever serving a wrongly-bound plan.
  entry.bindable = PlanParamsBindable(*entry.query.plan, params);
  entry.epoch = policies.epoch();
  entry.bytes = sizeof(Entry) + EstimatePlanBytes(*entry.query.plan);
  for (const Value& v : entry.params) {
    entry.bytes += sizeof(Value) + v.ByteSize();
  }
  for (const Dependency& d : entry.deps) {
    entry.bytes += sizeof(Dependency) + d.table.capacity();
  }

  int64_t evicted = 0;
  {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) EraseLocked(shard, it->second);
    shard.bytes += entry.bytes;
    shard.lru.push_front(std::move(entry));
    shard.index[key] = shard.lru.begin();
    while (shard.bytes > per_shard_budget_ && shard.lru.size() > 1) {
      EraseLocked(shard, std::prev(shard.lru.end()));
      ++evicted;
    }
  }
  if (evicted > 0) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.evictions += evicted;
  }
  CGQ_COUNTER_ADD("plan_cache.inserts", 1);
  if (evicted > 0) CGQ_COUNTER_ADD("plan_cache.evictions", evicted);
  PublishGauges();
}

void PlanCache::Invalidate(const Key& key) {
  bool erased = false;
  {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      EraseLocked(shard, it->second);
      erased = true;
    }
  }
  if (erased) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.invalidations;
    }
    CGQ_COUNTER_ADD("plan_cache.invalidations", 1);
    PublishGauges();
  }
}

void PlanCache::RecordRevalidation() {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.revalidations;
  }
  CGQ_COUNTER_ADD("plan_cache.revalidations", 1);
}

void PlanCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
    shard.bytes = 0;
  }
  PublishGauges();
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats out;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    out = stats_;
  }
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    out.entries += shard.lru.size();
    out.bytes += shard.bytes;
  }
  return out;
}

void PlanCache::EraseLocked(Shard& shard, std::list<Entry>::iterator it) {
  shard.bytes -= std::min(shard.bytes, it->bytes);
  shard.index.erase(it->key);
  shard.lru.erase(it);
}

void PlanCache::PublishGauges() const {
#ifdef CGQ_TRACING
  size_t entries = 0;
  size_t bytes = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    entries += shard.lru.size();
    bytes += shard.bytes;
  }
  CGQ_GAUGE_SET("plan_cache.entries", static_cast<int64_t>(entries));
  CGQ_GAUGE_SET("plan_cache.bytes", static_cast<int64_t>(bytes));
#endif
}

}  // namespace cgq
