#include "service/tenant.h"

#include <algorithm>

namespace cgq {

namespace {

TenantQuotas Sanitized(TenantQuotas q) {
  q.max_inflight = std::max(0, q.max_inflight);
  q.max_queued = std::max(0, q.max_queued);
  q.weight = std::max(1, q.weight);
  return q;
}

}  // namespace

TenantRegistry::TenantRegistry() {
  TenantInfo def;
  def.id = kDefaultTenantId;
  def.name = "default";
  tenants_[def.id] = def;
  by_token_[""] = def.id;
}

Result<TenantId> TenantRegistry::Register(const std::string& name,
                                          const std::string& token,
                                          TenantQuotas quotas) {
  if (name.empty()) {
    return Status::InvalidArgument("tenant name must not be empty");
  }
  if (token.empty()) {
    return Status::InvalidArgument(
        "the empty token is reserved for the default tenant");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (by_token_.count(token) > 0) {
    return Status::AlreadyExists("token already registered");
  }
  for (const auto& [id, info] : tenants_) {
    if (info.name == name) {
      return Status::AlreadyExists("tenant '" + name + "' already exists");
    }
  }
  TenantInfo info;
  info.id = next_id_++;
  info.name = name;
  info.quotas = Sanitized(quotas);
  tenants_[info.id] = info;
  by_token_[token] = info.id;
  return info.id;
}

Result<TenantInfo> TenantRegistry::Authenticate(
    const std::string& token) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_token_.find(token);
  if (it == by_token_.end()) {
    return Status::PermissionDenied("unknown tenant token");
  }
  return tenants_.at(it->second);
}

Result<TenantInfo> TenantRegistry::Get(TenantId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(id);
  if (it == tenants_.end()) {
    return Status::NotFound("unknown tenant id " + std::to_string(id));
  }
  return it->second;
}

Status TenantRegistry::SetQuotas(TenantId id, TenantQuotas quotas) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(id);
  if (it == tenants_.end()) {
    return Status::NotFound("unknown tenant id " + std::to_string(id));
  }
  it->second.quotas = Sanitized(quotas);
  return Status::OK();
}

std::vector<TenantInfo> TenantRegistry::List() const {
  std::vector<TenantInfo> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(tenants_.size());
    for (const auto& [id, info] : tenants_) out.push_back(info);
  }
  std::sort(out.begin(), out.end(),
            [](const TenantInfo& a, const TenantInfo& b) { return a.id < b.id; });
  return out;
}

}  // namespace cgq
