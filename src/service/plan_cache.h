#ifndef CGQ_SERVICE_PLAN_CACHE_H_
#define CGQ_SERVICE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/optimizer.h"
#include "core/policy.h"

namespace cgq {

/// Configuration of a PlanCache.
struct PlanCacheOptions {
  /// Total byte budget across all shards; the LRU tail of a shard is
  /// evicted when its share (max_bytes / shards) is exceeded.
  size_t max_bytes = size_t{64} << 20;
  /// Number of independent LRU shards (rounded up to a power of two).
  /// More shards = less lock contention between concurrent sessions.
  int shards = 8;
};

/// Point-in-time counters of a PlanCache (see also the process-wide
/// `plan_cache.*` metrics in MetricsRegistry).
struct PlanCacheStats {
  int64_t hits = 0;  ///< exact_hits + param_hits
  /// Hits whose parameter vector matched the cached entry byte-for-byte
  /// (the plan is served as-is, no rebinding).
  int64_t exact_hits = 0;
  /// Hits served by rebinding a parameterized entry's literal slots to a
  /// different constant vector.
  int64_t param_hits = 0;
  int64_t misses = 0;
  /// Entries erased because a dependency's policy fingerprint changed or a
  /// compliance re-check failed — never served again.
  int64_t invalidations = 0;
  /// Belt-and-braces compliance re-checks run on cache hits (recorded by
  /// the caller via RecordRevalidation).
  int64_t revalidations = 0;
  /// Entries evicted by the LRU byte budget (still valid, just cold).
  int64_t evictions = 0;
  size_t entries = 0;
  size_t bytes = 0;
};

/// A compliant plan cache: memoizes the two-phase optimizer keyed by a
/// normalized query fingerprint + the optimizer options that shape the
/// plan, guarded by the policy-catalog epoch.
///
/// Soundness (why serving a cached plan is safe): by Theorem 1 an
/// optimized plan is compliant w.r.t. the policy set it was optimized
/// under, and compliance of a located plan depends only on the policies
/// governing the (location, table) pairs it scans — those decide every
/// ℰ/𝒮 trait bottom-up. Each entry therefore stores that dependency set
/// with a content fingerprint per pair (PolicyCatalog::
/// TablePolicyFingerprint). A hit is served iff the entry's epoch equals
/// the catalog's, or — after any policy mutation — every dependency
/// fingerprint is unchanged (unrelated policy changes revalidate instead
/// of invalidate; they may cost optimality, never compliance). On top of
/// that the engine re-runs the independent Definition-1 checker on every
/// hit (counter `plan_cache.revalidations`), so even a fingerprint
/// collision cannot execute a stale plan.
///
/// Thread safety: fully thread-safe (sharded mutexes); Lookup returns a
/// deep copy of the plan so concurrent executions never share mutable
/// nodes. Callers must not mutate the PolicyCatalog concurrently with
/// Lookup/Insert (QueryService serializes policy updates against
/// in-flight queries).
class PlanCache {
 public:
  /// 128-bit cache key: fingerprint of the normalized SQL text and the
  /// plan-shaping OptimizerOptions fields.
  struct Key {
    uint64_t hi = 0;
    uint64_t lo = 0;
    bool operator==(const Key& o) const { return hi == o.hi && lo == o.lo; }
  };

  /// One (scan location, table) pair a cached plan's compliance depends
  /// on, with the policy-content fingerprint observed at insert time.
  struct Dependency {
    LocationId location = 0;
    std::string table;
    uint64_t fingerprint = 0;
  };

  explicit PlanCache(PlanCacheOptions options = {});

  /// Normalizes `sql` (lower-cased outside string literals, whitespace
  /// collapsed) and fingerprints it together with the plan-shaping option
  /// fields (compliant, agg pushdown, required result set, objective,
  /// join preference). `threads` / `implication_cache` do not change the
  /// chosen plan and are excluded.
  static Key ComputeKey(const std::string& sql,
                        const OptimizerOptions& options);

  /// The (location, table) pairs scanned by `root`, deduplicated, each
  /// fingerprinted against the current policy content.
  static std::vector<Dependency> CollectDependencies(
      const PlanNode& root, const PolicyCatalog& policies);

  /// Rough resident-size estimate of a plan tree (for the byte budget).
  static size_t EstimatePlanBytes(const PlanNode& root);

  /// Returns a deep copy of the cached optimized query, or nullopt on a
  /// miss. Stale-epoch entries are revalidated dependency-by-dependency:
  /// unchanged fingerprints refresh the entry (hit); any change erases it
  /// (counted as invalidation + miss).
  ///
  /// Exact-match only (no parameters): equivalent to Lookup(key, {}, ...).
  std::optional<OptimizedQuery> Lookup(const Key& key,
                                       const PolicyCatalog& policies);

  /// Parameterized lookup: `params` is the constant vector the normalizer
  /// extracted from the query whose skeleton hashed to `key`. An entry
  /// whose stored parameters match structurally is served as-is (exact
  /// hit). Otherwise, if the entry was proven rebindable at insert time,
  /// its clone's literal slots are rebound to `params` (parameterized
  /// hit; `*param_hit` set when non-null). A non-rebindable entry with
  /// different parameters is a miss — it stays cached for exact matches.
  ///
  /// The caller must re-prove Definition-1 compliance of the returned
  /// plan (the engine does, on every hit): rebinding changes predicate
  /// constants, and policy predicates may imply different verdicts for
  /// different constants.
  std::optional<OptimizedQuery> Lookup(const Key& key,
                                       const std::vector<Value>& params,
                                       const PolicyCatalog& policies,
                                       bool* param_hit = nullptr);

  /// Caches a successfully optimized compliant query under `key` at the
  /// catalog's current epoch. Replaces any existing entry; evicts the LRU
  /// tail past the byte budget.
  ///
  /// Exact-match only: equivalent to Insert(key, q, {}, policies).
  void Insert(const Key& key, const OptimizedQuery& q,
              const PolicyCatalog& policies);

  /// Caches `q` together with the parameter vector its text carried. The
  /// entry is marked rebindable only when every ordinal in [0, n) appears
  /// in the plan as a tagged literal slot with exactly params[ordinal]
  /// (see PlanParamsBindable) — otherwise it serves exact matches only.
  void Insert(const Key& key, const OptimizedQuery& q,
              const std::vector<Value>& params, const PolicyCatalog& policies);

  /// Erases `key` (the engine calls this when the belt-and-braces
  /// compliance re-check fails on a hit). Counted as an invalidation.
  void Invalidate(const Key& key);

  /// Counts one belt-and-braces compliance re-check on a hit.
  void RecordRevalidation();

  void Clear();
  PlanCacheStats stats() const;
  const PlanCacheOptions& options() const { return options_; }

 private:
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return static_cast<size_t>(k.hi ^ (k.lo * 0x9e3779b97f4a7c15ULL));
    }
  };

  struct Entry {
    Key key;
    OptimizedQuery query;  ///< plan is the cache's private copy
    std::vector<Dependency> deps;
    /// Constants extracted from the inserted query's text, by ordinal.
    std::vector<Value> params;
    /// True when the plan's tagged literal slots cover every parameter —
    /// only then may a lookup with different constants rebind and serve.
    bool bindable = false;
    uint64_t epoch = 0;  ///< policy epoch the entry is known-fresh at
    size_t bytes = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    /// Front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index;
    size_t bytes = 0;
  };

  Shard& ShardFor(const Key& key) {
    return shards_[key.hi & (shards_.size() - 1)];
  }
  /// Erases `it` from `shard` (lock held) and updates byte accounting.
  void EraseLocked(Shard& shard, std::list<Entry>::iterator it);
  void PublishGauges() const;

  PlanCacheOptions options_;
  size_t per_shard_budget_;
  std::vector<Shard> shards_;

  mutable std::mutex stats_mu_;
  PlanCacheStats stats_;
};

}  // namespace cgq

#endif  // CGQ_SERVICE_PLAN_CACHE_H_
