#ifndef CGQ_SERVICE_QUERY_SERVICE_H_
#define CGQ_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/engine.h"
#include "service/plan_cache.h"
#include "service/tenant.h"

namespace cgq {

/// Configuration of a QueryService.
struct ServiceOptions {
  /// Queries executing at once (= worker threads). 0 = one per hardware
  /// thread.
  int max_inflight = 4;
  /// Admitted-but-not-running queries the service holds across all
  /// tenant queues before Submit rejects with kResourceExhausted.
  /// Per-tenant caps (TenantQuotas::max_queued) apply on top.
  int queue_capacity = 64;
  /// Longest a query may sit in the queue before it completes with
  /// kResourceExhausted instead of running. <= 0 = no timeout.
  int queue_timeout_ms = 10'000;
  /// Put a compliant plan cache (sized by `plan_cache`) in front of the
  /// engine's optimizer for the service's lifetime.
  bool enable_plan_cache = true;
  PlanCacheOptions plan_cache;
};

/// Point-in-time admission/outcome counters of a QueryService.
struct ServiceStats {
  int64_t submitted = 0;
  int64_t completed = 0;  ///< finished with an OK result
  int64_t failed = 0;     ///< non-OK other than queue timeout / cancel
  int64_t rejected = 0;   ///< Submit refused: queue or tenant quota full
  int64_t timed_out = 0;  ///< completed kResourceExhausted: queue wait
  int64_t cancelled = 0;  ///< completed kCancelled
  int64_t queued = 0;     ///< currently waiting
  int64_t inflight = 0;   ///< currently executing
};

/// Per-tenant admission/outcome counters (same meanings as ServiceStats,
/// restricted to one tenant), plus the tenant's scheduling weight.
struct TenantServiceStats {
  TenantId tenant = kDefaultTenantId;
  std::string name;
  int weight = 1;
  int64_t submitted = 0;
  int64_t completed = 0;
  int64_t failed = 0;
  int64_t rejected = 0;
  int64_t timed_out = 0;
  int64_t cancelled = 0;
  int64_t queued = 0;
  int64_t inflight = 0;
  /// Times the scheduler dispatched one of this tenant's queries.
  int64_t scheduled = 0;
};

/// A multi-tenant query service in front of one Engine: token
/// authentication, per-tenant quotas and weighted-fair admission,
/// per-query cancellation, dynamic policy updates, and a policy-epoch-
/// aware compliant plan cache shared by every session.
///
/// Admission model: each tenant has its own FIFO queue. `max_inflight`
/// dedicated workers pick the next query by stride scheduling — among
/// tenants with queued work and spare per-tenant inflight quota, the one
/// with the smallest virtual pass runs next and its pass advances by
/// stride/weight — so a hot tenant cannot starve light ones, and weights
/// set the capacity ratio under contention. Order stays FIFO within a
/// tenant. The plan cache is shared across tenants: a cache key covers
/// the plan-shaping optimizer options (including the required-result
/// set), and every hit re-proves Definition-1 compliance, so a hit can
/// never leak a plan a tenant's own options+policies would not produce.
///
/// Concurrency model: policy mutations (AddPolicy / RemovePolicy) take
/// the writer side of a shared mutex that every running query holds for
/// reading, so an update waits for in-flight queries to drain and no
/// query ever observes a half-applied catalog; cached plans made stale
/// by the update are caught by the epoch / fingerprint protocol plus the
/// per-hit compliance re-check (see PlanCache).
///
/// The service leaves the engine's tracing setting alone but concurrent
/// queries on a traced engine overwrite each other's last_trace();
/// enable tracing only with max_inflight == 1 when traces matter.
class QueryService {
 public:
  /// Handle of one submitted query.
  using TicketId = int64_t;

  explicit QueryService(Engine* engine, ServiceOptions options = {});
  /// Cancels queued work and joins the workers (running queries are
  /// cancelled cooperatively and finish first).
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// One client's view of the service: carries the authenticated tenant
  /// and per-session optimizer / executor options (defaulted from the
  /// engine at open time) applied to every query it submits. Sessions
  /// are cheap; open one per client or thread. Thread-compatible: share
  /// a session across threads only for Wait/Cancel, not concurrent
  /// option mutation.
  class Session {
   public:
    /// Enqueues `sql`. Fails fast with kResourceExhausted when the
    /// service queue or the tenant's queue quota is full (never blocks).
    Result<TicketId> Submit(const std::string& sql);
    /// Blocks until the ticket finishes; returns its result. A ticket
    /// whose queue wait exceeded the service's timeout completes with
    /// kResourceExhausted, a cancelled one with kCancelled. Each ticket
    /// may be waited on once.
    Result<QueryResult> Wait(TicketId ticket);
    /// Submit + Wait.
    Result<QueryResult> Run(const std::string& sql);
    /// Cancels the ticket: a queued query completes immediately with
    /// kCancelled; a running one stops at the next cancellation point.
    /// kNotFound after the ticket completed or was never issued.
    Status Cancel(TicketId ticket);

    TenantId tenant_id() const { return tenant_.id; }
    const std::string& tenant_name() const { return tenant_.name; }

    OptimizerOptions& optimizer_options() { return opt_; }
    ExecutorOptions& executor_options() { return exec_; }

   private:
    friend class QueryService;
    Session(QueryService* service, TenantInfo tenant, OptimizerOptions opt,
            ExecutorOptions exec)
        : service_(service),
          tenant_(std::move(tenant)),
          opt_(opt),
          exec_(exec) {}

    QueryService* service_;
    TenantInfo tenant_;
    OptimizerOptions opt_;
    ExecutorOptions exec_;
  };

  /// Opens an unauthenticated session as the default tenant, seeded with
  /// the engine's current default options.
  Session OpenSession();
  /// Opens a session for the tenant owning `token`; kPermissionDenied
  /// for unknown tokens.
  Result<Session> OpenSession(const std::string& token);

  /// Tenant registration and quota management. Quota changes apply to
  /// subsequent admissions; already-queued work is not re-evaluated.
  TenantRegistry& tenants() { return tenant_registry_; }

  /// Registers a policy after draining in-flight queries; invalidates
  /// affected cached plans via the epoch bump.
  Status AddPolicy(const std::string& location, const std::string& text);
  /// Drops a policy by id (PolicyExpression::id) after draining
  /// in-flight queries. No previously cached plan that depended on it
  /// will execute again (epoch + fingerprint + compliance re-check).
  Status RemovePolicy(int64_t id);

  ServiceStats stats() const;
  /// Per-tenant counters for every registered tenant, ordered by id.
  std::vector<TenantServiceStats> tenant_stats() const;
  /// The service's plan cache; nullptr when disabled.
  PlanCache* plan_cache() { return plan_cache_.get(); }
  Engine* engine() { return engine_; }
  const ServiceOptions& options() const { return options_; }

 private:
  enum class TaskState { kQueued, kRunning, kDone };

  struct Task {
    TicketId id = 0;
    TenantId tenant = kDefaultTenantId;
    std::string sql;
    OptimizerOptions opt;
    ExecutorOptions exec;
    std::chrono::steady_clock::time_point enqueued_at;
    std::shared_ptr<std::atomic<bool>> cancel;

    std::mutex mu;
    std::condition_variable cv;
    TaskState state = TaskState::kQueued;
    std::optional<Result<QueryResult>> result;
  };
  using TaskPtr = std::shared_ptr<Task>;

  /// Scheduler state of one tenant (guarded by mu_).
  struct TenantSched {
    std::deque<TaskPtr> queue;  ///< FIFO within the tenant
    int inflight = 0;           ///< tasks currently held by workers
    uint64_t pass = 0;          ///< stride-scheduling virtual time
    int64_t scheduled = 0;      ///< dispatch count (for tenant_stats)
  };

  /// Per-tenant outcome counters (guarded by stats_mu_).
  struct TenantCounters {
    int64_t submitted = 0;
    int64_t completed = 0;
    int64_t failed = 0;
    int64_t rejected = 0;
    int64_t timed_out = 0;
    int64_t cancelled = 0;
    int64_t queued = 0;
    int64_t inflight = 0;
  };

  Result<TicketId> SubmitTask(const std::string& sql, TenantId tenant,
                              const OptimizerOptions& opt,
                              const ExecutorOptions& exec);
  Result<QueryResult> WaitTask(TicketId ticket);
  Status CancelTask(TicketId ticket);
  void WorkerLoop();
  void RunTask(const TaskPtr& task);
  /// Picks the next runnable task by stride scheduling: among tenants
  /// with queued work and (unless draining) spare inflight quota, the
  /// smallest pass wins; its pass advances by stride/weight. Increments
  /// the tenant's inflight; the worker releases it via FinishDispatch.
  TaskPtr PickTaskLocked(bool draining);
  void FinishDispatch(TenantId tenant);
  /// Completes `task` (task->mu held by caller NOT required) exactly
  /// once; later attempts are no-ops. Returns whether this call won.
  bool CompleteTask(const TaskPtr& task, Result<QueryResult> result);
  TaskPtr FindTask(TicketId ticket);
  void ForgetTask(TicketId ticket);

  Engine* engine_;
  ServiceOptions options_;
  std::unique_ptr<PlanCache> plan_cache_;
  TenantRegistry tenant_registry_;

  /// Readers: every query, for its whole optimize + execute. Writer:
  /// policy mutations.
  std::shared_mutex policy_mu_;

  /// Guards sched_, tasks_, shutdown_, pass state (mutable so the
  /// tenant_stats() accessor can read scheduler gauges).
  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  std::map<TenantId, TenantSched> sched_;
  size_t total_queued_ = 0;  ///< tasks across all tenant queues
  uint64_t global_pass_ = 0; ///< pass of the last dispatched tenant
  std::unordered_map<TicketId, TaskPtr> tasks_;
  bool shutdown_ = false;
  TicketId next_ticket_ = 1;

  std::vector<std::thread> workers_;

  mutable std::mutex stats_mu_;
  ServiceStats stats_;
  std::map<TenantId, TenantCounters> tenant_counters_;
};

}  // namespace cgq

#endif  // CGQ_SERVICE_QUERY_SERVICE_H_
