#include "optimizer/cardinality.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace cgq {

namespace {

constexpr double kDefaultRangeSelectivity = 1.0 / 3.0;
constexpr double kLikeSelectivity = 0.1;

// Extracts (colref, op, literal), flipping sides when needed.
bool AsColLit(const Expr& e, const Expr** ref, ExprOp* op, Value* lit) {
  if (!IsComparisonOp(e.op())) return false;
  const Expr& l = *e.child(0);
  const Expr& r = *e.child(1);
  if (l.op() == ExprOp::kColumnRef && r.op() == ExprOp::kLiteral) {
    *ref = &l;
    *op = e.op();
    *lit = r.literal();
    return true;
  }
  if (r.op() == ExprOp::kColumnRef && l.op() == ExprOp::kLiteral) {
    *ref = &r;
    switch (e.op()) {
      case ExprOp::kLt:
        *op = ExprOp::kGt;
        break;
      case ExprOp::kLe:
        *op = ExprOp::kGe;
        break;
      case ExprOp::kGt:
        *op = ExprOp::kLt;
        break;
      case ExprOp::kGe:
        *op = ExprOp::kLe;
        break;
      default:
        *op = e.op();
        break;
    }
    *lit = l.literal();
    return true;
  }
  return false;
}

}  // namespace

double CardinalityEstimator::AttrNdv(AttrId id) const {
  if (!ctx_->HasAttr(id)) return 100;
  return std::max(1.0, ctx_->attr(id).ndv);
}

double CardinalityEstimator::RowBytes(
    const std::vector<OutputCol>& outputs) const {
  double bytes = 0;
  for (const OutputCol& c : outputs) {
    bytes += ctx_->HasAttr(c.id) ? ctx_->attr(c.id).width : 8.0;
  }
  return std::max(1.0, bytes);
}

double CardinalityEstimator::Selectivity(const Expr& conjunct) const {
  switch (conjunct.op()) {
    case ExprOp::kAnd:
      return Selectivity(*conjunct.child(0)) * Selectivity(*conjunct.child(1));
    case ExprOp::kOr: {
      double a = Selectivity(*conjunct.child(0));
      double b = Selectivity(*conjunct.child(1));
      return std::min(1.0, a + b - a * b);
    }
    case ExprOp::kNot:
      return 1.0 - Selectivity(*conjunct.child(0));
    case ExprOp::kLike:
      return kLikeSelectivity;
    case ExprOp::kNotLike:
      return 1.0 - kLikeSelectivity;
    case ExprOp::kIn: {
      if (conjunct.child(0)->op() == ExprOp::kColumnRef) {
        double ndv = AttrNdv(conjunct.child(0)->attr_id());
        return std::min(1.0, conjunct.in_list().size() / ndv);
      }
      return kDefaultRangeSelectivity;
    }
    default:
      break;
  }
  if (!IsComparisonOp(conjunct.op())) return kDefaultRangeSelectivity;

  // Column vs column (e.g. join predicate used as filter).
  if (conjunct.child(0)->op() == ExprOp::kColumnRef &&
      conjunct.child(1)->op() == ExprOp::kColumnRef) {
    if (conjunct.op() == ExprOp::kEq) {
      double ndv = std::max(AttrNdv(conjunct.child(0)->attr_id()),
                            AttrNdv(conjunct.child(1)->attr_id()));
      return 1.0 / ndv;
    }
    return kDefaultRangeSelectivity;
  }

  const Expr* ref = nullptr;
  ExprOp op;
  Value lit;
  if (!AsColLit(conjunct, &ref, &op, &lit)) return kDefaultRangeSelectivity;
  double ndv = AttrNdv(ref->attr_id());
  switch (op) {
    case ExprOp::kEq:
      return 1.0 / ndv;
    case ExprOp::kNe:
      return 1.0 - 1.0 / ndv;
    case ExprOp::kLt:
    case ExprOp::kLe:
    case ExprOp::kGt:
    case ExprOp::kGe: {
      if (!ctx_->HasAttr(ref->attr_id()) || !lit.is_numeric()) {
        return kDefaultRangeSelectivity;
      }
      const AttrInfo& info = ctx_->attr(ref->attr_id());
      if (!info.min || !info.max || *info.max <= *info.min) {
        return kDefaultRangeSelectivity;
      }
      double v = lit.AsDouble();
      double frac = (v - *info.min) / (*info.max - *info.min);
      frac = std::clamp(frac, 0.0, 1.0);
      if (op == ExprOp::kGt || op == ExprOp::kGe) frac = 1.0 - frac;
      return std::clamp(frac, 0.001, 1.0);
    }
    default:
      return kDefaultRangeSelectivity;
  }
}

CardEstimate CardinalityEstimator::EstimateOp(
    const PlanNode& payload, const std::vector<OutputCol>& outputs,
    const std::vector<CardEstimate>& children) const {
  CardEstimate est;
  est.row_bytes = RowBytes(outputs);
  switch (payload.kind()) {
    case PlanKind::kScan: {
      auto table = ctx_->catalog().GetTable(payload.table);
      double rows = table.ok() ? (*table)->stats.row_count : 1000;
      est.rows = std::max(1.0, rows * payload.row_fraction);
      return est;
    }
    case PlanKind::kFilter: {
      CGQ_CHECK(children.size() == 1);
      double sel = 1.0;
      for (const ExprPtr& c : payload.conjuncts) sel *= Selectivity(*c);
      est.rows = std::max(1.0, children[0].rows * sel);
      return est;
    }
    case PlanKind::kProject:
    case PlanKind::kShip:
      CGQ_CHECK(children.size() == 1);
      est.rows = children[0].rows;
      return est;
    case PlanKind::kJoin: {
      CGQ_CHECK(children.size() == 2);
      double rows = children[0].rows * children[1].rows;
      for (const ExprPtr& c : payload.conjuncts) rows *= Selectivity(*c);
      est.rows = std::max(1.0, rows);
      return est;
    }
    case PlanKind::kAggregate: {
      CGQ_CHECK(children.size() == 1);
      double groups = 1;
      for (AttrId g : payload.group_ids) {
        groups *= AttrNdv(g);
      }
      est.rows = std::max(1.0, std::min(children[0].rows, groups));
      // Register ndv of the aggregate outputs for upstream estimation.
      for (AttrId out : payload.agg_out_ids) {
        if (ctx_->HasAttr(out)) ctx_->SetAttrNdv(out, est.rows);
      }
      return est;
    }
    case PlanKind::kUnion: {
      double rows = 0;
      for (const CardEstimate& c : children) rows += c.rows;
      est.rows = std::max(1.0, rows);
      return est;
    }
  }
  est.rows = 1;
  return est;
}

}  // namespace cgq
