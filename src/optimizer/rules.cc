#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "optimizer/memo.h"

namespace cgq {

namespace {

constexpr size_t kMaxExprs = 120000;

}  // namespace

/// Applies the transformation rules (§6.2: algebraic equivalence rules fed
/// to the Volcano optimizer generator) until fixpoint:
///  - join commutativity and associativity (both directions), which
///    together enumerate bushy join orders;
///  - eager aggregation push-down through joins and through UNION ALL,
///    which provides the aggregate-masking alternatives that AR4 needs
///    (e.g. Fig 1(b) operator Γ(o, sum(q)); Fig 5(e) for TPC-H Q3).
class RuleEngine {
 public:
  RuleEngine(Memo* memo, bool enable_agg_pushdown)
      : memo_(memo), enable_agg_pushdown_(enable_agg_pushdown) {}

  void Run() {
    bool changed = true;
    int rounds = 0;
    while (changed && memo_->mexprs_.size() < kMaxExprs && rounds < 32) {
      ++rounds;
      size_t before = memo_->mexprs_.size();
      for (size_t id = 0; id < memo_->mexprs_.size(); ++id) {
        if (memo_->mexprs_.size() >= kMaxExprs) break;
        Apply(static_cast<int>(id));
      }
      changed = memo_->mexprs_.size() != before;
    }
  }

 private:
  void Apply(int id) {
    // Note: mexprs_ may reallocate during rule application; re-read by id.
    PlanKind kind = memo_->mexprs_[id].payload->kind();
    if (kind == PlanKind::kJoin) {
      JoinCommute(id);
      JoinAssoc(id, /*left=*/true);
      JoinAssoc(id, /*left=*/false);
    } else if (kind == PlanKind::kAggregate && enable_agg_pushdown_) {
      EagerAggJoin(id);
      EagerAggUnion(id);
    } else if (kind == PlanKind::kScan) {
      ExpandReplicas(id);
    }
  }

  // For replicated tables, each replica site is an alternative scan in the
  // same group (its own location's policies govern it).
  void ExpandReplicas(int id) {
    const MExpr expr = memo_->mexprs_[id];
    auto table = memo_->ctx_->catalog().GetTable(expr.payload->table);
    if (!table.ok() || !(*table)->replicated) return;
    const std::vector<TableFragment>& fragments = (*table)->fragments;
    for (size_t f = 0; f < fragments.size(); ++f) {
      if (static_cast<int>(f) == expr.payload->fragment_ordinal) continue;
      auto replica = std::make_shared<PlanNode>(*expr.payload);
      replica->children().clear();
      replica->fragment_ordinal = static_cast<int>(f);
      replica->scan_location = fragments[f].location;
      memo_->InsertExpr(replica, {}, expr.group);
    }
  }

  bool GroupHasAttrs(int group, const std::vector<AttrId>& ids) const {
    const std::vector<OutputCol>& outs = memo_->groups_[group].outputs;
    for (AttrId id : ids) {
      bool found = false;
      for (const OutputCol& c : outs) {
        if (c.id == id) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    return true;
  }

  bool CoveredByGroups(const Expr& e, int g1, int g2) const {
    std::vector<AttrId> ids;
    e.CollectAttrIds(&ids);
    for (AttrId id : ids) {
      bool found = false;
      for (int g : {g1, g2}) {
        for (const OutputCol& c : memo_->groups_[g].outputs) {
          if (c.id == id) {
            found = true;
            break;
          }
        }
        if (found) break;
      }
      if (!found) return false;
    }
    return true;
  }

  void JoinCommute(int id) {
    const MExpr expr = memo_->mexprs_[id];
    auto payload = std::make_shared<PlanNode>(PlanKind::kJoin);
    payload->conjuncts = expr.payload->conjuncts;
    memo_->InsertExpr(payload, {expr.child_groups[1], expr.child_groups[0]},
                      expr.group);
  }

  // Join(Join(B,C), D) => Join(B, Join(C,D))   (left = true)
  // Join(B, Join(C,D)) => Join(Join(B,C), D)   (left = false)
  void JoinAssoc(int id, bool left) {
    const MExpr outer = memo_->mexprs_[id];
    int nested_group = outer.child_groups[left ? 0 : 1];
    int other_group = outer.child_groups[left ? 1 : 0];
    // Snapshot: the group may grow while we iterate.
    std::vector<int> members = memo_->groups_[nested_group].mexprs;
    for (int inner_id : members) {
      const MExpr inner = memo_->mexprs_[inner_id];
      if (inner.payload->kind() != PlanKind::kJoin) continue;
      int b = inner.child_groups[0];
      int c = inner.child_groups[1];
      // Conjunct pool from both joins.
      std::vector<ExprPtr> pool = outer.payload->conjuncts;
      pool.insert(pool.end(), inner.payload->conjuncts.begin(),
                  inner.payload->conjuncts.end());
      int new_inner_l, new_inner_r, kept_side;
      if (left) {
        // (B ⋈ C) ⋈ D  =>  B ⋈ (C ⋈ D)
        new_inner_l = c;
        new_inner_r = other_group;
        kept_side = b;
      } else {
        // B ⋈ (C ⋈ D)  =>  (B ⋈ C) ⋈ D ; here nested = (C ⋈ D).
        new_inner_l = other_group;
        new_inner_r = b;
        kept_side = c;
      }
      std::vector<ExprPtr> inner_conjuncts, outer_conjuncts;
      for (const ExprPtr& p : pool) {
        if (CoveredByGroups(*p, new_inner_l, new_inner_r)) {
          inner_conjuncts.push_back(p);
        } else {
          outer_conjuncts.push_back(p);
        }
      }
      // Avoid introducing cross products (unless the query itself is one).
      if (inner_conjuncts.empty() && !pool.empty()) continue;
      if (outer_conjuncts.empty() && !pool.empty()) continue;

      auto new_inner = std::make_shared<PlanNode>(PlanKind::kJoin);
      new_inner->conjuncts = std::move(inner_conjuncts);
      int inner_group =
          memo_->InsertExpr(new_inner, {new_inner_l, new_inner_r});

      auto new_outer = std::make_shared<PlanNode>(PlanKind::kJoin);
      new_outer->conjuncts = std::move(outer_conjuncts);
      if (left) {
        memo_->InsertExpr(new_outer, {kept_side, inner_group}, outer.group);
      } else {
        memo_->InsertExpr(new_outer, {inner_group, kept_side}, outer.group);
      }
    }
  }

  // True when the aggregate's calls can be partially computed (decomposable
  // functions, arguments over base attributes only).
  static bool CallsPushable(const PlanNode& agg) {
    if (agg.agg_calls.empty()) return false;
    for (const AggCall& call : agg.agg_calls) {
      if (call.fn == AggFn::kAvg) return false;
      std::vector<AttrId> ids;
      call.arg->CollectAttrIds(&ids);
      for (AttrId id : ids) {
        if (IsSyntheticAttr(id)) return false;
      }
    }
    return true;
  }

  // Allocates (or retrieves from the per-query cache) the synthetic output
  // attributes for a partial aggregate identified by `cache_key`.
  std::vector<AttrId> PartialOutIds(size_t cache_key,
                                    const std::vector<AggCall>& calls) {
    auto& cache = memo_->ctx_->partial_agg_ids();
    auto it = cache.find(cache_key);
    if (it != cache.end()) return it->second;
    std::vector<AttrId> out_ids;
    for (size_t i = 0; i < calls.size(); ++i) {
      AttrInfo info;
      info.name = "partial_" + std::to_string(cache_key % 99991) + "_" +
                  std::to_string(i);
      info.type = calls[i].fn == AggFn::kCount ? DataType::kInt64
                                               : calls[i].arg->type();
      info.width = 8;
      out_ids.push_back(memo_->ctx_->AddSynthetic(std::move(info)));
    }
    cache[cache_key] = out_ids;
    return out_ids;
  }

  static AggFn OuterFnOf(AggFn fn) {
    return (fn == AggFn::kSum || fn == AggFn::kCount) ? AggFn::kSum : fn;
  }

  static ExprPtr PartialRef(AttrId id, AggFn fn, const ExprPtr& arg) {
    DataType t = fn == AggFn::kCount ? DataType::kInt64 : arg->type();
    return Expr::BoundColumn(id, "", "partial", "", t);
  }

  // Eager aggregation with a groupby-count correction (Yan & Larson):
  //
  //   Γ_G[f1(x), f2(y)](S ⋈ O)   with x over S, y over O
  //     => Γ_G[f1'(p1), sum(y * cnt)]( Γp_K[f1(x), count(*)](S) ⋈ O )
  //
  // where K = (G ∩ S) ∪ S's join attributes. Because every join conjunct's
  // S-attributes are in K, an O-row matches either all or none of a partial
  // group's rows, so multiplying O-side SUM/COUNT contributions by the
  // partial count is exact for any join multiplicity. This is the rewrite
  // that produces the paper's aggregate-masking plans (Fig. 1(b), Fig. 5(e)).
  void EagerAggJoin(int id) {
    const MExpr agg_expr = memo_->mexprs_[id];
    const PlanNode& agg = *agg_expr.payload;
    if (!CallsPushable(agg)) return;
    int child_group = agg_expr.child_groups[0];
    std::vector<int> members = memo_->groups_[child_group].mexprs;
    for (int join_id : members) {
      const MExpr join_expr = memo_->mexprs_[join_id];
      if (join_expr.payload->kind() != PlanKind::kJoin) continue;
      for (int side = 0; side < 2; ++side) {
        int side_group = join_expr.child_groups[side];
        int other_group = join_expr.child_groups[1 - side];
        if (memo_->groups_[side_group].summary.is_aggregate) continue;

        // Classify calls: pushable to this side vs. kept above. Kept calls
        // must be entirely on the other side and duplication-correctable.
        std::vector<AggCall> pushed;        // partial calls (side)
        std::vector<size_t> pushed_slots;   // original call index
        std::vector<size_t> kept_slots;
        bool ok = true;
        for (size_t i = 0; i < agg.agg_calls.size(); ++i) {
          const AggCall& call = agg.agg_calls[i];
          std::vector<AttrId> ids;
          call.arg->CollectAttrIds(&ids);
          if (GroupHasAttrs(side_group, ids)) {
            pushed.push_back(call);
            pushed_slots.push_back(i);
          } else if (GroupHasAttrs(other_group, ids)) {
            // SUM is corrected by *cnt; MIN/MAX are duplication-invariant.
            if (call.fn == AggFn::kCount) {
              ok = false;
              break;
            }
            kept_slots.push_back(i);
          } else {
            ok = false;  // argument spans both sides
            break;
          }
        }
        if (!ok || pushed.empty()) continue;

        // Partial keys: side-visible group keys + side join attributes.
        std::vector<AttrId> keys;
        for (AttrId g : agg.group_ids) {
          if (GroupHasAttrs(side_group, {g})) keys.push_back(g);
        }
        for (const ExprPtr& c : join_expr.payload->conjuncts) {
          std::vector<AttrId> ids;
          c->CollectAttrIds(&ids);
          for (AttrId cid : ids) {
            if (GroupHasAttrs(side_group, {cid})) keys.push_back(cid);
          }
        }
        std::sort(keys.begin(), keys.end());
        keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

        // The duplication count, needed whenever calls stay above.
        bool with_count = !kept_slots.empty();
        if (with_count) {
          pushed.push_back(
              AggCall{AggFn::kCount, Expr::Literal(Value::Int64(1))});
        }

        size_t cache_key = static_cast<size_t>(side_group) * 2654435761u;
        for (AttrId k : keys) cache_key = cache_key * 1000003u ^ k;
        for (const AggCall& c : pushed) {
          cache_key = cache_key * 1000003u ^ c.arg->Hash();
          cache_key = cache_key * 31 ^ static_cast<size_t>(c.fn);
        }
        std::vector<AttrId> out_ids = PartialOutIds(cache_key, pushed);

        auto partial = std::make_shared<PlanNode>(PlanKind::kAggregate);
        partial->is_partial_agg = true;
        partial->group_ids = keys;
        partial->agg_calls = pushed;
        partial->agg_out_ids = out_ids;
        int partial_group = memo_->InsertExpr(partial, {side_group});

        auto new_join = std::make_shared<PlanNode>(PlanKind::kJoin);
        new_join->conjuncts = join_expr.payload->conjuncts;
        std::vector<int> join_children(2);
        join_children[side] = partial_group;
        join_children[1 - side] = other_group;
        int new_join_group = memo_->InsertExpr(new_join, join_children);

        // Rewritten outer calls, slot by slot.
        std::vector<AggCall> outer_calls(agg.agg_calls.size());
        for (size_t k = 0; k < pushed_slots.size(); ++k) {
          size_t slot = pushed_slots[k];
          const AggCall& orig = agg.agg_calls[slot];
          outer_calls[slot] =
              AggCall{OuterFnOf(orig.fn),
                      PartialRef(out_ids[k], orig.fn, orig.arg)};
        }
        ExprPtr cnt_ref;
        if (with_count) {
          cnt_ref = PartialRef(out_ids.back(), AggFn::kCount, nullptr);
        }
        for (size_t slot : kept_slots) {
          const AggCall& orig = agg.agg_calls[slot];
          if (orig.fn == AggFn::kSum) {
            outer_calls[slot] = AggCall{
                AggFn::kSum, Expr::Binary(ExprOp::kMul, orig.arg, cnt_ref)};
          } else {
            outer_calls[slot] = orig;  // MIN/MAX: duplication-invariant
          }
        }

        auto outer = std::make_shared<PlanNode>(PlanKind::kAggregate);
        outer->group_ids = agg.group_ids;
        outer->agg_calls = std::move(outer_calls);
        outer->agg_out_ids = agg.agg_out_ids;
        outer->is_partial_agg = agg.is_partial_agg;
        memo_->InsertExpr(outer, {new_join_group}, agg_expr.group);
      }
    }
  }

  // Γ(U(b1..bk)) => Γ'( U(Γp(b1)..Γp(bk)) ): per-fragment partial
  // aggregation for distributed tables (§7.5).
  void EagerAggUnion(int id) {
    const MExpr agg_expr = memo_->mexprs_[id];
    const PlanNode& agg = *agg_expr.payload;
    if (!CallsPushable(agg)) return;
    int child_group = agg_expr.child_groups[0];
    std::vector<int> members = memo_->groups_[child_group].mexprs;
    for (int union_id : members) {
      const MExpr union_expr = memo_->mexprs_[union_id];
      if (union_expr.payload->kind() != PlanKind::kUnion) continue;

      // Branches partition the rows, so plain partial aggregation per
      // branch plus a combining aggregate is exact (no count correction).
      std::vector<AttrId> keys = agg.group_ids;
      std::sort(keys.begin(), keys.end());

      size_t cache_key = static_cast<size_t>(child_group) * 0x9E3779B9u;
      for (AttrId k : keys) cache_key = cache_key * 1000003u ^ k;
      for (const AggCall& c : agg.agg_calls) {
        cache_key = cache_key * 1000003u ^ c.arg->Hash();
        cache_key = cache_key * 31 ^ static_cast<size_t>(c.fn);
      }
      std::vector<AttrId> out_ids = PartialOutIds(cache_key, agg.agg_calls);

      auto partial = std::make_shared<PlanNode>(PlanKind::kAggregate);
      partial->is_partial_agg = true;
      partial->group_ids = keys;
      partial->agg_calls = agg.agg_calls;
      partial->agg_out_ids = out_ids;

      std::vector<AggCall> outer_calls;
      for (size_t i = 0; i < agg.agg_calls.size(); ++i) {
        const AggCall& orig = agg.agg_calls[i];
        outer_calls.push_back(AggCall{
            OuterFnOf(orig.fn), PartialRef(out_ids[i], orig.fn, orig.arg)});
      }

      std::vector<int> branch_groups;
      bool ok = true;
      for (int branch : union_expr.child_groups) {
        if (memo_->groups_[branch].summary.is_aggregate) {
          ok = false;
          break;
        }
        branch_groups.push_back(memo_->InsertExpr(partial, {branch}));
      }
      if (!ok) continue;

      auto new_union = std::make_shared<PlanNode>(PlanKind::kUnion);
      int new_union_group = memo_->InsertExpr(new_union, branch_groups);

      auto outer = std::make_shared<PlanNode>(PlanKind::kAggregate);
      outer->group_ids = agg.group_ids;
      outer->agg_calls = std::move(outer_calls);
      outer->agg_out_ids = agg.agg_out_ids;
      outer->is_partial_agg = agg.is_partial_agg;
      memo_->InsertExpr(outer, {new_union_group}, agg_expr.group);
    }
  }

  Memo* memo_;
  bool enable_agg_pushdown_;
};

void Memo::Explore(bool enable_agg_pushdown) {
  RuleEngine engine(this, enable_agg_pushdown);
  engine.Run();
}

}  // namespace cgq
