#ifndef CGQ_OPTIMIZER_MEMO_H_
#define CGQ_OPTIMIZER_MEMO_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "optimizer/cardinality.h"
#include "plan/plan_node.h"
#include "plan/planner_context.h"
#include "plan/summary.h"

namespace cgq {

/// A multi-expression: an operator payload plus child *groups*.
struct MExpr {
  PlanNodePtr payload;  ///< children empty; outputs set for scans
  std::vector<int> child_groups;
  int group = -1;
};

/// An equivalence class of semantically identical expressions, with cached
/// logical properties shared by all members.
struct Group {
  std::vector<int> mexprs;          ///< indexes into Memo::mexprs()
  std::vector<OutputCol> outputs;   ///< canonical output columns
  QuerySummary summary;             ///< for AR4 / compliance
  uint32_t rel_set = 0;             ///< bitmask of relation instances
  CardEstimate card;

  /// Join-order canonicalization: the set of non-join "base" groups under
  /// this group's join trees plus an order-insensitive hash of all join
  /// conjuncts in the pool. Two join expressions with equal signatures are
  /// semantically identical, so rule results unify into one group instead
  /// of duplicating the space.
  std::vector<int> join_bases;      ///< sorted; {self} for non-join groups
  size_t conjunct_pool_hash = 0;

  // Annotation state (phase 1), filled by the PlanAnnotator.
  /// A(q) per source database (replicated tables make the database a
  /// property of the chosen plan, not of the group).
  std::unordered_map<uint32_t, LocationSet> ar4_cache;
  bool winners_computed = false;
  std::vector<struct Winner> winners;
};

/// One Pareto-optimal annotated alternative of a group: the cheapest plan
/// whose root carries this (shipping trait, execution trait) pair.
struct Winner {
  LocationSet ship_trait;
  LocationSet exec_trait;
  /// Locations of the base-table fragments/replicas chosen below (drives
  /// AR4: single-source blocks are evaluated against that database).
  LocationSet sources;
  double cost = 0;
  int mexpr = -1;
  std::vector<int> child_winners;  ///< winner index per child group
};

/// Volcano-style memo: inserts deduplicate structurally identical
/// expressions; transformation rules (see rules.cc) expand groups with
/// equivalent alternatives until fixpoint.
class Memo {
 public:
  Memo(PlannerContext* ctx, CardinalityEstimator* estimator)
      : ctx_(ctx), estimator_(estimator) {}

  /// Recursively inserts a plan tree; returns the root group id.
  int InsertTree(const PlanNode& node);

  /// Inserts one expression. When `target_group` >= 0 the expression joins
  /// that group (rule results); otherwise a matching existing group is
  /// reused or a fresh group created. Returns the group id actually used.
  int InsertExpr(PlanNodePtr payload, std::vector<int> child_groups,
                 int target_group = -1);

  /// Applies all transformation rules until no new expression appears.
  /// `enable_agg_pushdown` toggles the eager-aggregation rules (needed for
  /// aggregate masking; cheap to disable for ablation).
  void Explore(bool enable_agg_pushdown = true);

  const std::vector<Group>& groups() const { return groups_; }
  Group& group(int id) { return groups_[id]; }
  const Group& group(int id) const { return groups_[id]; }
  const std::vector<MExpr>& mexprs() const { return mexprs_; }
  const MExpr& mexpr(int id) const { return mexprs_[id]; }

  PlannerContext* ctx() { return ctx_; }
  const CardinalityEstimator& estimator() const { return *estimator_; }

  size_t num_groups() const { return groups_.size(); }
  size_t num_exprs() const { return mexprs_.size(); }

 private:
  friend class RuleEngine;

  size_t ExprKey(const PlanNode& payload,
                 const std::vector<int>& child_groups) const;

  PlannerContext* ctx_;
  CardinalityEstimator* estimator_;
  std::vector<Group> groups_;
  std::vector<MExpr> mexprs_;
  std::unordered_map<size_t, std::vector<int>> expr_index_;  // key -> mexprs
  std::unordered_map<size_t, int> join_signature_index_;     // sig -> group
};

}  // namespace cgq

#endif  // CGQ_OPTIMIZER_MEMO_H_
