#ifndef CGQ_OPTIMIZER_CARDINALITY_H_
#define CGQ_OPTIMIZER_CARDINALITY_H_

#include <vector>

#include "plan/plan_node.h"
#include "plan/planner_context.h"

namespace cgq {

/// Cardinality and width estimate of one operator's output.
struct CardEstimate {
  double rows = 0;
  double row_bytes = 0;
};

/// Textbook cardinality estimation over the catalog statistics:
/// uniformity + independence assumptions, equi-join selectivity
/// 1/max(ndv), range selectivity from min/max when known (1/3 fallback).
class CardinalityEstimator {
 public:
  explicit CardinalityEstimator(PlannerContext* ctx) : ctx_(ctx) {}

  /// Estimates one operator given its children's estimates. `outputs` are
  /// the operator's output columns (used for row width). Synthetic
  /// aggregate outputs get their ndv registered as a side effect.
  CardEstimate EstimateOp(const PlanNode& payload,
                          const std::vector<OutputCol>& outputs,
                          const std::vector<CardEstimate>& children) const;

  /// Selectivity of one predicate conjunct in [0, 1].
  double Selectivity(const Expr& conjunct) const;

 private:
  double AttrNdv(AttrId id) const;
  double RowBytes(const std::vector<OutputCol>& outputs) const;

  PlannerContext* ctx_;
};

}  // namespace cgq

#endif  // CGQ_OPTIMIZER_CARDINALITY_H_
