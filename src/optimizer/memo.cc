#include "optimizer/memo.h"

#include <algorithm>

#include "common/logging.h"

namespace cgq {

size_t Memo::ExprKey(const PlanNode& payload,
                     const std::vector<int>& child_groups) const {
  size_t h = payload.PayloadHash();
  for (int g : child_groups) {
    h = h * 1000003u ^ static_cast<size_t>(g + 1);
  }
  return h;
}

int Memo::InsertTree(const PlanNode& node) {
  std::vector<int> child_groups;
  child_groups.reserve(node.children().size());
  for (const PlanNodePtr& c : node.children()) {
    child_groups.push_back(InsertTree(*c));
  }
  // Copy the payload without children.
  auto payload = std::make_shared<PlanNode>(node);
  payload->children().clear();
  return InsertExpr(std::move(payload), std::move(child_groups));
}

int Memo::InsertExpr(PlanNodePtr payload, std::vector<int> child_groups,
                     int target_group) {
  size_t key = ExprKey(*payload, child_groups);
  auto it = expr_index_.find(key);
  if (it != expr_index_.end()) {
    for (int id : it->second) {
      const MExpr& existing = mexprs_[id];
      if (existing.child_groups == child_groups &&
          existing.payload->PayloadEquals(*payload)) {
        return existing.group;
      }
    }
  }

  // Canonicalize join expressions by (base set, conjunct pool): a join
  // derived through a different rule sequence must land in the group of
  // its semantic equivalent, or the search space duplicates explosively.
  size_t signature = 0;
  if (payload->kind() == PlanKind::kJoin && target_group < 0) {
    std::vector<int> bases;
    size_t pool = 0;
    for (int cg : child_groups) {
      bases.insert(bases.end(), groups_[cg].join_bases.begin(),
                   groups_[cg].join_bases.end());
      pool += groups_[cg].conjunct_pool_hash;
    }
    std::sort(bases.begin(), bases.end());
    for (const ExprPtr& c : payload->conjuncts) pool += c->Hash();
    signature = pool;
    for (int b : bases) {
      signature = signature * 1000003u ^ static_cast<size_t>(b + 1);
    }
    auto sig_it = join_signature_index_.find(signature);
    if (sig_it != join_signature_index_.end()) {
      target_group = sig_it->second;
    }
  }

  int expr_id = static_cast<int>(mexprs_.size());
  MExpr expr;
  expr.payload = std::move(payload);
  expr.child_groups = child_groups;

  int group_id = target_group;
  if (group_id < 0) {
    group_id = static_cast<int>(groups_.size());
    groups_.emplace_back();
    Group& g = groups_.back();
    // Logical properties from this first member expression.
    std::vector<const std::vector<OutputCol>*> child_outputs;
    std::vector<const QuerySummary*> child_summaries;
    std::vector<CardEstimate> child_cards;
    for (int cg : child_groups) {
      child_outputs.push_back(&groups_[cg].outputs);
      child_summaries.push_back(&groups_[cg].summary);
      child_cards.push_back(groups_[cg].card);
      g.rel_set |= groups_[cg].rel_set;
    }
    g.outputs = ComputeOutputs(*expr.payload, child_outputs);
    g.summary = SummarizeOp(*expr.payload, child_summaries);
    if (expr.payload->kind() == PlanKind::kScan) {
      g.rel_set |= (1u << expr.payload->rel_index);
    }
    g.card = estimator_->EstimateOp(*expr.payload, g.outputs, child_cards);
    if (expr.payload->kind() == PlanKind::kJoin) {
      size_t pool = 0;
      for (int cg : child_groups) {
        g.join_bases.insert(g.join_bases.end(),
                            groups_[cg].join_bases.begin(),
                            groups_[cg].join_bases.end());
        pool += groups_[cg].conjunct_pool_hash;
      }
      std::sort(g.join_bases.begin(), g.join_bases.end());
      for (const ExprPtr& c : expr.payload->conjuncts) pool += c->Hash();
      g.conjunct_pool_hash = pool;
      if (signature != 0) join_signature_index_[signature] = group_id;
    } else {
      g.join_bases = {group_id};
      g.conjunct_pool_hash = 0;
    }
  }

  expr.group = group_id;
  mexprs_.push_back(std::move(expr));
  groups_[group_id].mexprs.push_back(expr_id);
  expr_index_[key].push_back(expr_id);
  return group_id;
}

}  // namespace cgq
