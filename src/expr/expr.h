#ifndef CGQ_EXPR_EXPR_H_
#define CGQ_EXPR_EXPR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "types/value.h"

namespace cgq {

/// Identifies one attribute of one relation *instance* in a query.
/// Base-table instances use (relation index << 16) | column index; synthetic
/// attributes (outputs of partial aggregates) are allocated from a counter
/// starting at kFirstSyntheticAttr.
using AttrId = uint32_t;
constexpr AttrId kFirstSyntheticAttr = 1u << 20;

inline bool IsSyntheticAttr(AttrId id) { return id >= kFirstSyntheticAttr; }

/// An attribute of a *base table* (not an instance): what dataflow policies
/// talk about. Both fields are lower-cased.
struct BaseAttr {
  std::string table;
  std::string column;

  bool operator==(const BaseAttr& other) const = default;
  bool operator<(const BaseAttr& other) const {
    return table != other.table ? table < other.table : column < other.column;
  }
  std::string ToString() const { return table + "." + column; }
};

/// Node kinds of the scalar expression tree.
enum class ExprOp {
  kLiteral,
  kColumnRef,
  kAnd,
  kOr,
  kNot,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kLike,
  kNotLike,
  kIn,  ///< child[0] IN (literal list)
};

const char* ExprOpToString(ExprOp op);
bool IsComparisonOp(ExprOp op);

/// Aggregate functions supported by queries and aggregate policy
/// expressions (§4.2).
enum class AggFn { kSum, kAvg, kMin, kMax, kCount };

const char* AggFnToString(AggFn fn);

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Immutable scalar expression node.
///
/// Expressions are created unbound by the SQL parser (column refs carry only
/// textual names) and bound by the Binder, which fills in `attr_id`,
/// `base_table` and `type`. All planner/optimizer code requires bound
/// expressions.
class Expr {
 public:
  // -- Factories -----------------------------------------------------------
  static ExprPtr Literal(Value v);
  /// Literal that originated from the `ordinal`-th literal token of the
  /// query text (parameterized plan caching). Ordinals are metadata: they
  /// never change Equals/Hash or evaluation, only which slot a cached
  /// plan rebinds when served with different constants.
  static ExprPtr ParamLiteral(Value v, int ordinal);
  /// Unbound column reference, `qualifier` may be empty.
  static ExprPtr Column(std::string qualifier, std::string column);
  /// Bound column reference.
  static ExprPtr BoundColumn(AttrId attr_id, std::string qualifier,
                             std::string column, std::string base_table,
                             DataType type);
  static ExprPtr Unary(ExprOp op, ExprPtr child);
  static ExprPtr Binary(ExprOp op, ExprPtr left, ExprPtr right);
  static ExprPtr InList(ExprPtr needle, std::vector<Value> literals);
  /// IN list whose values carry per-element param ordinals (-1 =
  /// untagged). `ordinals` must be empty or parallel to `literals`.
  static ExprPtr InList(ExprPtr needle, std::vector<Value> literals,
                        std::vector<int> ordinals);
  /// Conjunction of `conjuncts`; returns literal TRUE when empty, the sole
  /// element when singleton.
  static ExprPtr MakeConjunction(std::vector<ExprPtr> conjuncts);

  ExprOp op() const { return op_; }
  const Value& literal() const { return literal_; }
  const std::vector<ExprPtr>& children() const { return children_; }
  const ExprPtr& child(size_t i) const { return children_[i]; }
  const std::vector<Value>& in_list() const { return in_list_; }
  /// Parallel to in_list() when the list is tagged; empty otherwise.
  const std::vector<int>& in_list_ordinals() const {
    return in_list_ordinals_;
  }
  /// Which literal token of the query text this literal came from; -1 for
  /// synthetic / policy literals that must never be rebound.
  int param_ordinal() const { return param_ordinal_; }

  // Column-ref accessors.
  AttrId attr_id() const { return attr_id_; }
  const std::string& qualifier() const { return qualifier_; }
  const std::string& column() const { return column_; }
  const std::string& base_table() const { return base_table_; }
  bool is_bound() const { return op_ != ExprOp::kColumnRef || bound_; }

  DataType type() const { return type_; }

  bool IsLiteralTrue() const {
    return op_ == ExprOp::kLiteral && literal_.is_int64() &&
           literal_.int64() == 1;
  }

  /// Structural equality (literals compared structurally).
  bool Equals(const Expr& other) const;
  size_t Hash() const;

  /// SQL-ish rendering, e.g. "(c.acctbal > 100 AND o.status = 'F')".
  std::string ToString() const;

  /// Appends the AttrIds of all column refs in this tree to `out`.
  void CollectAttrIds(std::vector<AttrId>* out) const;
  /// Appends (table, column) of all bound base-table column refs.
  void CollectBaseAttrs(std::vector<BaseAttr>* out) const;
  /// Appends pointers to all column-ref nodes in this tree.
  void CollectColumnRefs(std::vector<const Expr*>* out) const;

  /// Returns a copy of this tree with every column ref whose attr_id appears
  /// in `mapping` replaced by the mapped expression.
  static ExprPtr Substitute(
      const ExprPtr& e,
      const std::vector<std::pair<AttrId, ExprPtr>>& mapping);

 private:
  Expr() = default;

  ExprOp op_ = ExprOp::kLiteral;
  Value literal_;
  std::vector<ExprPtr> children_;
  std::vector<Value> in_list_;
  std::vector<int> in_list_ordinals_;
  int param_ordinal_ = -1;

  // Column-ref payload.
  AttrId attr_id_ = 0;
  bool bound_ = false;
  std::string qualifier_;   // relation alias as written (lower-cased)
  std::string column_;      // column name (lower-cased)
  std::string base_table_;  // canonical base table (lower-cased); bound only

  DataType type_ = DataType::kInt64;
};

/// An aggregate call `fn(arg)` as used in SELECT lists, Aggregate plan
/// operators, and query summaries.
struct AggCall {
  AggFn fn = AggFn::kSum;
  ExprPtr arg;  ///< never null

  bool Equals(const AggCall& other) const {
    return fn == other.fn && arg->Equals(*other.arg);
  }
  std::string ToString() const;
};

/// Splits a bound predicate into its top-level conjuncts (flattens AND).
std::vector<ExprPtr> SplitConjuncts(const ExprPtr& pred);

}  // namespace cgq

#endif  // CGQ_EXPR_EXPR_H_
