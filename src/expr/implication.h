#ifndef CGQ_EXPR_IMPLICATION_H_
#define CGQ_EXPR_IMPLICATION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "expr/expr.h"

namespace cgq {

/// Sound-but-incomplete logical implication test between conjunctive
/// predicates, in the spirit of Goldstein & Larson (SIGMOD'01), as used by
/// the policy evaluator (§5, line 3 of Algorithm 1: P_q ⟹ P_e).
///
/// Supported reasoning:
///  - per-column ranges and equality/IN point sets derived from the premise;
///  - structural matching of arbitrary atoms (incl. LIKE and column-column
///    equalities such as join predicates);
///  - disjunctions: a premise OR-conjunct implies an atom when all its
///    branches do; an OR conclusion is implied when any branch is;
///  - contradiction detection in the premise (false implies anything).
///
/// Column identity is (base_table, column) for bound refs with a known base
/// table, else the textual (qualifier, column). Callers dealing with
/// self-joins must pre-filter the premise to one relation instance (the
/// policy evaluator does).
///
/// Incompleteness example from the paper: {A = 5, B = 3} does NOT imply
/// A + B = 8 under this test.
bool PredicateImplies(const std::vector<ExprPtr>& premise,
                      const std::vector<ExprPtr>& conclusion);

/// Structural atom equality modulo binding: column refs compare by
/// (base_table, column) when both are bound with a base table, else by
/// (qualifier, column). Exposed for tests.
bool SameAtom(const Expr& a, const Expr& b);

/// True when the premise's normalized column constraints are contradictory
/// (empty interval / empty point set) — the "false implies anything" case
/// of PredicateImplies. Sound but incomplete, exactly as incomplete as the
/// implication test itself: the two agree on which premises count as
/// contradictions, which is what makes this a safe pre-filter gate (the
/// hierarchical policy index skips implication tests whose conclusion
/// mentions columns the premise does not constrain — a skip that is only
/// sound when the premise is not contradictory).
bool PremiseContradictory(const std::vector<ExprPtr>& premise);

/// A premise's column constraints, normalized once and reusable against
/// many conclusions: `Implies(c)` returns exactly what
/// `PredicateImplies(premise, c)` would, without re-deriving the premise
/// side per test. The policy evaluator builds one per relation instance and
/// tests every candidate policy predicate against it — cheaper than even a
/// memo-table hit when the premise is `simple()` (fully normalized into
/// per-column constraints), because each test is a handful of comparisons
/// with no hashing or locking. Cheap to copy (shared immutable state).
class PremiseConstraints {
 public:
  explicit PremiseConstraints(const std::vector<ExprPtr>& premise);

  /// The "false implies anything" flag, == PremiseContradictory(premise).
  bool contradictory() const;

  /// Every conjunct was normalized into per-column ranges / point sets /
  /// LIKE patterns — no structural-match or OR-branch reasoning left, so
  /// Implies() is a pure constraint check. Premises with leftover raw
  /// conjuncts are better served by the ImplicationCache (the quadratic
  /// OR-branch reasoning then runs at most once per distinct conclusion).
  bool simple() const;

  /// == PredicateImplies(premise, conclusion), premise side prebuilt.
  bool Implies(const std::vector<ExprPtr>& conclusion) const;

 private:
  struct Impl;
  std::shared_ptr<const Impl> impl_;
};

/// 128-bit canonical fingerprint of a conjunct set. Two sets with the same
/// fingerprint are (with overwhelming probability) the same multiset of
/// conjuncts up to reordering — and PredicateImplies is insensitive to
/// conjunct order, so the fingerprint is a sound memoization key. Column
/// identity matches the implication test's: (base_table, column) for bound
/// refs, else (qualifier, column).
struct ExprFingerprint {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool operator==(const ExprFingerprint&) const = default;
};

ExprFingerprint FingerprintConjuncts(const std::vector<ExprPtr>& conjuncts);

/// Fingerprint of a single expression tree (exposed for collision tests).
ExprFingerprint FingerprintExpr(const Expr& e);

struct ImplicationCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t entries = 0;     ///< currently resident results
  int64_t evictions = 0;   ///< full-shard flushes
};

/// Thread-safe memo table for PredicateImplies, keyed by the canonical
/// (premise, conclusion) fingerprint pair. The policy evaluator and plan
/// annotator consult it so the Goldstein–Larson test runs once per distinct
/// (subquery predicate, policy predicate) combination instead of once per
/// (subquery, policy, location) triple — and repeated optimizations of the
/// same workload reuse results across queries.
///
/// Sharded: lookups lock only 1/16th of the table, so concurrent evaluator
/// threads rarely contend. A shard that grows past its cap is flushed
/// wholesale (results are cheap to recompute; no LRU bookkeeping on the hit
/// path).
class ImplicationCache {
 public:
  explicit ImplicationCache(size_t max_entries = 1 << 20);

  ImplicationCache(const ImplicationCache&) = delete;
  ImplicationCache& operator=(const ImplicationCache&) = delete;

  /// Memoized PredicateImplies. `cache_hit` (optional) reports whether the
  /// result came from the table.
  bool Implies(const std::vector<ExprPtr>& premise,
               const std::vector<ExprPtr>& conclusion,
               bool* cache_hit = nullptr);

  /// Same, with caller-computed fingerprints (callers that test one premise
  /// against many conclusions hash each side once).
  bool ImpliesPrehashed(const ExprFingerprint& premise_fp,
                        const std::vector<ExprPtr>& premise,
                        const ExprFingerprint& conclusion_fp,
                        const std::vector<ExprPtr>& conclusion,
                        bool* cache_hit = nullptr);

  void Clear();
  ImplicationCacheStats Stats() const;

  /// Process-wide cache shared by all evaluators (policy predicates repeat
  /// across queries). Never destroyed.
  static ImplicationCache* Global();

 private:
  struct Key {
    uint64_t a = 0;
    uint64_t b = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const { return static_cast<size_t>(k.a); }
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, bool, KeyHash> map;
  };

  static constexpr size_t kNumShards = 16;

  size_t per_shard_cap_;
  Shard shards_[kNumShards];
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> evictions_{0};
};

}  // namespace cgq

#endif  // CGQ_EXPR_IMPLICATION_H_
