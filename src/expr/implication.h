#ifndef CGQ_EXPR_IMPLICATION_H_
#define CGQ_EXPR_IMPLICATION_H_

#include <vector>

#include "expr/expr.h"

namespace cgq {

/// Sound-but-incomplete logical implication test between conjunctive
/// predicates, in the spirit of Goldstein & Larson (SIGMOD'01), as used by
/// the policy evaluator (§5, line 3 of Algorithm 1: P_q ⟹ P_e).
///
/// Supported reasoning:
///  - per-column ranges and equality/IN point sets derived from the premise;
///  - structural matching of arbitrary atoms (incl. LIKE and column-column
///    equalities such as join predicates);
///  - disjunctions: a premise OR-conjunct implies an atom when all its
///    branches do; an OR conclusion is implied when any branch is;
///  - contradiction detection in the premise (false implies anything).
///
/// Column identity is (base_table, column) for bound refs with a known base
/// table, else the textual (qualifier, column). Callers dealing with
/// self-joins must pre-filter the premise to one relation instance (the
/// policy evaluator does).
///
/// Incompleteness example from the paper: {A = 5, B = 3} does NOT imply
/// A + B = 8 under this test.
bool PredicateImplies(const std::vector<ExprPtr>& premise,
                      const std::vector<ExprPtr>& conclusion);

/// Structural atom equality modulo binding: column refs compare by
/// (base_table, column) when both are bound with a base table, else by
/// (qualifier, column). Exposed for tests.
bool SameAtom(const Expr& a, const Expr& b);

}  // namespace cgq

#endif  // CGQ_EXPR_IMPLICATION_H_
