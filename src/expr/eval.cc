#include "expr/eval.h"

#include <cmath>

#include "common/str_util.h"

namespace cgq {

namespace {

Value BoolValue(bool b) { return Value::Int64(b ? 1 : 0); }

}  // namespace

bool IsTruthyValue(const Value& v) {
  if (v.is_null()) return false;
  if (v.is_int64()) return v.int64() != 0;
  if (v.is_double()) return v.dbl() != 0;
  return !v.str().empty();
}

Result<Value> EvalComparisonValues(ExprOp op, const Value& l,
                                   const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  if (l.is_string() != r.is_string()) {
    return Status::InvalidArgument("comparing incompatible value families");
  }
  int c = l.Compare(r);
  switch (op) {
    case ExprOp::kEq:
      return BoolValue(c == 0);
    case ExprOp::kNe:
      return BoolValue(c != 0);
    case ExprOp::kLt:
      return BoolValue(c < 0);
    case ExprOp::kLe:
      return BoolValue(c <= 0);
    case ExprOp::kGt:
      return BoolValue(c > 0);
    case ExprOp::kGe:
      return BoolValue(c >= 0);
    default:
      return Status::Internal("not a comparison");
  }
}

Result<Value> EvalArithmeticValues(ExprOp op, const Value& l,
                                   const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  if (!l.is_numeric() || !r.is_numeric()) {
    return Status::InvalidArgument("arithmetic requires numeric operands");
  }
  if (op == ExprOp::kDiv) {
    double d = r.AsDouble();
    if (d == 0) return Value::Null();  // SQL engines differ; NULL is safe.
    return Value::Double(l.AsDouble() / d);
  }
  if (l.is_int64() && r.is_int64()) {
    int64_t a = l.int64(), b = r.int64();
    switch (op) {
      case ExprOp::kAdd:
        return Value::Int64(a + b);
      case ExprOp::kSub:
        return Value::Int64(a - b);
      case ExprOp::kMul:
        return Value::Int64(a * b);
      default:
        break;
    }
  }
  double a = l.AsDouble(), b = r.AsDouble();
  switch (op) {
    case ExprOp::kAdd:
      return Value::Double(a + b);
    case ExprOp::kSub:
      return Value::Double(a - b);
    case ExprOp::kMul:
      return Value::Double(a * b);
    default:
      return Status::Internal("not arithmetic");
  }
}

Result<Value> EvalExpr(const Expr& expr, const Row& row,
                       const RowLayout& layout) {
  switch (expr.op()) {
    case ExprOp::kLiteral:
      return expr.literal();
    case ExprOp::kColumnRef: {
      size_t pos = layout.PositionOf(expr.attr_id());
      if (pos == RowLayout::kNotFound) {
        return Status::Internal("attr " + expr.ToString() +
                                " not in row layout");
      }
      return row[pos];
    }
    case ExprOp::kAnd: {
      CGQ_ASSIGN_OR_RETURN(Value l, EvalExpr(*expr.child(0), row, layout));
      if (!l.is_null() && !IsTruthyValue(l)) return BoolValue(false);
      CGQ_ASSIGN_OR_RETURN(Value r, EvalExpr(*expr.child(1), row, layout));
      if (!r.is_null() && !IsTruthyValue(r)) return BoolValue(false);
      if (l.is_null() || r.is_null()) return Value::Null();
      return BoolValue(true);
    }
    case ExprOp::kOr: {
      CGQ_ASSIGN_OR_RETURN(Value l, EvalExpr(*expr.child(0), row, layout));
      if (!l.is_null() && IsTruthyValue(l)) return BoolValue(true);
      CGQ_ASSIGN_OR_RETURN(Value r, EvalExpr(*expr.child(1), row, layout));
      if (!r.is_null() && IsTruthyValue(r)) return BoolValue(true);
      if (l.is_null() || r.is_null()) return Value::Null();
      return BoolValue(false);
    }
    case ExprOp::kNot: {
      CGQ_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr.child(0), row, layout));
      if (v.is_null()) return Value::Null();
      return BoolValue(!IsTruthyValue(v));
    }
    case ExprOp::kEq:
    case ExprOp::kNe:
    case ExprOp::kLt:
    case ExprOp::kLe:
    case ExprOp::kGt:
    case ExprOp::kGe: {
      CGQ_ASSIGN_OR_RETURN(Value l, EvalExpr(*expr.child(0), row, layout));
      CGQ_ASSIGN_OR_RETURN(Value r, EvalExpr(*expr.child(1), row, layout));
      return EvalComparisonValues(expr.op(), l, r);
    }
    case ExprOp::kAdd:
    case ExprOp::kSub:
    case ExprOp::kMul:
    case ExprOp::kDiv: {
      CGQ_ASSIGN_OR_RETURN(Value l, EvalExpr(*expr.child(0), row, layout));
      CGQ_ASSIGN_OR_RETURN(Value r, EvalExpr(*expr.child(1), row, layout));
      return EvalArithmeticValues(expr.op(), l, r);
    }
    case ExprOp::kLike:
    case ExprOp::kNotLike: {
      CGQ_ASSIGN_OR_RETURN(Value l, EvalExpr(*expr.child(0), row, layout));
      CGQ_ASSIGN_OR_RETURN(Value r, EvalExpr(*expr.child(1), row, layout));
      if (l.is_null() || r.is_null()) return Value::Null();
      if (!l.is_string() || !r.is_string()) {
        return Status::InvalidArgument("LIKE requires string operands");
      }
      bool m = LikeMatch(l.str(), r.str());
      return BoolValue(expr.op() == ExprOp::kLike ? m : !m);
    }
    case ExprOp::kIn: {
      CGQ_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr.child(0), row, layout));
      if (v.is_null()) return Value::Null();
      for (const Value& candidate : expr.in_list()) {
        if (!candidate.is_null() && v.Equals(candidate)) {
          return BoolValue(true);
        }
      }
      return BoolValue(false);
    }
  }
  return Status::Internal("unhandled expression op");
}

Result<bool> EvalPredicate(const Expr& pred, const Row& row,
                           const RowLayout& layout) {
  CGQ_ASSIGN_OR_RETURN(Value v, EvalExpr(pred, row, layout));
  return !v.is_null() && IsTruthyValue(v);
}

void AggAccumulator::Add(const Value& v) {
  if (v.is_null()) return;
  ++count_;
  switch (fn_) {
    case AggFn::kCount:
      return;
    case AggFn::kSum:
    case AggFn::kAvg:
      sum_ += v.AsDouble();
      sum_is_integral_ &= v.is_int64();
      return;
    case AggFn::kMin:
      if (min_.is_null() || v.Compare(min_) < 0) min_ = v;
      return;
    case AggFn::kMax:
      if (max_.is_null() || v.Compare(max_) > 0) max_ = v;
      return;
  }
}

Value AggAccumulator::Finish() const {
  switch (fn_) {
    case AggFn::kCount:
      return Value::Int64(count_);
    case AggFn::kSum:
      if (count_ == 0) return Value::Null();
      return sum_is_integral_ ? Value::Int64(static_cast<int64_t>(sum_))
                              : Value::Double(sum_);
    case AggFn::kAvg:
      if (count_ == 0) return Value::Null();
      return Value::Double(sum_ / static_cast<double>(count_));
    case AggFn::kMin:
      return min_;
    case AggFn::kMax:
      return max_;
  }
  return Value::Null();
}

}  // namespace cgq
