#include "expr/implication.h"

#include <optional>
#include <string>
#include <utility>

#include "common/str_util.h"

namespace cgq {

namespace {

// Canonical identity of a column reference for implication purposes.
std::string RefKey(const Expr& ref) {
  if (!ref.base_table().empty()) return ref.base_table() + "." + ref.column();
  return ref.qualifier() + "." + ref.column();
}

// key == RefKey(ref), without materializing the key (the lookup path runs
// once per implication test, so it must not allocate).
bool RefKeyEquals(const std::string& key, const Expr& ref) {
  const std::string& head =
      !ref.base_table().empty() ? ref.base_table() : ref.qualifier();
  const std::string& col = ref.column();
  return key.size() == head.size() + 1 + col.size() &&
         key.compare(0, head.size(), head) == 0 && key[head.size()] == '.' &&
         key.compare(head.size() + 1, col.size(), col) == 0;
}

// One bound of a (possibly half-open) interval.
struct Bound {
  Value value;
  bool strict = false;
  bool present = false;
};

// Accumulated constraints on a single column.
struct ColumnConstraint {
  // Disjunctive equality point set (from `=` or IN). `has_points` false
  // means unconstrained by points.
  bool has_points = false;
  std::vector<Value> points;
  Bound lower;
  Bound upper;
  std::vector<std::string> like_patterns;
};

// Premises constrain a handful of columns, so a flat vector with linear,
// allocation-free lookup beats any tree/hash container on the test path.
struct ConstraintSet {
  bool contradictory = false;
  std::vector<std::pair<std::string, ColumnConstraint>> columns;
  // Conjuncts we could not normalize (ORs, column-column predicates, ...).
  std::vector<ExprPtr> raw;

  ColumnConstraint& ForKey(std::string key) {
    for (auto& [k, cc] : columns) {
      if (k == key) return cc;
    }
    columns.emplace_back(std::move(key), ColumnConstraint{});
    return columns.back().second;
  }
  const ColumnConstraint* Find(const Expr& ref) const {
    for (const auto& [k, cc] : columns) {
      if (RefKeyEquals(k, ref)) return &cc;
    }
    return nullptr;
  }
};

bool SatisfiesComparison(const Value& v, ExprOp op, const Value& lit) {
  if (v.is_null() || lit.is_null()) return false;
  if (v.is_string() != lit.is_string()) return false;
  int c = v.Compare(lit);
  switch (op) {
    case ExprOp::kEq:
      return c == 0;
    case ExprOp::kNe:
      return c != 0;
    case ExprOp::kLt:
      return c < 0;
    case ExprOp::kLe:
      return c <= 0;
    case ExprOp::kGt:
      return c > 0;
    case ExprOp::kGe:
      return c >= 0;
    default:
      return false;
  }
}

ExprOp FlipComparison(ExprOp op) {
  switch (op) {
    case ExprOp::kLt:
      return ExprOp::kGt;
    case ExprOp::kLe:
      return ExprOp::kGe;
    case ExprOp::kGt:
      return ExprOp::kLt;
    case ExprOp::kGe:
      return ExprOp::kLe;
    default:
      return op;  // =, <> are symmetric
  }
}

// Extracts (colref, op, literal) from a comparison conjunct, flipping sides
// if needed. Returns false when the conjunct is not of that shape. The
// literal is returned by pointer — copying a Value may allocate (strings),
// which the per-test path cannot afford.
bool AsColumnComparison(const Expr& e, const Expr** ref, ExprOp* op,
                        const Value** lit) {
  if (!IsComparisonOp(e.op())) return false;
  const Expr& l = *e.child(0);
  const Expr& r = *e.child(1);
  if (l.op() == ExprOp::kColumnRef && r.op() == ExprOp::kLiteral) {
    *ref = &l;
    *op = e.op();
    *lit = &r.literal();
    return true;
  }
  if (r.op() == ExprOp::kColumnRef && l.op() == ExprOp::kLiteral) {
    *ref = &r;
    *op = FlipComparison(e.op());
    *lit = &l.literal();
    return true;
  }
  return false;
}

void TightenLower(ColumnConstraint* cc, const Value& v, bool strict) {
  if (!cc->lower.present) {
    cc->lower = {v, strict, true};
    return;
  }
  int c = v.Compare(cc->lower.value);
  if (c > 0 || (c == 0 && strict)) cc->lower = {v, strict, true};
}

void TightenUpper(ColumnConstraint* cc, const Value& v, bool strict) {
  if (!cc->upper.present) {
    cc->upper = {v, strict, true};
    return;
  }
  int c = v.Compare(cc->upper.value);
  if (c < 0 || (c == 0 && strict)) cc->upper = {v, strict, true};
}

// Intersects the point set with `incoming` (a disjunctive set).
void IntersectPoints(ColumnConstraint* cc, std::vector<Value> incoming,
                     bool* contradictory) {
  if (!cc->has_points) {
    cc->has_points = true;
    cc->points = std::move(incoming);
  } else {
    std::vector<Value> kept;
    for (const Value& p : cc->points) {
      for (const Value& q : incoming) {
        if (!p.is_null() && p.Equals(q)) {
          kept.push_back(p);
          break;
        }
      }
    }
    cc->points = std::move(kept);
  }
  if (cc->points.empty()) *contradictory = true;
}

bool PointInInterval(const ColumnConstraint& cc, const Value& p) {
  if (p.is_null()) return false;
  if (cc.lower.present) {
    if (p.is_string() != cc.lower.value.is_string()) return true;  // unknown
    int c = p.Compare(cc.lower.value);
    if (c < 0 || (c == 0 && cc.lower.strict)) return false;
  }
  if (cc.upper.present) {
    if (p.is_string() != cc.upper.value.is_string()) return true;
    int c = p.Compare(cc.upper.value);
    if (c > 0 || (c == 0 && cc.upper.strict)) return false;
  }
  return true;
}

ConstraintSet BuildConstraints(const std::vector<ExprPtr>& conjuncts) {
  ConstraintSet cs;
  for (const ExprPtr& c : conjuncts) {
    const Expr* ref = nullptr;
    ExprOp op;
    const Value* lit = nullptr;
    if (AsColumnComparison(*c, &ref, &op, &lit) && !lit->is_null()) {
      ColumnConstraint& cc = cs.ForKey(RefKey(*ref));
      switch (op) {
        case ExprOp::kEq:
          IntersectPoints(&cc, {*lit}, &cs.contradictory);
          break;
        case ExprOp::kGt:
          TightenLower(&cc, *lit, /*strict=*/true);
          break;
        case ExprOp::kGe:
          TightenLower(&cc, *lit, /*strict=*/false);
          break;
        case ExprOp::kLt:
          TightenUpper(&cc, *lit, /*strict=*/true);
          break;
        case ExprOp::kLe:
          TightenUpper(&cc, *lit, /*strict=*/false);
          break;
        default:
          cs.raw.push_back(c);  // <> kept structural
          break;
      }
      continue;
    }
    if (c->op() == ExprOp::kIn &&
        c->child(0)->op() == ExprOp::kColumnRef) {
      ColumnConstraint& cc = cs.ForKey(RefKey(*c->child(0)));
      IntersectPoints(&cc, c->in_list(), &cs.contradictory);
      continue;
    }
    if (c->op() == ExprOp::kLike &&
        c->child(0)->op() == ExprOp::kColumnRef &&
        c->child(1)->op() == ExprOp::kLiteral &&
        c->child(1)->literal().is_string()) {
      cs.ForKey(RefKey(*c->child(0))).like_patterns.push_back(
          c->child(1)->literal().str());
      continue;
    }
    cs.raw.push_back(c);
  }
  // Contradiction: interval empty, or points outside interval.
  for (auto& [key, cc] : cs.columns) {
    if (cc.lower.present && cc.upper.present &&
        cc.lower.value.is_string() == cc.upper.value.is_string()) {
      int c = cc.lower.value.Compare(cc.upper.value);
      if (c > 0 || (c == 0 && (cc.lower.strict || cc.upper.strict))) {
        cs.contradictory = true;
      }
    }
    if (cc.has_points) {
      std::vector<Value> kept;
      for (const Value& p : cc.points) {
        if (PointInInterval(cc, p)) kept.push_back(p);
      }
      cc.points = std::move(kept);
      if (cc.points.empty()) cs.contradictory = true;
    }
  }
  return cs;
}

bool ConstraintsImplyAtom(const ConstraintSet& cs, const Expr& atom);

// Flattens nested ORs into their disjunct leaves.
void CollectOrBranches(const ExprPtr& e, std::vector<ExprPtr>* branches) {
  if (e->op() == ExprOp::kOr) {
    CollectOrBranches(e->child(0), branches);
    CollectOrBranches(e->child(1), branches);
    return;
  }
  branches->push_back(e);
}

// An OR premise-conjunct implies `atom` when each branch does.
bool OrConjunctImpliesAtom(const Expr& or_conjunct, const Expr& atom) {
  std::vector<ExprPtr> branches;
  CollectOrBranches(or_conjunct.child(0), &branches);
  CollectOrBranches(or_conjunct.child(1), &branches);
  for (const ExprPtr& b : branches) {
    ConstraintSet bs = BuildConstraints({b});
    if (!ConstraintsImplyAtom(bs, atom)) return false;
  }
  return true;
}

bool ConstraintsImplyAtom(const ConstraintSet& cs, const Expr& atom) {
  if (cs.contradictory) return true;

  // 1. Structural match against any raw premise conjunct.
  for (const ExprPtr& r : cs.raw) {
    if (SameAtom(*r, atom)) return true;
  }

  // 2. OR conclusion: any branch implied suffices.
  if (atom.op() == ExprOp::kOr) {
    if (ConstraintsImplyAtom(cs, *atom.child(0))) return true;
    if (ConstraintsImplyAtom(cs, *atom.child(1))) return true;
  }

  // 3. Range / point reasoning for column-vs-literal comparisons.
  const Expr* ref = nullptr;
  ExprOp op;
  const Value* lit = nullptr;
  if (AsColumnComparison(atom, &ref, &op, &lit) && !lit->is_null()) {
    if (const ColumnConstraint* ccp = cs.Find(*ref)) {
      const ColumnConstraint& cc = *ccp;
      if (cc.has_points) {
        bool all = !cc.points.empty();
        for (const Value& p : cc.points) {
          all &= SatisfiesComparison(p, op, *lit);
        }
        if (all) return true;
      }
      if (!lit->is_string()) {
        switch (op) {
          case ExprOp::kGt:
            if (cc.lower.present && !cc.lower.value.is_string()) {
              int c = cc.lower.value.Compare(*lit);
              if (c > 0 || (c == 0 && cc.lower.strict)) return true;
            }
            break;
          case ExprOp::kGe:
            if (cc.lower.present && !cc.lower.value.is_string() &&
                cc.lower.value.Compare(*lit) >= 0) {
              return true;
            }
            break;
          case ExprOp::kLt:
            if (cc.upper.present && !cc.upper.value.is_string()) {
              int c = cc.upper.value.Compare(*lit);
              if (c < 0 || (c == 0 && cc.upper.strict)) return true;
            }
            break;
          case ExprOp::kLe:
            if (cc.upper.present && !cc.upper.value.is_string() &&
                cc.upper.value.Compare(*lit) <= 0) {
              return true;
            }
            break;
          case ExprOp::kNe:
            // Implied when the whole interval excludes `lit`.
            if (!PointInInterval(cc, *lit) &&
                (cc.lower.present || cc.upper.present)) {
              return true;
            }
            break;
          default:
            break;
        }
      }
    }
  }

  // 4. IN conclusion: premise point set contained in the IN list.
  if (atom.op() == ExprOp::kIn &&
      atom.child(0)->op() == ExprOp::kColumnRef) {
    const ColumnConstraint* ccp = cs.Find(*atom.child(0));
    if (ccp != nullptr && ccp->has_points && !ccp->points.empty()) {
      bool all = true;
      for (const Value& p : ccp->points) {
        bool found = false;
        for (const Value& q : atom.in_list()) {
          if (!q.is_null() && p.Equals(q)) {
            found = true;
            break;
          }
        }
        all &= found;
      }
      if (all) return true;
    }
  }

  // 5. LIKE conclusion: identical pattern, or all points match the pattern.
  if (atom.op() == ExprOp::kLike &&
      atom.child(0)->op() == ExprOp::kColumnRef &&
      atom.child(1)->op() == ExprOp::kLiteral &&
      atom.child(1)->literal().is_string()) {
    if (const ColumnConstraint* ccp = cs.Find(*atom.child(0))) {
      const std::string& pattern = atom.child(1)->literal().str();
      for (const std::string& p : ccp->like_patterns) {
        if (p == pattern) return true;
      }
      if (ccp->has_points && !ccp->points.empty()) {
        bool all = true;
        for (const Value& p : ccp->points) {
          all &= p.is_string() && LikeMatch(p.str(), pattern);
        }
        if (all) return true;
      }
    }
  }

  // 6. Premise OR-conjuncts: each branch must imply the atom.
  for (const ExprPtr& r : cs.raw) {
    if (r->op() == ExprOp::kOr && OrConjunctImpliesAtom(*r, atom)) {
      return true;
    }
  }

  return false;
}

}  // namespace

bool SameAtom(const Expr& a, const Expr& b) {
  if (a.op() != b.op()) return false;
  switch (a.op()) {
    case ExprOp::kLiteral:
      return a.literal().StructurallyEquals(b.literal());
    case ExprOp::kColumnRef:
      return RefKey(a) == RefKey(b);
    default:
      break;
  }
  if (a.children().size() != b.children().size()) return false;
  for (size_t i = 0; i < a.children().size(); ++i) {
    if (!SameAtom(*a.child(i), *b.child(i))) return false;
  }
  if (a.in_list().size() != b.in_list().size()) return false;
  for (size_t i = 0; i < a.in_list().size(); ++i) {
    if (!a.in_list()[i].StructurallyEquals(b.in_list()[i])) return false;
  }
  return true;
}

bool PredicateImplies(const std::vector<ExprPtr>& premise,
                      const std::vector<ExprPtr>& conclusion) {
  ConstraintSet cs = BuildConstraints(premise);
  for (const ExprPtr& atom : conclusion) {
    if (atom->IsLiteralTrue()) continue;
    if (!ConstraintsImplyAtom(cs, *atom)) return false;
  }
  return true;
}

bool PremiseContradictory(const std::vector<ExprPtr>& premise) {
  return BuildConstraints(premise).contradictory;
}

struct PremiseConstraints::Impl {
  ConstraintSet cs;
};

PremiseConstraints::PremiseConstraints(const std::vector<ExprPtr>& premise)
    : impl_(std::make_shared<Impl>(Impl{BuildConstraints(premise)})) {}

bool PremiseConstraints::contradictory() const {
  return impl_->cs.contradictory;
}

bool PremiseConstraints::simple() const { return impl_->cs.raw.empty(); }

bool PremiseConstraints::Implies(
    const std::vector<ExprPtr>& conclusion) const {
  // Mirrors PredicateImplies exactly, minus the per-call BuildConstraints.
  for (const ExprPtr& atom : conclusion) {
    if (atom->IsLiteralTrue()) continue;
    if (!ConstraintsImplyAtom(impl_->cs, *atom)) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Implication-result cache
// ---------------------------------------------------------------------------

namespace {

// splitmix64 finalizer: full-avalanche 64-bit mix.
inline uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// Two independently-seeded rolling lanes; 128 bits keep the collision
// probability negligible for any realistic number of distinct predicates.
struct Lanes {
  uint64_t h1 = 0x8A5CD789635D2DFFULL;
  uint64_t h2 = 0x2545F4914F6CDD1DULL;

  void Feed(uint64_t v) {
    h1 = Mix64(h1 ^ v);
    h2 = Mix64(h2 + v * 0x9E3779B97F4A7C15ULL + 0x632BE59BD9B4E019ULL);
  }
  void Feed(const std::string& s) {
    uint64_t f = 0xCBF29CE484222325ULL;  // FNV-1a
    for (unsigned char c : s) f = (f ^ c) * 0x100000001B3ULL;
    Feed(f);
    Feed(s.size());
  }
};

void HashValue(const Value& v, Lanes* l) {
  if (v.is_null()) {
    l->Feed('N');
  } else if (v.is_int64()) {
    l->Feed('I');
    l->Feed(static_cast<uint64_t>(v.int64()));
  } else if (v.is_double()) {
    double d = v.dbl();
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    __builtin_memcpy(&bits, &d, sizeof(bits));
    l->Feed('D');
    l->Feed(bits);
  } else {
    l->Feed('S');
    l->Feed(v.str());
  }
}

void HashExprRec(const Expr& e, Lanes* l) {
  l->Feed(static_cast<uint64_t>(e.op()) + 0x100);
  switch (e.op()) {
    case ExprOp::kLiteral:
      HashValue(e.literal(), l);
      return;
    case ExprOp::kColumnRef:
      // Mirror RefKey: bound refs are identified by their base table,
      // unbound ones by the textual qualifier.
      if (!e.base_table().empty()) {
        l->Feed('B');
        l->Feed(e.base_table());
      } else {
        l->Feed('Q');
        l->Feed(e.qualifier());
      }
      l->Feed(e.column());
      return;
    default:
      break;
  }
  l->Feed(e.children().size());
  for (const ExprPtr& c : e.children()) HashExprRec(*c, l);
  if (!e.in_list().empty()) {
    l->Feed(e.in_list().size());
    for (const Value& v : e.in_list()) HashValue(v, l);
  }
}

}  // namespace

ExprFingerprint FingerprintExpr(const Expr& e) {
  Lanes l;
  HashExprRec(e, &l);
  return {l.h1, l.h2};
}

ExprFingerprint FingerprintConjuncts(const std::vector<ExprPtr>& conjuncts) {
  // Wrapping sums make the combine commutative: conjunct order is
  // irrelevant to PredicateImplies, so reordered sets should share a key.
  uint64_t sum1 = 0, sum2 = 0;
  for (const ExprPtr& c : conjuncts) {
    ExprFingerprint f = FingerprintExpr(*c);
    sum1 += f.hi;
    sum2 += f.lo;
  }
  ExprFingerprint out;
  out.hi = Mix64(sum1 ^ conjuncts.size());
  out.lo = Mix64(sum2 + conjuncts.size());
  return out;
}

ImplicationCache::ImplicationCache(size_t max_entries)
    : per_shard_cap_(max_entries / kNumShards > 0 ? max_entries / kNumShards
                                                  : 1) {}

bool ImplicationCache::Implies(const std::vector<ExprPtr>& premise,
                               const std::vector<ExprPtr>& conclusion,
                               bool* cache_hit) {
  return ImpliesPrehashed(FingerprintConjuncts(premise), premise,
                          FingerprintConjuncts(conclusion), conclusion,
                          cache_hit);
}

bool ImplicationCache::ImpliesPrehashed(const ExprFingerprint& premise_fp,
                                        const std::vector<ExprPtr>& premise,
                                        const ExprFingerprint& conclusion_fp,
                                        const std::vector<ExprPtr>& conclusion,
                                        bool* cache_hit) {
  // Asymmetric combine: (p ⟹ c) and (c ⟹ p) must key differently.
  Key key;
  key.a = Mix64(premise_fp.hi ^ Mix64(conclusion_fp.hi + 0x71D67FFFEDA60000ULL));
  key.b = Mix64(premise_fp.lo + Mix64(conclusion_fp.lo ^ 0xFFF7EEE000000000ULL));

  Shard& shard = shards_[key.a % kNumShards];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (cache_hit != nullptr) *cache_hit = true;
      return it->second;
    }
  }

  bool result = PredicateImplies(premise, conclusion);
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (cache_hit != nullptr) *cache_hit = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.map.size() >= per_shard_cap_) {
      shard.map.clear();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    shard.map.emplace(key, result);
  }
  return result;
}

void ImplicationCache::Clear() {
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    s.map.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

ImplicationCacheStats ImplicationCache::Stats() const {
  ImplicationCacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mu);
    out.entries += static_cast<int64_t>(s.map.size());
  }
  return out;
}

ImplicationCache* ImplicationCache::Global() {
  static ImplicationCache* cache = new ImplicationCache();
  return cache;
}

}  // namespace cgq
