#ifndef CGQ_EXPR_EVAL_H_
#define CGQ_EXPR_EVAL_H_

#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "expr/expr.h"
#include "types/value.h"

namespace cgq {

/// Maps the AttrIds visible to an operator to positions in its rows.
class RowLayout {
 public:
  RowLayout() = default;
  explicit RowLayout(std::vector<AttrId> attrs) : attrs_(std::move(attrs)) {
    for (size_t i = 0; i < attrs_.size(); ++i) index_[attrs_[i]] = i;
  }

  const std::vector<AttrId>& attrs() const { return attrs_; }
  size_t size() const { return attrs_.size(); }

  /// Position of `id`, or npos when absent.
  static constexpr size_t kNotFound = static_cast<size_t>(-1);
  size_t PositionOf(AttrId id) const {
    auto it = index_.find(id);
    return it == index_.end() ? kNotFound : it->second;
  }
  bool Contains(AttrId id) const { return index_.count(id) != 0; }

 private:
  std::vector<AttrId> attrs_;
  std::unordered_map<AttrId, size_t> index_;
};

/// Evaluates a bound scalar expression against one row.
///
/// Boolean results are Int64 0/1 or NULL (SQL three-valued logic:
/// comparisons with NULL yield NULL; AND/OR use Kleene logic).
Result<Value> EvalExpr(const Expr& expr, const Row& row,
                       const RowLayout& layout);

/// SQL truthiness: non-null and non-zero / non-empty. The single
/// definition shared by the scalar evaluator and the vectorized kernels.
bool IsTruthyValue(const Value& v);

/// One comparison / arithmetic step with the exact NULL, promotion and
/// error semantics of EvalExpr. Exposed so the columnar kernels
/// (exec/vector/) fall back to the same scalar reference on untyped
/// columns instead of re-implementing the semantics.
Result<Value> EvalComparisonValues(ExprOp op, const Value& l,
                                   const Value& r);
Result<Value> EvalArithmeticValues(ExprOp op, const Value& l,
                                   const Value& r);

/// Evaluates a predicate: true iff the result is a non-null truthy value.
Result<bool> EvalPredicate(const Expr& pred, const Row& row,
                           const RowLayout& layout);

/// Incremental aggregate accumulator for one AggCall.
class AggAccumulator {
 public:
  explicit AggAccumulator(AggFn fn) : fn_(fn) {}

  /// Folds one (already-evaluated) argument value. NULLs are ignored, per
  /// SQL semantics.
  void Add(const Value& v);

  /// Final value; NULL for empty SUM/AVG/MIN/MAX groups, 0 for COUNT.
  Value Finish() const;

 private:
  AggFn fn_;
  int64_t count_ = 0;
  double sum_ = 0;
  bool sum_is_integral_ = true;
  Value min_;
  Value max_;
};

}  // namespace cgq

#endif  // CGQ_EXPR_EVAL_H_
