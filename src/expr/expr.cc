#include "expr/expr.h"

#include <functional>

#include "common/logging.h"

namespace cgq {

const char* ExprOpToString(ExprOp op) {
  switch (op) {
    case ExprOp::kLiteral:
      return "literal";
    case ExprOp::kColumnRef:
      return "column";
    case ExprOp::kAnd:
      return "AND";
    case ExprOp::kOr:
      return "OR";
    case ExprOp::kNot:
      return "NOT";
    case ExprOp::kEq:
      return "=";
    case ExprOp::kNe:
      return "<>";
    case ExprOp::kLt:
      return "<";
    case ExprOp::kLe:
      return "<=";
    case ExprOp::kGt:
      return ">";
    case ExprOp::kGe:
      return ">=";
    case ExprOp::kAdd:
      return "+";
    case ExprOp::kSub:
      return "-";
    case ExprOp::kMul:
      return "*";
    case ExprOp::kDiv:
      return "/";
    case ExprOp::kLike:
      return "LIKE";
    case ExprOp::kNotLike:
      return "NOT LIKE";
    case ExprOp::kIn:
      return "IN";
  }
  return "?";
}

bool IsComparisonOp(ExprOp op) {
  switch (op) {
    case ExprOp::kEq:
    case ExprOp::kNe:
    case ExprOp::kLt:
    case ExprOp::kLe:
    case ExprOp::kGt:
    case ExprOp::kGe:
      return true;
    default:
      return false;
  }
}

const char* AggFnToString(AggFn fn) {
  switch (fn) {
    case AggFn::kSum:
      return "SUM";
    case AggFn::kAvg:
      return "AVG";
    case AggFn::kMin:
      return "MIN";
    case AggFn::kMax:
      return "MAX";
    case AggFn::kCount:
      return "COUNT";
  }
  return "?";
}

ExprPtr Expr::Literal(Value v) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->op_ = ExprOp::kLiteral;
  if (v.is_double()) {
    e->type_ = DataType::kDouble;
  } else if (v.is_string()) {
    e->type_ = DataType::kString;
  } else {
    e->type_ = DataType::kInt64;
  }
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::ParamLiteral(Value v, int ordinal) {
  auto e = std::const_pointer_cast<Expr>(Literal(std::move(v)));
  e->param_ordinal_ = ordinal;
  return e;
}

ExprPtr Expr::Column(std::string qualifier, std::string column) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->op_ = ExprOp::kColumnRef;
  e->qualifier_ = std::move(qualifier);
  e->column_ = std::move(column);
  e->bound_ = false;
  return e;
}

ExprPtr Expr::BoundColumn(AttrId attr_id, std::string qualifier,
                          std::string column, std::string base_table,
                          DataType type) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->op_ = ExprOp::kColumnRef;
  e->attr_id_ = attr_id;
  e->qualifier_ = std::move(qualifier);
  e->column_ = std::move(column);
  e->base_table_ = std::move(base_table);
  e->type_ = type;
  e->bound_ = true;
  return e;
}

ExprPtr Expr::Unary(ExprOp op, ExprPtr child) {
  CGQ_CHECK(op == ExprOp::kNot);
  auto e = std::shared_ptr<Expr>(new Expr());
  e->op_ = op;
  e->type_ = DataType::kInt64;
  e->children_ = {std::move(child)};
  return e;
}

ExprPtr Expr::Binary(ExprOp op, ExprPtr left, ExprPtr right) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->op_ = op;
  switch (op) {
    case ExprOp::kAdd:
    case ExprOp::kSub:
    case ExprOp::kMul:
      e->type_ = (left->type() == DataType::kDouble ||
                  right->type() == DataType::kDouble)
                     ? DataType::kDouble
                     : DataType::kInt64;
      break;
    case ExprOp::kDiv:
      e->type_ = DataType::kDouble;
      break;
    default:
      e->type_ = DataType::kInt64;  // boolean as 0/1
      break;
  }
  e->children_ = {std::move(left), std::move(right)};
  return e;
}

ExprPtr Expr::InList(ExprPtr needle, std::vector<Value> literals) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->op_ = ExprOp::kIn;
  e->type_ = DataType::kInt64;
  e->children_ = {std::move(needle)};
  e->in_list_ = std::move(literals);
  return e;
}

ExprPtr Expr::InList(ExprPtr needle, std::vector<Value> literals,
                     std::vector<int> ordinals) {
  CGQ_CHECK(ordinals.empty() || ordinals.size() == literals.size());
  auto e = std::const_pointer_cast<Expr>(
      InList(std::move(needle), std::move(literals)));
  e->in_list_ordinals_ = std::move(ordinals);
  return e;
}

ExprPtr Expr::MakeConjunction(std::vector<ExprPtr> conjuncts) {
  if (conjuncts.empty()) return Literal(Value::Int64(1));
  ExprPtr acc = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    acc = Binary(ExprOp::kAnd, acc, conjuncts[i]);
  }
  return acc;
}

bool Expr::Equals(const Expr& other) const {
  if (op_ != other.op_) return false;
  switch (op_) {
    case ExprOp::kLiteral:
      return literal_.StructurallyEquals(other.literal_);
    case ExprOp::kColumnRef:
      if (bound_ != other.bound_) return false;
      if (bound_) return attr_id_ == other.attr_id_;
      return qualifier_ == other.qualifier_ && column_ == other.column_;
    default:
      break;
  }
  if (children_.size() != other.children_.size()) return false;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->Equals(*other.children_[i])) return false;
  }
  if (in_list_.size() != other.in_list_.size()) return false;
  for (size_t i = 0; i < in_list_.size(); ++i) {
    if (!in_list_[i].StructurallyEquals(other.in_list_[i])) return false;
  }
  return true;
}

size_t Expr::Hash() const {
  size_t h = std::hash<int>()(static_cast<int>(op_));
  switch (op_) {
    case ExprOp::kLiteral:
      return h * 31 + literal_.Hash();
    case ExprOp::kColumnRef:
      if (bound_) return h * 31 + std::hash<uint32_t>()(attr_id_);
      return (h * 31 + std::hash<std::string>()(qualifier_)) * 31 +
             std::hash<std::string>()(column_);
    default:
      break;
  }
  for (const ExprPtr& c : children_) h = h * 1000003u ^ c->Hash();
  for (const Value& v : in_list_) h = h * 1000003u ^ v.Hash();
  return h;
}

std::string Expr::ToString() const {
  switch (op_) {
    case ExprOp::kLiteral:
      return literal_.ToString();
    case ExprOp::kColumnRef:
      return qualifier_.empty() ? column_ : qualifier_ + "." + column_;
    case ExprOp::kNot:
      return "NOT (" + children_[0]->ToString() + ")";
    case ExprOp::kIn: {
      std::string out = children_[0]->ToString() + " IN (";
      for (size_t i = 0; i < in_list_.size(); ++i) {
        if (i > 0) out += ", ";
        out += in_list_[i].ToString();
      }
      return out + ")";
    }
    case ExprOp::kAnd:
    case ExprOp::kOr:
      return "(" + children_[0]->ToString() + " " + ExprOpToString(op_) +
             " " + children_[1]->ToString() + ")";
    default: {
      // Parenthesize non-leaf operands so nesting stays readable.
      auto operand = [](const ExprPtr& e) {
        std::string s = e->ToString();
        return e->children().empty() ? s : "(" + s + ")";
      };
      return operand(children_[0]) + " " + ExprOpToString(op_) + " " +
             operand(children_[1]);
    }
  }
}

void Expr::CollectAttrIds(std::vector<AttrId>* out) const {
  if (op_ == ExprOp::kColumnRef) {
    out->push_back(attr_id_);
    return;
  }
  for (const ExprPtr& c : children_) c->CollectAttrIds(out);
}

void Expr::CollectBaseAttrs(std::vector<BaseAttr>* out) const {
  if (op_ == ExprOp::kColumnRef) {
    if (bound_ && !base_table_.empty()) {
      out->push_back(BaseAttr{base_table_, column_});
    }
    return;
  }
  for (const ExprPtr& c : children_) c->CollectBaseAttrs(out);
}

void Expr::CollectColumnRefs(std::vector<const Expr*>* out) const {
  if (op_ == ExprOp::kColumnRef) {
    out->push_back(this);
    return;
  }
  for (const ExprPtr& c : children_) c->CollectColumnRefs(out);
}

ExprPtr Expr::Substitute(
    const ExprPtr& e,
    const std::vector<std::pair<AttrId, ExprPtr>>& mapping) {
  if (e->op_ == ExprOp::kColumnRef) {
    for (const auto& [id, replacement] : mapping) {
      if (e->bound_ && e->attr_id_ == id) return replacement;
    }
    return e;
  }
  bool changed = false;
  std::vector<ExprPtr> new_children;
  new_children.reserve(e->children_.size());
  for (const ExprPtr& c : e->children_) {
    ExprPtr nc = Substitute(c, mapping);
    changed |= (nc.get() != c.get());
    new_children.push_back(std::move(nc));
  }
  if (!changed) return e;
  auto copy = std::shared_ptr<Expr>(new Expr(*e));
  copy->children_ = std::move(new_children);
  return copy;
}

std::string AggCall::ToString() const {
  return std::string(AggFnToString(fn)) + "(" + arg->ToString() + ")";
}

std::vector<ExprPtr> SplitConjuncts(const ExprPtr& pred) {
  // Literal-TRUE conjuncts are dropped (the parser leaves them as
  // placeholders for extracted subquery predicates).
  std::vector<ExprPtr> out;
  if (pred == nullptr || pred->IsLiteralTrue()) return out;
  if (pred->op() == ExprOp::kAnd) {
    for (const ExprPtr& c : pred->children()) {
      std::vector<ExprPtr> sub = SplitConjuncts(c);
      out.insert(out.end(), sub.begin(), sub.end());
    }
    return out;
  }
  out.push_back(pred);
  return out;
}

}  // namespace cgq
