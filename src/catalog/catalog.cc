#include "catalog/catalog.h"

#include <algorithm>

#include "common/str_util.h"

namespace cgq {

Status Catalog::AddTable(TableDef def) {
  def.name = ToLower(def.name);
  if (def.name.empty()) {
    return Status::InvalidArgument("table name must be non-empty");
  }
  if (def.fragments.empty()) {
    return Status::InvalidArgument("table '" + def.name +
                                   "' must have at least one fragment");
  }
  for (const TableFragment& f : def.fragments) {
    if (f.location >= locations_.num_locations()) {
      return Status::InvalidArgument("table '" + def.name +
                                     "' references unknown location id " +
                                     std::to_string(f.location));
    }
  }
  if (tables_.count(def.name) != 0) {
    return Status::AlreadyExists("table '" + def.name + "' already exists");
  }
  if (def.replicated) {
    // Replicas are full copies.
    for (TableFragment& f : def.fragments) f.row_fraction = 1.0;
  }
  tables_.emplace(def.name, std::move(def));
  return Status::OK();
}

Result<const TableDef*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("unknown table '" + name + "'");
  }
  return &it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(ToLower(name)) != 0;
}

Status Catalog::SetStats(const std::string& table, TableStats stats) {
  auto it = tables_.find(ToLower(table));
  if (it == tables_.end()) {
    return Status::NotFound("unknown table '" + table + "'");
  }
  it->second.stats = std::move(stats);
  return Status::OK();
}

Status Catalog::SetFragments(const std::string& table,
                             std::vector<TableFragment> fragments) {
  auto it = tables_.find(ToLower(table));
  if (it == tables_.end()) {
    return Status::NotFound("unknown table '" + table + "'");
  }
  if (fragments.empty()) {
    return Status::InvalidArgument("fragments must be non-empty");
  }
  it->second.fragments = std::move(fragments);
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, def] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace cgq
