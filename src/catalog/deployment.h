#ifndef CGQ_CATALOG_DEPLOYMENT_H_
#define CGQ_CATALOG_DEPLOYMENT_H_

#include <string>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "core/policy.h"

namespace cgq {

/// A parsed deployment description: the geo-distributed schema plus the
/// dataflow policies each data officer declared.
struct Deployment {
  Catalog catalog;
  /// (location, expression text); text may be a `ship ...` policy
  /// expression or a `deny ...` rule (expanded closed-world on install).
  std::vector<std::pair<std::string, std::string>> policies;
};

/// Parses the line-oriented deployment format:
///
///   # comment
///   location berlin
///   location tokyo
///   table users @ berlin : id int64, name string, email string
///   table logs @ berlin 0.5, tokyo 0.5 : user_id int64, ts date
///   replicated table rates @ berlin, tokyo : cur string, rate double
///   rows users 1500                       # statistics row count
///   policy berlin : ship id, name from users to tokyo
///   policy berlin : deny email from users to *
///
/// Column types: int64, double, string, date. A table may list several
/// `location [fraction]` placements (horizontal fragments, or full copies
/// when prefixed `replicated`). Policies are validated on install, not on
/// parse.
Result<Deployment> ParseDeployment(const std::string& text);

/// Installs the deployment's policies into `policies` (which must wrap the
/// deployment's catalog). `deny` rules are expanded via core/deny_rules.
Status InstallDeploymentPolicies(const Deployment& deployment,
                                 PolicyCatalog* policies);

/// Renders a catalog + installed policies back into the deployment format
/// (round-trippable through ParseDeployment; deny rules appear in their
/// expanded positive form).
std::string WriteDeployment(const Catalog& catalog,
                            const PolicyCatalog& policies);

}  // namespace cgq

#endif  // CGQ_CATALOG_DEPLOYMENT_H_
