#include "catalog/location.h"

#include "common/str_util.h"

namespace cgq {

Result<LocationId> LocationCatalog::AddLocation(const std::string& name) {
  if (names_.size() >= 64) {
    return Status::InvalidArgument("at most 64 locations are supported");
  }
  for (const std::string& existing : names_) {
    if (EqualsIgnoreCase(existing, name)) {
      return Status::AlreadyExists("location '" + name + "' already exists");
    }
  }
  names_.push_back(name);
  return static_cast<LocationId>(names_.size() - 1);
}

Result<LocationId> LocationCatalog::GetId(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (EqualsIgnoreCase(names_[i], name)) {
      return static_cast<LocationId>(i);
    }
  }
  return Status::NotFound("unknown location '" + name + "'");
}

std::string LocationCatalog::SetToString(LocationSet set) const {
  std::string out = "{";
  bool first = true;
  for (LocationId id : set.ToVector()) {
    if (!first) out += ", ";
    first = false;
    out += id < names_.size() ? names_[id] : ("L?" + std::to_string(id));
  }
  out += "}";
  return out;
}

}  // namespace cgq
