#ifndef CGQ_CATALOG_CATALOG_H_
#define CGQ_CATALOG_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/location.h"
#include "catalog/stats.h"
#include "common/result.h"
#include "types/schema.h"

namespace cgq {

/// One horizontal fragment of a table, pinned to a location (§7.5).
/// A non-fragmented table has exactly one fragment.
struct TableFragment {
  LocationId location = 0;
  /// Fraction of the table's rows stored here (fragments sum to 1).
  double row_fraction = 1.0;
};

/// A base table in the geo-distributed (global) schema.
///
/// The paper assumes the global schema is the union of local schemas and
/// that GAV mappings may place a table's fragments at several locations; we
/// model this directly with `fragments`. When `replicated` is set, the
/// fragments are instead *full copies*: a scan reads exactly one of them,
/// and the optimizer picks the replica whose site's policies and network
/// position suit the plan (each replica is governed by its own location's
/// policies).
struct TableDef {
  std::string name;  ///< Lower-cased canonical name.
  Schema schema;
  std::vector<TableFragment> fragments;
  bool replicated = false;
  TableStats stats;

  /// True when all rows live at one site.
  bool IsSingleLocation() const { return fragments.size() == 1; }
  /// Location of the only fragment. Requires IsSingleLocation().
  LocationId home() const { return fragments.front().location; }
  /// Union of fragment locations.
  LocationSet LocationsOf() const {
    LocationSet s;
    for (const TableFragment& f : fragments) s.Add(f.location);
    return s;
  }
};

/// Global schema: locations + tables (+ statistics).
///
/// The catalog is immutable during optimization; builders populate it once
/// (e.g. `tpch::BuildCatalog`).
class Catalog {
 public:
  LocationCatalog& mutable_locations() { return locations_; }
  const LocationCatalog& locations() const { return locations_; }

  /// Registers a table; the name is canonicalized to lower case.
  Status AddTable(TableDef def);

  Result<const TableDef*> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;

  /// Replaces statistics of an existing table.
  Status SetStats(const std::string& table, TableStats stats);
  /// Replaces fragment placement of an existing table.
  Status SetFragments(const std::string& table,
                      std::vector<TableFragment> fragments);

  std::vector<std::string> TableNames() const;

 private:
  LocationCatalog locations_;
  std::unordered_map<std::string, TableDef> tables_;  // by lower-cased name
};

}  // namespace cgq

#endif  // CGQ_CATALOG_CATALOG_H_
