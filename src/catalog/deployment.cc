#include "catalog/deployment.h"

#include <map>
#include <sstream>

#include "common/str_util.h"
#include "core/deny_rules.h"

namespace cgq {

namespace {

Result<DataType> TypeFromName(const std::string& name) {
  if (name == "int64" || name == "int" || name == "bigint") {
    return DataType::kInt64;
  }
  if (name == "double" || name == "float" || name == "decimal") {
    return DataType::kDouble;
  }
  if (name == "string" || name == "text" || name == "varchar") {
    return DataType::kString;
  }
  if (name == "date") return DataType::kDate;
  return Status::InvalidArgument("unknown column type '" + name + "'");
}

// "berlin 0.5, tokyo 0.5" or "berlin" -> fragments.
Result<std::vector<TableFragment>> ParsePlacement(
    const Catalog& catalog, const std::string& text) {
  std::vector<TableFragment> fragments;
  for (const std::string& piece : SplitAndTrim(text, ',')) {
    std::istringstream is(piece);
    std::string name;
    double fraction = -1;
    is >> name >> fraction;
    if (name.empty()) {
      return Status::InvalidArgument("bad placement '" + text + "'");
    }
    CGQ_ASSIGN_OR_RETURN(LocationId l, catalog.locations().GetId(name));
    fragments.push_back(TableFragment{l, fraction});
  }
  // Unspecified fractions default to a uniform split.
  bool any_missing = false;
  for (const TableFragment& f : fragments) any_missing |= f.row_fraction < 0;
  if (any_missing) {
    for (TableFragment& f : fragments) {
      f.row_fraction = 1.0 / static_cast<double>(fragments.size());
    }
  }
  return fragments;
}

}  // namespace

Result<Deployment> ParseDeployment(const std::string& text) {
  Deployment out;
  std::istringstream stream(text);
  std::string raw_line;
  int line_no = 0;
  auto error = [&](const std::string& msg) {
    return Status::InvalidArgument("deployment line " +
                                   std::to_string(line_no) + ": " + msg);
  };

  while (std::getline(stream, raw_line)) {
    ++line_no;
    std::string line(Trim(raw_line));
    if (line.empty() || line[0] == '#') continue;
    // Backslash continuation: join with following lines.
    while (!line.empty() && line.back() == '\\' &&
           std::getline(stream, raw_line)) {
      ++line_no;
      line.pop_back();
      line = std::string(Trim(line)) + " " + std::string(Trim(raw_line));
    }

    if (line.rfind("location ", 0) == 0) {
      std::string name(Trim(line.substr(9)));
      CGQ_RETURN_NOT_OK(
          out.catalog.mutable_locations().AddLocation(name).status());
      continue;
    }

    bool replicated = false;
    if (line.rfind("replicated table ", 0) == 0) {
      replicated = true;
      line = "table " + line.substr(17);
    }
    if (line.rfind("table ", 0) == 0) {
      size_t at = line.find('@');
      size_t colon = line.find(':', at == std::string::npos ? 0 : at);
      if (at == std::string::npos || colon == std::string::npos) {
        return error("expected 'table <name> @ <placement> : <columns>'");
      }
      TableDef def;
      def.replicated = replicated;
      def.name = ToLower(std::string(Trim(line.substr(6, at - 6))));
      CGQ_ASSIGN_OR_RETURN(
          def.fragments,
          ParsePlacement(out.catalog,
                         std::string(Trim(
                             line.substr(at + 1, colon - at - 1)))));
      std::vector<ColumnDef> columns;
      for (const std::string& col :
           SplitAndTrim(line.substr(colon + 1), ',')) {
        std::istringstream is(col);
        std::string cname, ctype;
        is >> cname >> ctype;
        if (cname.empty() || ctype.empty()) {
          return error("bad column declaration '" + col + "'");
        }
        CGQ_ASSIGN_OR_RETURN(DataType type, TypeFromName(ToLower(ctype)));
        columns.push_back({ToLower(cname), type});
      }
      if (columns.empty()) return error("table needs at least one column");
      def.schema = Schema(std::move(columns));
      def.stats.row_count = 1000;  // placeholder until `rows` / ANALYZE
      CGQ_RETURN_NOT_OK(out.catalog.AddTable(std::move(def)));
      continue;
    }

    if (line.rfind("rows ", 0) == 0) {
      std::istringstream is(line.substr(5));
      std::string table;
      double rows = 0;
      is >> table >> rows;
      CGQ_ASSIGN_OR_RETURN(const TableDef* def, out.catalog.GetTable(table));
      TableStats stats = def->stats;
      stats.row_count = rows;
      CGQ_RETURN_NOT_OK(out.catalog.SetStats(table, stats));
      continue;
    }

    if (line.rfind("policy ", 0) == 0) {
      size_t colon = line.find(':');
      if (colon == std::string::npos) {
        return error("expected 'policy <location> : <expression>'");
      }
      std::string location(Trim(line.substr(7, colon - 7)));
      std::string expr(Trim(line.substr(colon + 1)));
      if (location.empty() || expr.empty()) {
        return error("empty policy location or expression");
      }
      out.policies.emplace_back(std::move(location), std::move(expr));
      continue;
    }

    return error("unrecognized directive '" + line + "'");
  }
  return out;
}

std::string WriteDeployment(const Catalog& catalog,
                            const PolicyCatalog& policies) {
  std::ostringstream os;
  const LocationCatalog& locs = catalog.locations();
  for (LocationId l = 0; l < locs.num_locations(); ++l) {
    os << "location " << locs.GetName(l) << "\n";
  }
  os << "\n";
  auto type_name = [](DataType t) {
    switch (t) {
      case DataType::kInt64:
        return "int64";
      case DataType::kDouble:
        return "double";
      case DataType::kString:
        return "string";
      case DataType::kDate:
        return "date";
    }
    return "string";
  };
  for (const std::string& name : catalog.TableNames()) {
    auto def = catalog.GetTable(name);
    if (!def.ok()) continue;
    if ((*def)->replicated) os << "replicated ";
    os << "table " << name << " @ ";
    const std::vector<TableFragment>& fragments = (*def)->fragments;
    for (size_t i = 0; i < fragments.size(); ++i) {
      if (i > 0) os << ", ";
      os << locs.GetName(fragments[i].location);
      if (!(*def)->replicated && fragments.size() > 1) {
        char buf[24];
        std::snprintf(buf, sizeof(buf), " %g", fragments[i].row_fraction);
        os << buf;
      }
    }
    os << " : ";
    for (size_t c = 0; c < (*def)->schema.num_columns(); ++c) {
      if (c > 0) os << ", ";
      const ColumnDef& col = (*def)->schema.column(c);
      os << col.name << " " << type_name(col.type);
    }
    os << "\n";
    os << "rows " << name << " "
       << static_cast<long long>((*def)->stats.row_count) << "\n";
  }
  os << "\n";
  for (LocationId l = 0; l < locs.num_locations(); ++l) {
    for (const PolicyExpression& e : policies.For(l)) {
      os << "policy " << locs.GetName(l) << " : " << e.ToString(locs)
         << "\n";
    }
  }
  return os.str();
}

Status InstallDeploymentPolicies(const Deployment& deployment,
                                 PolicyCatalog* policies) {
  // Group deny rules per location so one closed-world expansion sees all
  // of a location's denials for a table.
  std::map<std::string, std::vector<std::string>> denies;
  for (const auto& [location, text] : deployment.policies) {
    if (text.rfind("deny", 0) == 0) {
      denies[location].push_back(text);
    } else {
      CGQ_RETURN_NOT_OK(policies->AddPolicyText(location, text));
    }
  }
  for (const auto& [location, texts] : denies) {
    CGQ_RETURN_NOT_OK(AddDenyPolicies(location, texts, policies));
  }
  return Status::OK();
}

}  // namespace cgq
