#ifndef CGQ_CATALOG_LOCATION_H_
#define CGQ_CATALOG_LOCATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/result.h"

namespace cgq {

/// Dense id of a geo-distributed site (0-based). The paper assumes one
/// database per location, so LocationId also identifies the database.
using LocationId = uint32_t;

/// A set of locations as a 64-bit bitset (up to 64 sites; the paper's
/// largest experiment uses 20). This is the representation of the paper's
/// execution traits ℰ and shipping traits 𝒮 and of policy `to` lists.
class LocationSet {
 public:
  constexpr LocationSet() = default;
  constexpr explicit LocationSet(uint64_t bits) : bits_(bits) {}

  static constexpr LocationSet Empty() { return LocationSet(0); }
  static constexpr LocationSet Single(LocationId l) {
    return LocationSet(uint64_t{1} << l);
  }
  /// The universe {0, ..., n-1}.
  static constexpr LocationSet AllOf(size_t n) {
    return n >= 64 ? LocationSet(~uint64_t{0})
                   : LocationSet((uint64_t{1} << n) - 1);
  }

  bool empty() const { return bits_ == 0; }
  bool Contains(LocationId l) const { return (bits_ >> l) & 1; }
  size_t Count() const { return static_cast<size_t>(__builtin_popcountll(bits_)); }
  uint64_t bits() const { return bits_; }

  void Add(LocationId l) { bits_ |= uint64_t{1} << l; }
  void Remove(LocationId l) { bits_ &= ~(uint64_t{1} << l); }

  LocationSet Union(LocationSet other) const {
    return LocationSet(bits_ | other.bits_);
  }
  LocationSet Intersect(LocationSet other) const {
    return LocationSet(bits_ & other.bits_);
  }
  bool IsSubsetOf(LocationSet other) const {
    return (bits_ & ~other.bits_) == 0;
  }

  /// Ascending list of member ids.
  std::vector<LocationId> ToVector() const {
    std::vector<LocationId> out;
    uint64_t b = bits_;
    while (b != 0) {
      out.push_back(static_cast<LocationId>(__builtin_ctzll(b)));
      b &= b - 1;
    }
    return out;
  }

  bool operator==(const LocationSet& other) const = default;

 private:
  uint64_t bits_ = 0;
};

/// Name registry of geo-distributed sites.
///
/// Location 0 is conventionally the query-issuing site in the benchmarks,
/// but nothing in the optimizer depends on that.
class LocationCatalog {
 public:
  /// Registers a location; fails on duplicates or when 64 sites exist.
  Result<LocationId> AddLocation(const std::string& name);

  Result<LocationId> GetId(const std::string& name) const;
  const std::string& GetName(LocationId id) const {
    CGQ_CHECK(id < names_.size()) << "bad location id " << id;
    return names_[id];
  }
  size_t num_locations() const { return names_.size(); }

  /// The full universe set {0..n-1}.
  LocationSet All() const { return LocationSet::AllOf(names_.size()); }

  /// "{E, N}" style rendering of a set, sorted by id.
  std::string SetToString(LocationSet set) const;

 private:
  std::vector<std::string> names_;
};

}  // namespace cgq

#endif  // CGQ_CATALOG_LOCATION_H_
