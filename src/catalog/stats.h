#ifndef CGQ_CATALOG_STATS_H_
#define CGQ_CATALOG_STATS_H_

#include <optional>
#include <string>
#include <unordered_map>

namespace cgq {

/// Per-column statistics used by the cardinality estimator.
struct ColumnStats {
  /// Number of distinct values. 0 means unknown.
  double distinct_count = 0;
  /// Min/max for numeric columns (unset for strings or unknown).
  std::optional<double> min;
  std::optional<double> max;
  /// Average serialized width in bytes (for the message cost model).
  double avg_width = 8;
};

/// Per-table statistics (row count + per-column stats).
struct TableStats {
  double row_count = 0;
  /// Keyed by lower-cased column name.
  std::unordered_map<std::string, ColumnStats> columns;

  const ColumnStats* FindColumn(const std::string& lower_name) const {
    auto it = columns.find(lower_name);
    return it == columns.end() ? nullptr : &it->second;
  }
};

}  // namespace cgq

#endif  // CGQ_CATALOG_STATS_H_
