// Protocol-level tests of the location server over real loopback TCP:
// ephemeral-port discipline, handshake verification, chunked deployment
// round-trips, framing refusals (bad magic, version skew, corrupted
// checksums) and the receiving-end placement re-check that runs before
// a fragment produces its first row.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exec/table_store.h"
#include "net/cluster_client.h"
#include "net/server.h"
#include "net/socket.h"
#include "net/wire_protocol.h"
#include "plan/plan_node.h"

namespace cgq {
namespace net {
namespace {

constexpr int kIoMs = 5000;

SiteServer::Options Hosting(std::vector<LocationId> locations) {
  SiteServer::Options o;
  o.locations = std::move(locations);
  return o;
}

Result<Socket> DialRaw(uint16_t port) {
  return Socket::Connect("127.0.0.1", port, kIoMs);
}

// Dial + Hello/HelloAck; returns the handshaken socket.
Result<Socket> DialHandshaken(uint16_t port) {
  CGQ_ASSIGN_OR_RETURN(Socket s, DialRaw(port));
  CGQ_RETURN_NOT_OK(SendFrame(s, wire::FrameType::kHello,
                              wire::Hello().Encode(), kIoMs));
  CGQ_ASSIGN_OR_RETURN(Frame ack, RecvFrame(s, kIoMs));
  if (ack.type != wire::FrameType::kHelloAck) {
    return Status::Internal("handshake did not ack");
  }
  return s;
}

// A one-table scan fragment rooted at `site`, executable against rows
// of shape (int64). exec trait = exactly {site}.
PlanNodePtr ScanPlan(const std::string& table, LocationId site) {
  auto scan = std::make_shared<PlanNode>(PlanKind::kScan);
  scan->table = table;
  scan->scan_location = site;
  scan->outputs = {{1, "x", DataType::kInt64}};
  scan->exec_trait = LocationSet(uint64_t{1} << site);
  scan->location = site;
  return scan;
}

TEST(SiteServerTest, BindsEphemeralPortAndStopsIdempotently) {
  SiteServer a(Hosting({0}));
  SiteServer b(Hosting({1}));
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());
  EXPECT_NE(a.port(), 0);
  EXPECT_NE(b.port(), 0);
  // Both asked for port 0 and both are bound: the kernel handed out
  // distinct ephemeral ports — nothing is hardcoded anywhere.
  EXPECT_NE(a.port(), b.port());
  a.Stop();
  a.Stop();  // idempotent
  b.Stop();
}

TEST(SiteServerTest, HandshakeReportsHostedLocations) {
  SiteServer server(Hosting({2, 3}));
  ASSERT_TRUE(server.Start().ok());

  auto sock = DialRaw(server.port());
  ASSERT_TRUE(sock.ok()) << sock.status();
  ASSERT_TRUE(SendFrame(*sock, wire::FrameType::kHello,
                        wire::Hello().Encode(), kIoMs)
                  .ok());
  auto frame = RecvFrame(*sock, kIoMs);
  ASSERT_TRUE(frame.ok()) << frame.status();
  ASSERT_EQ(frame->type, wire::FrameType::kHelloAck);
  auto ack = wire::HelloAck::Decode(frame->payload);
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack->version, wire::kVersion);
  EXPECT_EQ(ack->locations, (std::vector<LocationId>{2, 3}));
  server.Stop();
}

TEST(SiteServerTest, ClusterClientVerifiesLocationMapping) {
  SiteServer server(Hosting({0, 1}));
  ASSERT_TRUE(server.Start().ok());
  const Endpoint ep{"127.0.0.1", server.port()};

  // A location mapped to a server that does not host it is refused at
  // Connect time, before any deployment or query work.
  ClusterClient bad;
  Status s = bad.Connect({{0, ep}, {4, ep}});
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("l4"), std::string::npos) << s;
  EXPECT_FALSE(bad.connected());

  ClusterClient good;
  ASSERT_TRUE(good.Connect({{0, ep}, {1, ep}}).ok());
  EXPECT_TRUE(good.connected());
  EXPECT_TRUE(good.HasServer(0));
  EXPECT_TRUE(good.HasServer(1));
  EXPECT_FALSE(good.HasServer(2));
  server.Stop();
}

TEST(SiteServerTest, VersionSkewRefusedTyped) {
  SiteServer server(Hosting({0}));
  ASSERT_TRUE(server.Start().ok());
  auto sock = DialRaw(server.port());
  ASSERT_TRUE(sock.ok());

  // Hand-craft a frame header claiming protocol version kVersion + 1.
  wire::Writer w;
  w.PutU32(wire::kMagic);
  w.PutU16(wire::kVersion + 1);
  w.PutU16(static_cast<uint16_t>(wire::FrameType::kHello));
  w.PutU32(0);
  w.PutU64(wire::Fnv1a(nullptr, 0));
  ASSERT_TRUE(sock->SendAll(w.buffer().data(), w.buffer().size(), kIoMs)
                  .ok());

  auto frame = RecvFrame(*sock, kIoMs);
  ASSERT_TRUE(frame.ok()) << frame.status();
  ASSERT_EQ(frame->type, wire::FrameType::kError);
  auto err = wire::ErrorMsg::Decode(frame->payload);
  ASSERT_TRUE(err.ok());
  EXPECT_TRUE(err->ToStatus().IsUnsupported()) << err->ToStatus();
  // No resync point after a framing refusal: the connection is dropped.
  EXPECT_TRUE(RecvFrame(*sock, kIoMs).status().IsUnavailable());
  server.Stop();
}

TEST(SiteServerTest, BadMagicDropsConnection) {
  SiteServer server(Hosting({0}));
  ASSERT_TRUE(server.Start().ok());
  auto sock = DialRaw(server.port());
  ASSERT_TRUE(sock.ok());

  std::string garbage(wire::kHeaderSize, '\x5a');
  ASSERT_TRUE(sock->SendAll(garbage.data(), garbage.size(), kIoMs).ok());
  auto frame = RecvFrame(*sock, kIoMs);
  ASSERT_TRUE(frame.ok()) << frame.status();
  ASSERT_EQ(frame->type, wire::FrameType::kError);
  auto err = wire::ErrorMsg::Decode(frame->payload);
  ASSERT_TRUE(err.ok());
  EXPECT_TRUE(err->ToStatus().IsInvalidArgument());
  EXPECT_TRUE(RecvFrame(*sock, kIoMs).status().IsUnavailable());
  server.Stop();
}

TEST(SiteServerTest, CorruptedChecksumRejected) {
  SiteServer server(Hosting({0}));
  ASSERT_TRUE(server.Start().ok());
  auto sock = DialRaw(server.port());
  ASSERT_TRUE(sock.ok());

  std::string frame =
      wire::EncodeFrame(wire::FrameType::kHello, wire::Hello().Encode());
  frame.back() ^= 0x01;  // flip one payload bit
  ASSERT_TRUE(sock->SendAll(frame.data(), frame.size(), kIoMs).ok());
  auto reply = RecvFrame(*sock, kIoMs);
  ASSERT_TRUE(reply.ok()) << reply.status();
  ASSERT_EQ(reply->type, wire::FrameType::kError);
  auto err = wire::ErrorMsg::Decode(reply->payload);
  ASSERT_TRUE(err.ok());
  EXPECT_TRUE(err->ToStatus().IsInvalidArgument());
  server.Stop();
}

TEST(SiteServerTest, LoadTableToUnhostedLocationRefused) {
  SiteServer server(Hosting({0, 1}));
  ASSERT_TRUE(server.Start().ok());
  auto sock = DialHandshaken(server.port());
  ASSERT_TRUE(sock.ok()) << sock.status();

  wire::LoadTable load;
  load.location = 7;
  load.table = "t";
  load.rows.push_back({Value::Int64(1)});
  ASSERT_TRUE(SendFrame(*sock, wire::FrameType::kLoadTable,
                        load.Encode(), kIoMs)
                  .ok());
  auto frame = RecvFrame(*sock, kIoMs);
  ASSERT_TRUE(frame.ok()) << frame.status();
  ASSERT_EQ(frame->type, wire::FrameType::kError);
  auto err = wire::ErrorMsg::Decode(frame->payload);
  ASSERT_TRUE(err.ok());
  EXPECT_TRUE(err->ToStatus().IsInvalidArgument());
  EXPECT_NE(err->message.find("not hosted"), std::string::npos);
  server.Stop();
}

TEST(SiteServerTest, DeployPushesSlicesToHostingServers) {
  // One fragment larger than a LoadTable chunk exercises the
  // replace-then-append chunking of ClusterClient::Deploy.
  const size_t big = ClusterClient::kLoadChunkRows + 111;
  TableStore store;
  std::vector<Row> rows0;
  for (size_t i = 0; i < big; ++i) {
    rows0.push_back({Value::Int64(static_cast<int64_t>(i))});
  }
  store.Put(0, "t", std::move(rows0));
  store.Put(1, "t", {{Value::Int64(-1)}, {Value::Int64(-2)}});
  store.Put(2, "u", {{Value::String("z")}});

  SiteServer a(Hosting({0, 1}));
  SiteServer b(Hosting({2}));
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());

  ClusterClient cluster;
  ASSERT_TRUE(cluster
                  .Connect({{0, {"127.0.0.1", a.port()}},
                            {1, {"127.0.0.1", a.port()}},
                            {2, {"127.0.0.1", b.port()}}})
                  .ok());
  ASSERT_TRUE(cluster.Deploy(store).ok());

  auto rows_at = [](SiteServer& s, LocationId loc,
                    const std::string& table) -> size_t {
    auto r = s.mutable_store()->Get(loc, table);
    return r.ok() ? (*r)->size() : 0;
  };
  EXPECT_EQ(rows_at(a, 0, "t"), big);
  EXPECT_EQ(rows_at(a, 1, "t"), 2u);
  EXPECT_EQ(rows_at(b, 2, "u"), 1u);
  // Nothing leaked across servers.
  EXPECT_EQ(rows_at(b, 0, "t"), 0u);

  // A fragment whose location has no mapped server fails the deployment.
  TableStore uncovered;
  uncovered.Put(5, "t", {{Value::Int64(9)}});
  EXPECT_FALSE(cluster.Deploy(uncovered).ok());

  a.Stop();
  b.Stop();
}

TEST(SiteServerTest, StartFragmentRefusedForUnhostedSite) {
  SiteServer server(Hosting({0, 1}));
  ASSERT_TRUE(server.Start().ok());
  auto sock = DialHandshaken(server.port());
  ASSERT_TRUE(sock.ok()) << sock.status();

  wire::StartFragment start;
  start.fragment_id = 7;
  start.site = 5;
  start.batch_size = 128;
  start.root = ScanPlan("t", 5);
  auto payload = start.Encode({});
  ASSERT_TRUE(payload.ok());
  ASSERT_TRUE(SendFrame(*sock, wire::FrameType::kStartFragment, *payload,
                        kIoMs)
                  .ok());
  auto frame = RecvFrame(*sock, kIoMs);
  ASSERT_TRUE(frame.ok()) << frame.status();
  ASSERT_EQ(frame->type, wire::FrameType::kError);
  auto err = wire::ErrorMsg::Decode(frame->payload);
  ASSERT_TRUE(err.ok());
  EXPECT_TRUE(err->ToStatus().IsInvalidArgument());
  EXPECT_NE(err->message.find("not hosting"), std::string::npos);
  server.Stop();
}

TEST(SiteServerTest, StartFragmentRechecksShippingTrait) {
  SiteServer server(Hosting({0}));
  ASSERT_TRUE(server.Start().ok());
  auto sock = DialHandshaken(server.port());
  ASSERT_TRUE(sock.ok()) << sock.status();

  // The fragment itself is well-placed (site 0, trait {0}), but its
  // output SHIP targets l3 while the shipping trait only allows {0,1}:
  // the *server* must refuse before producing a row.
  wire::StartFragment start;
  start.fragment_id = 2;
  start.site = 0;
  start.batch_size = 128;
  start.has_output_ship = true;
  start.ship_to = 3;
  start.ship_trait_bits = 0b11;
  start.root = ScanPlan("t", 0);
  auto payload = start.Encode({});
  ASSERT_TRUE(payload.ok());
  ASSERT_TRUE(SendFrame(*sock, wire::FrameType::kStartFragment, *payload,
                        kIoMs)
                  .ok());
  auto frame = RecvFrame(*sock, kIoMs);
  ASSERT_TRUE(frame.ok()) << frame.status();
  ASSERT_EQ(frame->type, wire::FrameType::kError);
  auto err = wire::ErrorMsg::Decode(frame->payload);
  ASSERT_TRUE(err.ok());
  EXPECT_NE(err->message.find("compliance violation"), std::string::npos)
      << err->message;
  EXPECT_EQ(server.fragments_completed(), 0);
  server.Stop();
}

TEST(SiteServerTest, ScanFragmentStreamsBatchesAndAccounting) {
  SiteServer server(Hosting({0}));
  std::vector<Row> rows;
  for (int64_t i = 0; i < 5; ++i) rows.push_back({Value::Int64(i * 10)});
  server.mutable_store()->Put(0, "t", std::move(rows));
  ASSERT_TRUE(server.Start().ok());
  auto sock = DialHandshaken(server.port());
  ASSERT_TRUE(sock.ok()) << sock.status();

  wire::StartFragment start;
  start.fragment_id = 0;
  start.site = 0;
  start.batch_size = 2;
  start.root = ScanPlan("t", 0);
  auto payload = start.Encode({});
  ASSERT_TRUE(payload.ok());
  ASSERT_TRUE(SendFrame(*sock, wire::FrameType::kStartFragment, *payload,
                        kIoMs)
                  .ok());
  auto ack = RecvFrame(*sock, kIoMs);
  ASSERT_TRUE(ack.ok()) << ack.status();
  ASSERT_EQ(ack->type, wire::FrameType::kStartAck);

  // 5 rows at batch size 2 -> batches of 2, 2, 1, then the accounting.
  std::vector<int64_t> values;
  int batches = 0;
  while (true) {
    auto frame = RecvFrame(*sock, kIoMs);
    ASSERT_TRUE(frame.ok()) << frame.status();
    if (frame->type == wire::FrameType::kOutputBatch) {
      auto out = wire::OutputBatch::Decode(frame->payload);
      ASSERT_TRUE(out.ok());
      ++batches;
      for (size_t r = 0; r < out->batch.NumRows(); ++r) {
        values.push_back(out->batch.rows[r][0].int64());
      }
      continue;
    }
    ASSERT_EQ(frame->type, wire::FrameType::kOutputEnd);
    auto end = wire::OutputEnd::Decode(frame->payload);
    ASSERT_TRUE(end.ok());
    EXPECT_EQ(end->rows_out, 5);
    EXPECT_EQ(end->rows_scanned, 5);
    break;
  }
  EXPECT_EQ(batches, 3);
  EXPECT_EQ(values, (std::vector<int64_t>{0, 10, 20, 30, 40}));
  EXPECT_EQ(server.fragments_completed(), 1);
  server.Stop();
}

TEST(SiteServerTest, InputBatchWithoutFragmentIsTypedError) {
  SiteServer server(Hosting({0}));
  ASSERT_TRUE(server.Start().ok());
  auto sock = DialHandshaken(server.port());
  ASSERT_TRUE(sock.ok()) << sock.status();

  wire::InputBatch input;
  input.channel = 3;
  ASSERT_TRUE(SendFrame(*sock, wire::FrameType::kInputBatch,
                        input.Encode(), kIoMs)
                  .ok());
  auto frame = RecvFrame(*sock, kIoMs);
  ASSERT_TRUE(frame.ok()) << frame.status();
  ASSERT_EQ(frame->type, wire::FrameType::kError);
  auto err = wire::ErrorMsg::Decode(frame->payload);
  ASSERT_TRUE(err.ok());
  EXPECT_TRUE(err->ToStatus().IsInternal());
  server.Stop();
}

}  // namespace
}  // namespace net
}  // namespace cgq
