#include <gtest/gtest.h>

#include <set>

#include "core/compliance_checker.h"
#include "core/optimizer.h"
#include "net/network_model.h"
#include "sql/parser.h"
#include "tpch/tpch.h"
#include "workload/policy_generator.h"
#include "workload/query_generator.h"

namespace cgq {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tpch::TpchConfig config;
    config.scale_factor = 1;
    auto catalog = tpch::BuildCatalog(config);
    ASSERT_TRUE(catalog.ok());
    catalog_ = std::make_unique<Catalog>(std::move(*catalog));
    properties_ = TpchWorkloadProperties();
    net_ = std::make_unique<NetworkModel>(NetworkModel::DefaultGeo(5));
  }

  std::unique_ptr<Catalog> catalog_;
  WorkloadProperties properties_;
  std::unique_ptr<NetworkModel> net_;
};

TEST_F(WorkloadTest, GeneratedQueriesParse) {
  AdhocQueryGenerator gen(catalog_.get(), &properties_, {});
  for (int i = 0; i < 200; ++i) {
    std::string sql = gen.Next();
    auto ast = ParseQuery(sql);
    EXPECT_TRUE(ast.ok()) << sql << "\n" << ast.status();
  }
}

TEST_F(WorkloadTest, GeneratedQueriesMatchDistribution) {
  AdhocQueryGenerator gen(catalog_.get(), &properties_, {});
  int counts[5] = {0};
  int aggregates = 0;
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    auto ast = ParseQuery(gen.Next());
    ASSERT_TRUE(ast.ok());
    size_t tables = ast->from.size();
    ASSERT_GE(tables, 2u);
    ASSERT_LE(tables, 4u);
    counts[tables] += 1;
    aggregates += ast->group_by.empty() ? 0 : 1;
  }
  // §7.2: 55% / 35% / 10% two/three/four tables; ~30% aggregation.
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.55, 0.12);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.35, 0.12);
  EXPECT_NEAR(aggregates / static_cast<double>(n), 0.30, 0.12);
}

TEST_F(WorkloadTest, GeneratedQueriesSpanTwoLocations) {
  AdhocQueryGenerator gen(catalog_.get(), &properties_, {});
  for (int i = 0; i < 100; ++i) {
    auto ast = ParseQuery(gen.Next());
    ASSERT_TRUE(ast.ok());
    std::set<LocationId> locations;
    for (const TableRefAst& ref : ast->from) {
      auto def = catalog_->GetTable(ref.table);
      ASSERT_TRUE(def.ok());
      for (LocationId l : (*def)->LocationsOf().ToVector()) {
        locations.insert(l);
      }
    }
    EXPECT_GE(locations.size(), 2u);
  }
}

TEST_F(WorkloadTest, GeneratorIsDeterministic) {
  AdhocQueryGenerator a(catalog_.get(), &properties_, {});
  AdhocQueryGenerator b(catalog_.get(), &properties_, {});
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST_F(WorkloadTest, PolicyGeneratorProducesValidExpressions) {
  for (const char* templ : {"T", "C", "CR", "CRA"}) {
    PolicyGeneratorConfig config;
    config.template_name = templ;
    config.count = 50;
    PolicyExpressionGenerator gen(catalog_.get(), &properties_, config);
    PolicyCatalog policies(catalog_.get());
    Status s = gen.InstallInto(&policies);
    EXPECT_TRUE(s.ok()) << templ << ": " << s;
    EXPECT_EQ(policies.TotalCount(), 50u) << templ;
  }
}

TEST_F(WorkloadTest, FeasibleSetsKeepAdhocQueriesLegal) {
  // The paper's Fig 6(a): under generated (feasible) policy sets, the
  // compliance-based optimizer finds a compliant plan for every query.
  PolicyGeneratorConfig pconfig;
  pconfig.template_name = "CRA";
  pconfig.count = 50;
  PolicyExpressionGenerator pgen(catalog_.get(), &properties_, pconfig);
  PolicyCatalog policies(catalog_.get());
  ASSERT_TRUE(pgen.InstallInto(&policies).ok());

  AdhocQueryGenerator qgen(catalog_.get(), &properties_, {});
  OptimizerOptions opts;
  opts.compliant = true;
  QueryOptimizer optimizer(catalog_.get(), &policies, net_.get(), opts);

  int compliant = 0;
  const int n = 40;
  for (int i = 0; i < n; ++i) {
    std::string sql = qgen.Next();
    auto r = optimizer.Optimize(sql);
    ASSERT_TRUE(r.ok()) << sql << "\n" << r.status();
    EXPECT_TRUE(r->compliant) << sql;
    compliant += r->compliant ? 1 : 0;
  }
  EXPECT_EQ(compliant, n);
}

TEST_F(WorkloadTest, TheoremOnePropertyUnderRandomPolicies) {
  // Theorem 1 as a property test: with *random, possibly infeasible*
  // policies, the compliance-based optimizer either rejects or emits a
  // plan that independently verifies as compliant.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    PolicyGeneratorConfig pconfig;
    pconfig.template_name = "CRA";
    pconfig.count = 25;
    pconfig.seed = seed;
    pconfig.ensure_feasible = false;  // rejections become likely
    PolicyExpressionGenerator pgen(catalog_.get(), &properties_, pconfig);
    PolicyCatalog policies(catalog_.get());
    ASSERT_TRUE(pgen.InstallInto(&policies).ok());

    QueryGeneratorConfig qconfig;
    qconfig.seed = seed * 101;
    AdhocQueryGenerator qgen(catalog_.get(), &properties_, qconfig);

    OptimizerOptions opts;
    opts.compliant = true;
    QueryOptimizer optimizer(catalog_.get(), &policies, net_.get(), opts);
    PolicyEvaluator evaluator(catalog_.get(), &policies);

    for (int i = 0; i < 15; ++i) {
      std::string sql = qgen.Next();
      auto r = optimizer.Optimize(sql);
      if (!r.ok()) {
        EXPECT_TRUE(r.status().IsNonCompliant()) << sql << r.status();
        continue;
      }
      ComplianceReport report =
          CheckCompliance(*r->plan, evaluator, catalog_->locations());
      EXPECT_TRUE(report.compliant)
          << sql << "\n"
          << PlanToString(*r->plan, &catalog_->locations());
    }
  }
}

}  // namespace
}  // namespace cgq
