// Crash-recovery battery for src/storage/ (DESIGN.md §16): every
// corruption the recovery protocol claims to handle is manufactured here
// on a real directory — a commit log truncated mid-record, a flipped bit
// in a data block, a deleted manifest — and must yield either a clean
// replay of the acknowledged prefix or a typed kDataLoss, never silent
// wrong rows. The soak test arms the `storage.commit` failpoint so a
// simulated crash can land at every write site, and asserts that what
// recovery reconstructs always equals the acknowledged (shadow) state.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "storage/storage_engine.h"
#include "types/value.h"

namespace cgq {
namespace storage {
namespace {

namespace fs = std::filesystem;

class StorageRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Failpoints::DisarmAll();
    dir_ = (fs::temp_directory_path() /
            (std::string("cgq-recovery-test-") +
             ::testing::UnitTest::GetInstance()
                 ->current_test_info()
                 ->name()))
               .string();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  void TearDown() override {
    Failpoints::DisarmAll();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  static Row MakeRow(int64_t i) {
    return {Value::Int64(i), Value::String("r" + std::to_string(i)),
            Value::Double(i * 0.5)};
  }
  static std::vector<Row> MakeRows(int64_t n, int64_t base = 0) {
    std::vector<Row> rows;
    for (int64_t i = 0; i < n; ++i) rows.push_back(MakeRow(base + i));
    return rows;
  }

  // The single live commit-log path (there is exactly one wal-*.log
  // between checkpoints).
  std::string WalPath() const {
    for (const auto& entry : fs::directory_iterator(dir_)) {
      std::string name = entry.path().filename().string();
      if (name.rfind("wal-", 0) == 0) return entry.path().string();
    }
    ADD_FAILURE() << "no wal-*.log in " << dir_;
    return "";
  }

  std::vector<std::string> BlockPaths() const {
    std::vector<std::string> out;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      std::string name = entry.path().filename().string();
      if (name.rfind("b", 0) == 0 &&
          name.find(".blk") != std::string::npos) {
        out.push_back(entry.path().string());
      }
    }
    return out;
  }

  std::string dir_;
};

// Cutting the commit log mid-record models a crash between the start of
// an append and its flush: that mutation was never acknowledged, so
// recovery must replay the intact prefix and drop the torn tail.
TEST_F(StorageRecoveryTest, TruncatedWalTailReplaysPrefix) {
  {
    StorageEngine engine;
    ASSERT_TRUE(engine.Open(dir_).ok());
    ASSERT_TRUE(engine.Put(0, "t", MakeRows(40)).ok());
    ASSERT_TRUE(engine.Append(0, "t", MakeRows(10, 40)).ok());
  }
  std::string wal = WalPath();
  uintmax_t size = fs::file_size(wal);
  ASSERT_GT(size, 30u);
  fs::resize_file(wal, size - 13);  // cut into the last record

  {
    StorageEngine engine;
    ASSERT_TRUE(engine.Open(dir_).ok()) << "torn tail must replay cleanly";
    auto n = engine.FragmentRows(0, "t");
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(*n, 40u) << "the torn append must be dropped whole";
    std::vector<Row> all;
    ASSERT_TRUE(engine.ReadAll(0, "t", &all).ok());
    ASSERT_EQ(all.size(), 40u);
    for (int64_t i = 0; i < 40; ++i) {
      EXPECT_TRUE(
          RowsStructurallyEqual(all[static_cast<size_t>(i)], MakeRow(i)));
    }
    // Replay truncated the torn record away, so new appends land on a
    // clean log...
    ASSERT_TRUE(engine.Append(0, "t", MakeRows(5, 40)).ok());
  }
  // ...and survive another restart.
  StorageEngine again;
  ASSERT_TRUE(again.Open(dir_).ok());
  auto n2 = again.FragmentRows(0, "t");
  ASSERT_TRUE(n2.ok());
  EXPECT_EQ(*n2, 45u);
}

// A complete-but-corrupt record in the middle of the log is not a torn
// tail — the bytes after it prove the record was once whole — so it is
// data loss, not a clean stop.
TEST_F(StorageRecoveryTest, CorruptWalRecordIsDataLoss) {
  {
    StorageEngine engine;
    ASSERT_TRUE(engine.Open(dir_).ok());
    ASSERT_TRUE(engine.Put(0, "t", MakeRows(40)).ok());
    ASSERT_TRUE(engine.Append(0, "t", MakeRows(10, 40)).ok());
  }
  std::string wal = WalPath();
  {
    std::fstream f(wal, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(40);  // inside the first record's payload
    char b = 0;
    f.seekg(40);
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x20);
    f.seekp(40);
    f.write(&b, 1);
  }
  StorageEngine engine;
  Status s = engine.Open(dir_);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsDataLoss()) << s;
}

// A flipped bit in a checkpointed data block must surface as kDataLoss
// when the block is read — never as silently different rows.
TEST_F(StorageRecoveryTest, BitFlipInDataBlockIsDataLoss) {
  {
    StorageEngine engine;
    ASSERT_TRUE(engine.Open(dir_).ok());
    ASSERT_TRUE(engine.Put(0, "t", MakeRows(100)).ok());
    ASSERT_TRUE(engine.Checkpoint().ok());
  }
  std::vector<std::string> blocks = BlockPaths();
  ASSERT_FALSE(blocks.empty());
  {
    std::fstream f(blocks[0],
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    uintmax_t size = fs::file_size(blocks[0]);
    std::streampos pos = static_cast<std::streamoff>(size / 2);
    char b = 0;
    f.seekg(pos);
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x01);
    f.seekp(pos);
    f.write(&b, 1);
  }
  // Open succeeds (blocks are read lazily) but any read of the damaged
  // block is typed.
  StorageEngine engine;
  ASSERT_TRUE(engine.Open(dir_).ok());
  std::vector<Row> all;
  Status s = engine.ReadAll(0, "t", &all);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsDataLoss()) << s;
}

// Deleting the manifest named by CURRENT orphans the live block set:
// recovery cannot tell what was live, so it must refuse with kDataLoss
// rather than guess.
TEST_F(StorageRecoveryTest, DeletedManifestIsDataLoss) {
  {
    StorageEngine engine;
    ASSERT_TRUE(engine.Open(dir_).ok());
    ASSERT_TRUE(engine.Put(0, "t", MakeRows(10)).ok());
    ASSERT_TRUE(engine.Checkpoint().ok());
  }
  bool removed = false;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    std::string name = entry.path().filename().string();
    if (name.rfind("MANIFEST-", 0) == 0) {
      fs::remove(entry.path());
      removed = true;
    }
  }
  ASSERT_TRUE(removed);
  StorageEngine engine;
  Status s = engine.Open(dir_);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsDataLoss()) << s;
}

// ---------------------------------------------------------------------
// Randomized kill-point soak: the `storage.commit` failpoint sits at
// every commit site (each WAL append writes a torn prefix and fails;
// checkpoint dies between the new manifest and the CURRENT switch). A
// shadow map tracks exactly the acknowledged mutations; after every
// simulated crash, recovery must reconstruct the shadow byte-for-byte.
// ---------------------------------------------------------------------

using ShadowKey = std::pair<LocationId, std::string>;
using Shadow = std::map<ShadowKey, std::vector<Row>>;

void ExpectEngineEqualsShadow(StorageEngine& engine, const Shadow& shadow,
                              const std::string& context) {
  auto frags = engine.ListFragments();
  ASSERT_EQ(frags.size(), shadow.size()) << context;
  size_t i = 0;
  for (const auto& [key, want] : shadow) {
    ASSERT_LT(i, frags.size()) << context;
    EXPECT_EQ(frags[i].location, key.first) << context;
    EXPECT_EQ(frags[i].table, key.second) << context;
    ASSERT_EQ(frags[i].rows, want.size()) << context;
    std::vector<Row> got;
    ASSERT_TRUE(engine.ReadAll(key.first, key.second, &got).ok())
        << context;
    ASSERT_EQ(got.size(), want.size()) << context;
    for (size_t r = 0; r < want.size(); ++r) {
      ASSERT_TRUE(RowsStructurallyEqual(got[r], want[r]))
          << context << " fragment " << key.first << "/" << key.second
          << " row " << r;
    }
    ++i;
  }
}

TEST_F(StorageRecoveryTest, KillPointSoakRecoversAcknowledgedState) {
  // Small blocks + aggressive auto-checkpoints so the soak exercises
  // flush and checkpoint paths, not just the log.
  StorageOptions options;
  options.block_target_bytes = 1024;
  options.wal_checkpoint_bytes = 4096;

  const std::vector<std::string> tables = {"alpha", "beta"};
  std::mt19937_64 rng(20260809);
  Shadow shadow;
  int crashes = 0;

  auto engine = std::make_unique<StorageEngine>();
  ASSERT_TRUE(engine->Open(dir_, options).ok());
  // Fire roughly every 7th commit-site evaluation, deterministically.
  Failpoints::ArmEveryN("storage.commit", 7);

  for (int op = 0; op < 400; ++op) {
    LocationId loc = static_cast<LocationId>(rng() % 2);
    const std::string& table = tables[rng() % tables.size()];
    int64_t n = static_cast<int64_t>(rng() % 30) + 1;  // single chunk
    int64_t base = static_cast<int64_t>(rng() % 1000);
    std::vector<Row> rows = MakeRows(n, base);

    Status s;
    int kind = static_cast<int>(rng() % 10);
    if (kind == 0) {
      s = engine->Checkpoint();  // logical no-op on success
    } else if (kind <= 3) {
      s = engine->Put(loc, table, rows);
      if (s.ok()) shadow[{loc, table}] = rows;
    } else {
      s = engine->Append(loc, table, rows);
      if (s.ok()) {
        auto& frag = shadow[{loc, table}];
        frag.insert(frag.end(), rows.begin(), rows.end());
      }
    }

    if (!s.ok()) {
      // The failpoint fired: the mutation was not acknowledged and the
      // writer is wounded, exactly like a crashed process. Recover.
      ++crashes;
      engine = std::make_unique<StorageEngine>();
      Failpoints::Disarm("storage.commit");
      ASSERT_TRUE(engine->Open(dir_, options).ok())
          << "recovery after crash #" << crashes << " (op " << op << ")";
      ExpectEngineEqualsShadow(*engine, shadow,
                               "after crash #" + std::to_string(crashes));
      Failpoints::ArmEveryN("storage.commit", 7);
    }
  }
  Failpoints::Disarm("storage.commit");
  EXPECT_GT(crashes, 10) << "the soak must actually exercise crashes";

  // Final clean restart: everything acknowledged survives end-to-end.
  engine = std::make_unique<StorageEngine>();
  ASSERT_TRUE(engine->Open(dir_, options).ok());
  ExpectEngineEqualsShadow(*engine, shadow, "final restart");
}

}  // namespace
}  // namespace storage
}  // namespace cgq
