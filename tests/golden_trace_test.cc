#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/trace.h"
#include "core/engine.h"
#include "net/network_model.h"
#include "tpch/tpch.h"

namespace cgq {
namespace {

#ifndef CGQ_TRACING

TEST(GoldenTrace, SkippedWithoutTracing) {
  GTEST_SKIP() << "built with CGQ_TRACING=OFF";
}

#else  // CGQ_TRACING

// Golden span-tree tests: every TPC-H workload query, traced end to end
// under both backends, must produce the documented span tree, reconcile
// its ship spans exactly with ExecMetrics, and serialize byte-identically
// across same-seed runs.

Engine& SharedEngine() {
  static Engine* engine = [] {
    tpch::TpchConfig config;
    config.scale_factor = 0.002;
    auto catalog = tpch::BuildCatalog(config);
    CGQ_CHECK(catalog.ok());
    auto* e = new Engine(std::move(*catalog), NetworkModel::DefaultGeo(5));
    CGQ_CHECK(tpch::InstallUnrestrictedPolicies(&e->policies()).ok());
    CGQ_CHECK(tpch::GenerateData(e->catalog(), config, &e->store()).ok());
    e->set_tracing(true);
    e->set_threads(4);
    e->default_exec_options().threads = 4;
    return e;
  }();
  return *engine;
}

const CanonicalSpan* FindPath(const std::vector<CanonicalSpan>& spans,
                              const std::string& path) {
  for (const CanonicalSpan& s : spans) {
    if (s.path == path) return &s;
  }
  return nullptr;
}

size_t CountName(const std::vector<CanonicalSpan>& spans,
                 const std::string& name) {
  size_t n = 0;
  for (const CanonicalSpan& s : spans) n += s.name == name;
  return n;
}

// Args are stored pre-rendered as JSON ("42", "1.5"); parse them back so
// reconciliation against ExecMetrics is exact (%.17g round-trips).
int64_t IntArg(const CanonicalSpan& span, const std::string& key) {
  for (const auto& [k, v] : span.args) {
    if (k == key) return std::strtoll(v.c_str(), nullptr, 10);
  }
  ADD_FAILURE() << "span " << span.path << " lacks int arg " << key;
  return -1;
}

double DoubleArg(const CanonicalSpan& span, const std::string& key) {
  for (const auto& [k, v] : span.args) {
    if (k == key) return std::strtod(v.c_str(), nullptr);
  }
  ADD_FAILURE() << "span " << span.path << " lacks double arg " << key;
  return -1;
}

// (query number, exec mode) sweep over the whole TPC-H workload.
class GoldenTrace
    : public ::testing::TestWithParam<std::tuple<int, ExecMode>> {
 protected:
  // Runs the query traced and returns the result. One warm-up run first
  // so the process-wide implication cache is in steady state and repeat
  // dumps can be compared byte for byte.
  QueryResult RunTraced(int q, ExecMode mode) {
    Engine& engine = SharedEngine();
    engine.set_exec_mode(mode);
    std::string sql = *tpch::Query(q);
    CGQ_CHECK(engine.Run(sql).ok());
    auto result = engine.Run(sql);
    CGQ_CHECK(result.ok());
    return *result;
  }
};

TEST_P(GoldenTrace, SpanTreeHasTheDocumentedShape) {
  const auto& [q, mode] = GetParam();
  (void)RunTraced(q, mode);
  const TraceSession* trace = SharedEngine().last_trace();
  ASSERT_NE(trace, nullptr);
  std::vector<CanonicalSpan> spans = trace->CanonicalSpans();

  for (const char* path :
       {"query", "query/parse", "query/optimize", "query/optimize/bind",
        "query/optimize/explore", "query/optimize/annotate",
        "query/optimize/annotate/rule.AR1",
        "query/optimize/annotate/rule.AR2",
        "query/optimize/annotate/rule.AR3",
        "query/optimize/annotate/rule.AR4",
        "query/optimize/site_select", "query/optimize/compliance_check",
        "query/execute"}) {
    EXPECT_NE(FindPath(spans, path), nullptr) << "missing span " << path;
  }

  // Policy evaluation happens only inside annotation (the AR rules) or
  // the independent Definition-1 compliance checker, never elsewhere.
  for (const CanonicalSpan& s : spans) {
    if (s.name == "policy_eval") {
      bool under_annotate =
          s.path.rfind("query/optimize/annotate/", 0) == 0;
      bool under_check =
          s.path.rfind("query/optimize/compliance_check/", 0) == 0;
      EXPECT_TRUE(under_annotate || under_check) << s.path;
    }
  }

  const CanonicalSpan* root = FindPath(spans, "query");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->ts, 0);
  EXPECT_GE(trace->span_count(), 20u);

  // >= 95% of the root's (virtual) time is attributed to its children:
  // under tick renumbering a parent covers exactly its subtree, so the
  // direct children account for all but the root's own tick.
  int64_t child_dur = 0;
  for (const CanonicalSpan& s : spans) {
    if (s.depth == 1) child_dur += s.dur;
  }
  EXPECT_GE(static_cast<double>(child_dur),
            0.95 * static_cast<double>(root->dur));
}

TEST_P(GoldenTrace, ShipSpansReconcileExactlyWithExecMetrics) {
  const auto& [q, mode] = GetParam();
  QueryResult result = RunTraced(q, mode);
  std::vector<CanonicalSpan> spans =
      SharedEngine().last_trace()->CanonicalSpans();

  // One "ship" span per SHIP edge, each reconciling field by field.
  using EdgeKey = std::tuple<int64_t, int64_t, int64_t, int64_t, double,
                             double, int64_t>;
  std::vector<EdgeKey> traced;
  int64_t traced_rows = 0;
  double traced_bytes = 0;
  for (const CanonicalSpan& s : spans) {
    if (s.name != "ship") continue;
    traced.push_back({IntArg(s, "from"), IntArg(s, "to"),
                      IntArg(s, "batches"), IntArg(s, "rows"),
                      DoubleArg(s, "bytes"), DoubleArg(s, "network_ms"),
                      IntArg(s, "send_retries")});
    traced_rows += IntArg(s, "rows");
    traced_bytes += DoubleArg(s, "bytes");
  }
  std::vector<EdgeKey> expected;
  for (const ChannelStats& e : result.metrics.edges) {
    expected.push_back({e.from, e.to, e.batches, e.rows, e.bytes,
                        e.network_ms, e.send_retries});
  }
  std::sort(traced.begin(), traced.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(traced, expected);
  EXPECT_EQ(static_cast<int64_t>(traced.size()), result.metrics.ships);
  EXPECT_EQ(traced_rows, result.metrics.rows_shipped);
  EXPECT_EQ(traced_bytes, result.metrics.bytes_shipped);  // bit-exact

  if (mode == ExecMode::kFragment) {
    // Fragment spans are ordinal-ordered: span i describes fragment i.
    std::vector<const CanonicalSpan*> frags;
    for (const CanonicalSpan& s : spans) {
      if (s.name == "fragment") frags.push_back(&s);
    }
    ASSERT_EQ(frags.size(), result.metrics.fragments.size());
    for (size_t i = 0; i < frags.size(); ++i) {
      const FragmentMetrics& fm = result.metrics.fragments[i];
      EXPECT_EQ(frags[i]->ordinal, fm.id);
      EXPECT_EQ(IntArg(*frags[i], "site"),
                static_cast<int64_t>(fm.site));
      EXPECT_EQ(IntArg(*frags[i], "rows_out"), fm.rows_out);
      EXPECT_EQ(IntArg(*frags[i], "rows_scanned"), fm.rows_scanned);
      EXPECT_EQ(IntArg(*frags[i], "restarts"), fm.restarts);
    }
  } else {
    EXPECT_EQ(CountName(spans, "fragment"), 0u);
  }
}

TEST_P(GoldenTrace, RepeatRunsSerializeByteIdentically) {
  const auto& [q, mode] = GetParam();
  (void)RunTraced(q, mode);
  std::string first = SharedEngine().DumpTrace();
  (void)RunTraced(q, mode);
  std::string second = SharedEngine().DumpTrace();
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"name\":\"query\""), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    Workload, GoldenTrace,
    ::testing::Combine(::testing::ValuesIn(tpch::QueryNumbers()),
                       ::testing::Values(ExecMode::kRow,
                                         ExecMode::kFragment)),
    [](const ::testing::TestParamInfo<GoldenTrace::ParamType>& info) {
      return "Q" + std::to_string(std::get<0>(info.param)) + "_" +
             ExecModeToString(std::get<1>(info.param));
    });

#endif  // CGQ_TRACING

}  // namespace
}  // namespace cgq
