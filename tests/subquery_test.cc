#include <gtest/gtest.h>

#include "core/engine.h"

namespace cgq {
namespace {

// Two-site fixture with part/supply-style tables for decorrelation tests.
class SubqueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Catalog catalog;
    ASSERT_TRUE(catalog.mutable_locations().AddLocation("a").ok());
    ASSERT_TRUE(catalog.mutable_locations().AddLocation("b").ok());

    TableDef part;
    part.name = "part";
    part.schema = Schema({{"pk", DataType::kInt64},
                          {"pname", DataType::kString}});
    part.fragments = {TableFragment{0, 1.0}};
    part.stats.row_count = 4;
    ASSERT_TRUE(catalog.AddTable(part).ok());

    TableDef offer;
    offer.name = "offer";
    offer.schema = Schema({{"pk", DataType::kInt64},
                           {"vendor", DataType::kString},
                           {"cost", DataType::kInt64}});
    offer.fragments = {TableFragment{1, 1.0}};
    offer.stats.row_count = 8;
    ASSERT_TRUE(catalog.AddTable(offer).ok());

    engine_ = std::make_unique<Engine>(std::move(catalog),
                                       NetworkModel::DefaultGeo(2));
    for (const char* t : {"part", "offer"}) {
      ASSERT_TRUE(engine_
                      ->AddPolicy(t[0] == 'p' ? "a" : "b",
                                  std::string("ship * from ") + t + " to *")
                      .ok());
    }
    engine_->store().Put(0, "part",
                         {{Value::Int64(1), Value::String("bolt")},
                          {Value::Int64(2), Value::String("nut")},
                          {Value::Int64(3), Value::String("gear")},
                          {Value::Int64(4), Value::String("cog")}});
    engine_->store().Put(
        1, "offer",
        {{Value::Int64(1), Value::String("v1"), Value::Int64(10)},
         {Value::Int64(1), Value::String("v2"), Value::Int64(7)},
         {Value::Int64(1), Value::String("v3"), Value::Int64(7)},
         {Value::Int64(2), Value::String("v1"), Value::Int64(5)},
         {Value::Int64(2), Value::String("v2"), Value::Int64(9)},
         {Value::Int64(3), Value::String("v3"), Value::Int64(2)},
         // pk 9 has no part; pk 4 has no offer.
         {Value::Int64(9), Value::String("v9"), Value::Int64(1)}});
  }

  QueryResult Run(const std::string& sql) {
    auto r = engine_->Run(sql);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status();
    return r.ok() ? *r : QueryResult{};
  }

  std::unique_ptr<Engine> engine_;
};

TEST_F(SubqueryTest, UncorrelatedInBecomesSemiJoin) {
  // Parts with at least one offer; duplicates on the inner side must not
  // duplicate outer rows.
  QueryResult r = Run(
      "SELECT p.pname FROM part p WHERE p.pk IN "
      "(SELECT o.pk FROM offer o) ORDER BY pname");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0].str(), "bolt");
  EXPECT_EQ(r.rows[1][0].str(), "gear");
  EXPECT_EQ(r.rows[2][0].str(), "nut");
}

TEST_F(SubqueryTest, InWithInnerPredicate) {
  QueryResult r = Run(
      "SELECT p.pname FROM part p WHERE p.pk IN "
      "(SELECT o.pk FROM offer o WHERE o.cost < 6) ORDER BY pname");
  ASSERT_EQ(r.rows.size(), 2u);  // nut (5), gear (2)
  EXPECT_EQ(r.rows[0][0].str(), "gear");
  EXPECT_EQ(r.rows[1][0].str(), "nut");
}

TEST_F(SubqueryTest, CorrelatedScalarMin) {
  // The TPC-H Q2 shape: cheapest offer per part, with ties.
  QueryResult r = Run(
      "SELECT p.pname, o.vendor, o.cost FROM part p, offer o "
      "WHERE p.pk = o.pk AND o.cost = "
      "(SELECT MIN(o2.cost) FROM offer o2 WHERE o2.pk = p.pk) "
      "ORDER BY pname, vendor");
  // bolt: min 7 (v2, v3 tie) -> 2 rows; gear: v3@2; nut: v1@5.
  ASSERT_EQ(r.rows.size(), 4u);
  EXPECT_EQ(r.rows[0][0].str(), "bolt");
  EXPECT_EQ(r.rows[0][1].str(), "v2");
  EXPECT_EQ(r.rows[0][2].int64(), 7);
  EXPECT_EQ(r.rows[1][1].str(), "v3");
  EXPECT_EQ(r.rows[2][0].str(), "gear");
  EXPECT_EQ(r.rows[2][2].int64(), 2);
  EXPECT_EQ(r.rows[3][0].str(), "nut");
  EXPECT_EQ(r.rows[3][2].int64(), 5);
}

TEST_F(SubqueryTest, UncorrelatedScalar) {
  QueryResult r = Run(
      "SELECT o.vendor FROM offer o WHERE o.cost = "
      "(SELECT MIN(o2.cost) FROM offer o2)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].str(), "v9");  // cost 1
}

TEST_F(SubqueryTest, RewritesAreCompliantPlans) {
  auto plan = engine_->Optimize(
      "SELECT p.pname FROM part p WHERE p.pk IN (SELECT o.pk FROM offer o)");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(plan->compliant);
  // The rewrite is an ordinary join over a dedup aggregate.
  std::string text = PlanToString(*plan->plan, nullptr);
  EXPECT_NE(text.find("Aggregate"), std::string::npos) << text;
  EXPECT_NE(text.find("Join"), std::string::npos) << text;
}

TEST_F(SubqueryTest, PoliciesGovernSubqueryShipping) {
  // Restrict offers: only aggregated cost leaves b. The scalar-MIN rewrite
  // aggregates at b, so the query stays legal; the raw semi-join column pk
  // is also allowed via its own expression.
  engine_->policies().Clear();
  ASSERT_TRUE(engine_->AddPolicy("a", "ship * from part to *").ok());
  ASSERT_TRUE(engine_->AddPolicy(
                         "b",
                         "ship cost as aggregates min from offer to a "
                         "group by pk")
                  .ok());
  auto plan = engine_->Optimize(
      "SELECT p.pname FROM part p WHERE p.pk = "
      "(SELECT MIN(o2.cost) FROM offer o2 WHERE o2.pk = p.pk)");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(plan->compliant);

  // The IN semi-join is also fine: its dedup is a grouping by pk, and pk
  // is a grouping attribute of the aggregate expression (implicitly
  // shippable), so Γ_pk(offer) may leave b.
  auto semi = engine_->Optimize(
      "SELECT p.pname FROM part p WHERE p.pk IN (SELECT o.pk FROM offer o)");
  ASSERT_TRUE(semi.ok()) << semi.status();
  EXPECT_TRUE(semi->compliant);

  // Selecting the raw cost, however, has no compliant route to a and no
  // site where both sides can meet once part is pinned home too.
  engine_->policies().Clear();
  ASSERT_TRUE(engine_->AddPolicy(
                         "b",
                         "ship cost as aggregates min from offer to a "
                         "group by pk")
                  .ok());
  auto raw = engine_->Optimize(
      "SELECT o.cost FROM part p, offer o WHERE p.pk = o.pk");
  ASSERT_FALSE(raw.ok());
  EXPECT_TRUE(raw.status().IsNonCompliant());
}

TEST_F(SubqueryTest, CorrelatedExistsIsExactSemiJoin) {
  QueryResult r = Run(
      "SELECT p.pname FROM part p WHERE EXISTS "
      "(SELECT o.pk FROM offer o WHERE o.pk = p.pk) ORDER BY pname");
  ASSERT_EQ(r.rows.size(), 3u);  // cog has no offer; no duplicates
  EXPECT_EQ(r.rows[0][0].str(), "bolt");
  EXPECT_EQ(r.rows[1][0].str(), "gear");
  EXPECT_EQ(r.rows[2][0].str(), "nut");
}

TEST_F(SubqueryTest, ExistsWithInnerFilter) {
  QueryResult r = Run(
      "SELECT p.pname FROM part p WHERE EXISTS "
      "(SELECT o.pk FROM offer o WHERE o.pk = p.pk AND o.cost > 8) "
      "ORDER BY pname");
  ASSERT_EQ(r.rows.size(), 2u);  // bolt (10), nut (9)
}

TEST_F(SubqueryTest, ExistsCombinedWithAggregation) {
  QueryResult r = Run(
      "SELECT COUNT(*) AS n FROM part p WHERE EXISTS "
      "(SELECT o.pk FROM offer o WHERE o.pk = p.pk)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].int64(), 3);
}

TEST_F(SubqueryTest, UncorrelatedExistsRejected) {
  auto r = engine_->Run(
      "SELECT p.pname FROM part p WHERE EXISTS "
      "(SELECT o.pk FROM offer o)");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnsupported());
}

TEST_F(SubqueryTest, UnsupportedShapesAreRejectedCleanly) {
  auto not_in = engine_->Run(
      "SELECT p.pname FROM part p WHERE p.pk NOT IN "
      "(SELECT o.pk FROM offer o)");
  EXPECT_FALSE(not_in.ok());
  auto correlated_in = engine_->Run(
      "SELECT p.pname FROM part p WHERE p.pk IN "
      "(SELECT o.pk FROM offer o WHERE o.cost > p.pk)");
  EXPECT_FALSE(correlated_in.ok());
  EXPECT_TRUE(correlated_in.status().IsUnsupported());
  auto lt_scalar = engine_->Run(
      "SELECT p.pname FROM part p WHERE p.pk < "
      "(SELECT MIN(o.cost) FROM offer o)");
  EXPECT_FALSE(lt_scalar.ok());
  auto two_cols = engine_->Run(
      "SELECT p.pname FROM part p WHERE p.pk IN "
      "(SELECT o.pk, o.cost FROM offer o)");
  EXPECT_FALSE(two_cols.ok());
}

}  // namespace
}  // namespace cgq
