#include <gtest/gtest.h>

#include "core/engine.h"
#include "optimizer/cardinality.h"
#include "optimizer/memo.h"
#include "plan/binder.h"
#include "plan/builder.h"
#include "sql/parser.h"

namespace cgq {
namespace {

// --- Memo exploration -----------------------------------------------------

class MemoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* l : {"a", "b", "c", "d"}) {
      ASSERT_TRUE(catalog_.mutable_locations().AddLocation(l).ok());
    }
    int i = 0;
    for (const char* name : {"t1", "t2", "t3", "t4"}) {
      TableDef t;
      t.name = name;
      t.schema = Schema({{"k", DataType::kInt64}, {"v", DataType::kInt64}});
      t.fragments = {TableFragment{static_cast<LocationId>(i++), 1.0}};
      t.stats.row_count = 100 * i;
      ASSERT_TRUE(catalog_.AddTable(t).ok());
    }
  }

  // Explores the chain join t1-t2-t3[-t4] and returns the memo.
  std::unique_ptr<Memo> Explore(const std::string& sql,
                                PlannerContext* ctx, int* root_group) {
    auto ast = ParseQuery(sql);
    EXPECT_TRUE(ast.ok());
    auto bound = BindQuery(*ast, ctx);
    EXPECT_TRUE(bound.ok()) << bound.status();
    auto plan = BuildLogicalPlan(*bound, ctx);
    EXPECT_TRUE(plan.ok());
    estimator_ = std::make_unique<CardinalityEstimator>(ctx);
    auto memo = std::make_unique<Memo>(ctx, estimator_.get());
    *root_group = memo->InsertTree(*(*plan).root);
    memo->Explore();
    return memo;
  }

  Catalog catalog_;
  std::unique_ptr<CardinalityEstimator> estimator_;
};

TEST_F(MemoTest, CommutativityDoublesJoinGroup) {
  PlannerContext ctx(&catalog_);
  int root;
  auto memo = Explore(
      "SELECT t1.v FROM t1, t2 WHERE t1.k = t2.k", &ctx, &root);
  // Find the join group: it must contain (at least) both child orders.
  bool found = false;
  for (const Group& g : memo->groups()) {
    int joins = 0;
    for (int e : g.mexprs) {
      joins += memo->mexpr(e).payload->kind() == PlanKind::kJoin ? 1 : 0;
    }
    if (joins > 0) {
      EXPECT_GE(joins, 2);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(MemoTest, AssociativityEnumeratesAllOrders) {
  PlannerContext ctx(&catalog_);
  int root;
  auto memo = Explore(
      "SELECT t1.v FROM t1, t2, t3 "
      "WHERE t1.k = t2.k AND t2.k = t3.k",
      &ctx, &root);
  // Chain with transitive keys: 2-subset join groups {12, 23} appear (13
  // would be a cross product and is skipped), the 3-set group holds many
  // orders.
  int two_set_join_groups = 0;
  int top_join_exprs = 0;
  for (const Group& g : memo->groups()) {
    bool has_join = false;
    for (int e : g.mexprs) {
      has_join |= memo->mexpr(e).payload->kind() == PlanKind::kJoin;
    }
    if (!has_join) continue;
    int rels = __builtin_popcount(g.rel_set);
    if (rels == 2) ++two_set_join_groups;
    if (rels == 3) {
      for (int e : g.mexprs) top_join_exprs += 1;
    }
  }
  EXPECT_GE(two_set_join_groups, 2);
  // 3 relations: at least left-deep x2 sides x commute alternatives.
  EXPECT_GE(top_join_exprs, 4);
}

TEST_F(MemoTest, DeduplicationIsStable) {
  PlannerContext ctx(&catalog_);
  int root;
  auto memo = Explore(
      "SELECT t1.v FROM t1, t2, t3, t4 "
      "WHERE t1.k = t2.k AND t2.k = t3.k AND t3.k = t4.k",
      &ctx, &root);
  size_t exprs_after = memo->num_exprs();
  // Re-exploration must be a no-op (fixpoint reached).
  memo->Explore();
  EXPECT_EQ(memo->num_exprs(), exprs_after);
  // 4-relation chain: the join space is bounded (no duplicate groups).
  EXPECT_LT(memo->num_groups(), 60u);
}

TEST_F(MemoTest, InsertTreeDeduplicatesIdenticalSubtrees) {
  PlannerContext ctx(&catalog_);
  int root;
  auto memo = Explore("SELECT t1.v FROM t1, t2 WHERE t1.k = t2.k", &ctx,
                      &root);
  size_t groups = memo->num_groups();
  // Re-inserting the same payloads must not add anything.
  const MExpr& root_expr = memo->mexpr(memo->group(root).mexprs[0]);
  auto payload = std::make_shared<PlanNode>(*root_expr.payload);
  int g = memo->InsertExpr(payload, root_expr.child_groups);
  EXPECT_EQ(g, root);
  EXPECT_EQ(memo->num_groups(), groups);
}

// --- Eager aggregation correctness -----------------------------------------

// Orders at A, items at B (1-3 per order), customers at C. The policy only
// lets items leave B in aggregated form, so the compliant plan must use
// the eager-aggregation rewrite with the groupby-count correction for
// SUM(o.price) — whose exactness we check against hand-computed values.
class EagerAggTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Catalog catalog;
    ASSERT_TRUE(catalog.mutable_locations().AddLocation("a").ok());
    ASSERT_TRUE(catalog.mutable_locations().AddLocation("b").ok());
    ASSERT_TRUE(catalog.mutable_locations().AddLocation("c").ok());

    TableDef orders;
    orders.name = "orders";
    orders.schema = Schema({{"okey", DataType::kInt64},
                            {"ckey", DataType::kInt64},
                            {"price", DataType::kInt64}});
    orders.fragments = {TableFragment{0, 1.0}};
    orders.stats.row_count = 3;
    ASSERT_TRUE(catalog.AddTable(orders).ok());

    TableDef items;
    items.name = "items";
    items.schema = Schema({{"okey", DataType::kInt64},
                           {"qty", DataType::kInt64}});
    items.fragments = {TableFragment{1, 1.0}};
    items.stats.row_count = 6;
    ASSERT_TRUE(catalog.AddTable(items).ok());

    TableDef customers;
    customers.name = "customers";
    customers.schema = Schema({{"ckey", DataType::kInt64},
                               {"name", DataType::kString}});
    customers.fragments = {TableFragment{2, 1.0}};
    customers.stats.row_count = 2;
    ASSERT_TRUE(catalog.AddTable(customers).ok());

    engine_ = std::make_unique<Engine>(std::move(catalog),
                                       NetworkModel::DefaultGeo(3));
    // Orders and customers may move between a and c but not to b, so the
    // only way to use items data is the aggregate route out of b.
    ASSERT_TRUE(engine_->AddPolicy("a", "ship * from orders to a, c").ok());
    ASSERT_TRUE(
        engine_->AddPolicy("c", "ship * from customers to a, c").ok());
    // Items may only leave B as per-order aggregates.
    ASSERT_TRUE(engine_
                    ->AddPolicy("b",
                                "ship qty as aggregates sum, min, max, count "
                                "from items to a, c group by okey")
                    .ok());

    engine_->store().Put(0, "orders",
                         {{Value::Int64(1), Value::Int64(1), Value::Int64(10)},
                          {Value::Int64(2), Value::Int64(1), Value::Int64(20)},
                          {Value::Int64(3), Value::Int64(2), Value::Int64(30)}});
    engine_->store().Put(1, "items",
                         {{Value::Int64(1), Value::Int64(1)},
                          {Value::Int64(1), Value::Int64(2)},
                          {Value::Int64(2), Value::Int64(5)},
                          {Value::Int64(3), Value::Int64(1)},
                          {Value::Int64(3), Value::Int64(1)},
                          {Value::Int64(3), Value::Int64(1)}});
    engine_->store().Put(2, "customers",
                         {{Value::Int64(1), Value::String("ann")},
                          {Value::Int64(2), Value::String("bob")}});
  }

  static bool HasPartialAgg(const PlanNode& n) {
    if (n.kind() == PlanKind::kAggregate && n.is_partial_agg) return true;
    for (const auto& c : n.children()) {
      if (HasPartialAgg(*c)) return true;
    }
    return false;
  }

  std::unique_ptr<Engine> engine_;
};

TEST_F(EagerAggTest, CountCorrectedPushdownIsExact) {
  const char* sql =
      "SELECT c.name, SUM(o.price) AS sp, SUM(i.qty) AS sq, "
      "MIN(i.qty) AS mn, COUNT(i.qty) AS cnt "
      "FROM customers c, orders o, items i "
      "WHERE c.ckey = o.ckey AND o.okey = i.okey "
      "GROUP BY c.name ORDER BY name";
  auto plan = engine_->Optimize(sql);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(plan->compliant);
  EXPECT_TRUE(HasPartialAgg(*plan->plan))
      << PlanToString(*plan->plan, &engine_->catalog().locations());

  auto result = engine_->Run(sql);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 2u);
  // ann: rows (o1,i1),(o1,i2),(o2,i3):
  //   SUM(price)=10+10+20=40, SUM(qty)=1+2+5=8, MIN=1, COUNT=3.
  EXPECT_EQ(result->rows[0][0].str(), "ann");
  EXPECT_EQ(result->rows[0][1].int64(), 40);
  EXPECT_EQ(result->rows[0][2].int64(), 8);
  EXPECT_EQ(result->rows[0][3].int64(), 1);
  EXPECT_EQ(result->rows[0][4].int64(), 3);
  // bob: rows (o3 x 3 items): SUM(price)=90, SUM(qty)=3, MIN=1, COUNT=3.
  EXPECT_EQ(result->rows[1][0].str(), "bob");
  EXPECT_EQ(result->rows[1][1].int64(), 90);
  EXPECT_EQ(result->rows[1][2].int64(), 3);
  EXPECT_EQ(result->rows[1][3].int64(), 1);
  EXPECT_EQ(result->rows[1][4].int64(), 3);
}

TEST_F(EagerAggTest, AvgBlocksPushdownAndQueryIsRejected) {
  // AVG is not decomposable; with items locked to aggregate-only egress,
  // no compliant plan can exist.
  auto r = engine_->Optimize(
      "SELECT c.name, AVG(i.qty) FROM customers c, orders o, items i "
      "WHERE c.ckey = o.ckey AND o.okey = i.okey GROUP BY c.name");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNonCompliant());
}

TEST_F(EagerAggTest, DisallowedAggregateFnRejected) {
  // The policy does not allow shipping raw qty, and a non-aggregate query
  // cannot use the aggregate route.
  auto r = engine_->Optimize(
      "SELECT i.qty FROM items i, orders o WHERE i.okey = o.okey");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNonCompliant());
}

TEST_F(EagerAggTest, GroupingBeyondPolicyRejected) {
  // Grouping items by qty itself is not in G_e = {okey}.
  auto r = engine_->Optimize(
      "SELECT i.qty, SUM(o.price) FROM items i, orders o "
      "WHERE i.okey = o.okey GROUP BY i.qty");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNonCompliant());
}

TEST_F(EagerAggTest, MatchesUnrestrictedBaseline) {
  // The same query under unrestricted policies (direct plan) must produce
  // identical results — the rewrite changed the plan, not the answer.
  const char* sql =
      "SELECT c.name, SUM(o.price) AS sp, SUM(i.qty) AS sq "
      "FROM customers c, orders o, items i "
      "WHERE c.ckey = o.ckey AND o.okey = i.okey "
      "GROUP BY c.name ORDER BY name";
  auto restricted = engine_->Run(sql);
  ASSERT_TRUE(restricted.ok());

  Engine free(Catalog(engine_->catalog()), NetworkModel::DefaultGeo(3));
  for (const char* loc : {"a", "b", "c"}) {
    for (const char* t : {"orders", "items", "customers"}) {
      (void)free.AddPolicy(loc, std::string("ship * from ") + t + " to *");
    }
  }
  free.store() = engine_->store();
  auto baseline = free.Run(sql);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  ASSERT_EQ(restricted->rows.size(), baseline->rows.size());
  for (size_t i = 0; i < restricted->rows.size(); ++i) {
    for (size_t j = 0; j < restricted->rows[i].size(); ++j) {
      EXPECT_TRUE(
          restricted->rows[i][j].Equals(baseline->rows[i][j]) ||
          restricted->rows[i][j].StructurallyEquals(baseline->rows[i][j]))
          << i << "," << j;
    }
  }
}

}  // namespace
}  // namespace cgq
