#include <gtest/gtest.h>

#include <limits>

#include "common/rng.h"
#include "core/site_selector.h"
#include "net/network_model.h"

namespace cgq {
namespace {

PlanNodePtr Scan(LocationId loc, double rows, double width) {
  auto s = std::make_shared<PlanNode>(PlanKind::kScan);
  s->table = "t" + std::to_string(loc);
  s->scan_location = loc;
  s->exec_trait = LocationSet::Single(loc);
  s->est_rows = rows;
  s->est_row_bytes = width;
  return s;
}

PlanNodePtr Node(PlanKind kind, std::vector<PlanNodePtr> children,
                 LocationSet exec, double rows, double width) {
  auto n = std::make_shared<PlanNode>(kind);
  n->children() = std::move(children);
  n->exec_trait = exec;
  n->est_rows = rows;
  n->est_row_bytes = width;
  return n;
}

// Total ship cost of a located tree under the sum objective.
double TreeCost(const PlanNode& n, const NetworkModel& net) {
  double c = 0;
  for (const PlanNodePtr& ch : n.children()) {
    const PlanNode* src = ch.get();
    LocationId from = src->location, to = n.location;
    if (src->kind() == PlanKind::kShip) {
      // Our own inserted ships: look through.
      from = src->child(0)->location;
      c += TreeCost(*src->child(0), net);
      c += net.Cost(from, to, src->child(0)->EstBytes());
      continue;
    }
    c += TreeCost(*src, net);
    c += net.Cost(from, to, src->EstBytes());
  }
  return c;
}

// Exhaustive optimal placement cost (sum objective) by assigning every
// non-scan node any location in its exec trait.
double BruteForce(const PlanNode& n, const NetworkModel& net,
                  LocationId parent_loc, bool is_root) {
  // Returns min over own placements of (subtree cost + ship to parent).
  double best = std::numeric_limits<double>::infinity();
  std::vector<LocationId> candidates;
  if (n.kind() == PlanKind::kScan) {
    candidates = {n.scan_location};
  } else {
    candidates = n.exec_trait.ToVector();
  }
  for (LocationId l : candidates) {
    double c = 0;
    for (const PlanNodePtr& ch : n.children()) {
      c += BruteForce(*ch, net, l, false);
    }
    if (!is_root) c += net.Cost(l, parent_loc, n.EstBytes());
    best = std::min(best, c);
  }
  return best;
}

class PlacementProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlacementProperty, DpMatchesBruteForce) {
  Rng rng(GetParam());
  const size_t kLocations = 4;
  NetworkModel net = NetworkModel::DefaultGeo(kLocations);

  // Random 3-scan bushy tree with random traits.
  auto random_set = [&] {
    LocationSet s;
    for (LocationId l = 0; l < kLocations; ++l) {
      if (rng.Bernoulli(0.6)) s.Add(l);
    }
    if (s.empty()) s.Add(static_cast<LocationId>(rng.Uniform(0, 3)));
    return s;
  };

  auto s1 = Scan(static_cast<LocationId>(rng.Uniform(0, 3)),
                 rng.Uniform(10, 2000), 50);
  auto s2 = Scan(static_cast<LocationId>(rng.Uniform(0, 3)),
                 rng.Uniform(10, 2000), 50);
  auto s3 = Scan(static_cast<LocationId>(rng.Uniform(0, 3)),
                 rng.Uniform(10, 2000), 50);
  auto join1 = Node(PlanKind::kJoin, {s1, s2}, random_set(),
                    rng.Uniform(10, 500), 80);
  auto join2 = Node(PlanKind::kJoin, {join1, s3}, random_set(),
                    rng.Uniform(10, 300), 100);
  auto agg = Node(PlanKind::kAggregate, {join2}, random_set(),
                  rng.Uniform(1, 50), 40);

  double brute = BruteForce(*agg, net, 0, /*is_root=*/true);

  SiteSelector selector(&net);
  auto placed = selector.Place(ClonePlan(*agg));
  ASSERT_TRUE(placed.ok());
  EXPECT_NEAR(placed->comm_cost_ms, brute, 1e-6);
  // The reported cost must equal the cost of the materialized tree.
  EXPECT_NEAR(TreeCost(*placed->root, net), placed->comm_cost_ms, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacementProperty,
                         ::testing::Range<uint64_t>(1, 26));

// Brute force for the response-time (max) objective.
double BruteForceMax(const PlanNode& n, const NetworkModel& net,
                     LocationId parent_loc, bool is_root) {
  double best = std::numeric_limits<double>::infinity();
  std::vector<LocationId> candidates;
  if (n.kind() == PlanKind::kScan) {
    candidates = {n.scan_location};
  } else {
    candidates = n.exec_trait.ToVector();
  }
  for (LocationId l : candidates) {
    double c = 0;
    for (const PlanNodePtr& ch : n.children()) {
      c = std::max(c, BruteForceMax(*ch, net, l, false));
    }
    if (!is_root) c += net.Cost(l, parent_loc, n.EstBytes());
    best = std::min(best, c);
  }
  return best;
}

class ResponseTimeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ResponseTimeProperty, DpMatchesBruteForce) {
  Rng rng(GetParam() * 7919);
  const size_t kLocations = 4;
  NetworkModel net = NetworkModel::DefaultGeo(kLocations);
  auto random_set = [&] {
    LocationSet s;
    for (LocationId l = 0; l < kLocations; ++l) {
      if (rng.Bernoulli(0.6)) s.Add(l);
    }
    if (s.empty()) s.Add(static_cast<LocationId>(rng.Uniform(0, 3)));
    return s;
  };
  auto s1 = Scan(static_cast<LocationId>(rng.Uniform(0, 3)),
                 rng.Uniform(10, 2000), 50);
  auto s2 = Scan(static_cast<LocationId>(rng.Uniform(0, 3)),
                 rng.Uniform(10, 2000), 50);
  auto s3 = Scan(static_cast<LocationId>(rng.Uniform(0, 3)),
                 rng.Uniform(10, 2000), 50);
  auto join1 = Node(PlanKind::kJoin, {s1, s2}, random_set(),
                    rng.Uniform(10, 500), 80);
  auto join2 = Node(PlanKind::kJoin, {join1, s3}, random_set(),
                    rng.Uniform(10, 300), 100);

  double brute = BruteForceMax(*join2, net, 0, /*is_root=*/true);
  SiteSelector selector(&net, SiteSelector::Objective::kResponseTime);
  auto placed = selector.Place(ClonePlan(*join2));
  ASSERT_TRUE(placed.ok());
  // Note: the max objective decomposes per child (minimizing each input's
  // completion time independently minimizes the max), so the DP is exact.
  EXPECT_NEAR(placed->comm_cost_ms, brute, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResponseTimeProperty,
                         ::testing::Range<uint64_t>(1, 16));

TEST(SiteObjectiveTest, ResponseTimeUsesMax) {
  // Two children ship to the root in parallel: response time = max,
  // total cost = sum.
  NetworkModel net(3, 10.0, 0.0);  // pure latency
  auto s1 = Scan(0, 100, 10);
  auto s2 = Scan(1, 100, 10);
  auto join = Node(PlanKind::kJoin, {s1, s2}, LocationSet::Single(2), 10, 10);

  SiteSelector total(&net, SiteSelector::Objective::kTotalCost);
  SiteSelector response(&net, SiteSelector::Objective::kResponseTime);
  auto a = total.Place(ClonePlan(*join));
  auto b = response.Place(ClonePlan(*join));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->comm_cost_ms, 20.0);  // two transfers, sequential
  EXPECT_DOUBLE_EQ(b->comm_cost_ms, 10.0);  // parallel
}

TEST(SiteObjectiveTest, ObjectivesMayPickDifferentSites) {
  // Site 1 minimizes the max (two medium transfers), site 0 minimizes the
  // sum (one large transfer avoided).
  std::vector<std::vector<double>> alpha(3, std::vector<double>(3, 0));
  std::vector<std::vector<double>> beta(3, std::vector<double>(3, 0));
  // Transfers to 0: b costs 8. Transfers to 1: a costs 5, b costs 5.
  alpha[1][0] = 8;   // b -> 0
  alpha[0][1] = 5;   // a -> 1
  alpha[1][1] = 0;
  alpha[0][0] = 0;
  beta[1][0] = beta[0][1] = 0;
  // Make any use of site 2 expensive.
  alpha[0][2] = alpha[1][2] = alpha[2][0] = alpha[2][1] = 100;
  NetworkModel net(std::move(alpha), std::move(beta));

  auto sa = Scan(0, 10, 10);
  auto sb = Scan(1, 10, 10);
  // Join of a@0 and b@1, may run at 0 or 1:
  //  at 0: ship b (8): sum 8, max 8.
  //  at 1: ship a (5): sum 5, max 5.
  // Add a second b-side input to create the sum/max split:
  auto sb2 = Scan(1, 10, 10);
  auto join1 = Node(PlanKind::kJoin, {sa, sb},
                    LocationSet::Single(0).Union(LocationSet::Single(1)),
                    10, 10);
  auto join2 = Node(PlanKind::kJoin, {join1, sb2},
                    LocationSet::Single(0).Union(LocationSet::Single(1)),
                    10, 10);
  // at 0: join1@0 (ship b: 8) + ship b2 (8): sum 16, max 8.
  // at 1: join1@1 (ship a: 5) + b2 local:    sum 5,  max 5.
  // Both prefer site 1 here; flip costs so max prefers 0:
  //   (kept simple: just assert both objectives give optimal *their* cost)
  SiteSelector total(&net, SiteSelector::Objective::kTotalCost);
  SiteSelector response(&net, SiteSelector::Objective::kResponseTime);
  auto a = total.Place(ClonePlan(*join2));
  auto b = response.Place(ClonePlan(*join2));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_LE(b->comm_cost_ms, a->comm_cost_ms);
  EXPECT_DOUBLE_EQ(a->comm_cost_ms, 5.0);
  EXPECT_DOUBLE_EQ(b->comm_cost_ms, 5.0);
}

}  // namespace
}  // namespace cgq
