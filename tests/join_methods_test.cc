#include <gtest/gtest.h>

#include <algorithm>

#include "core/engine.h"
#include "tpch/tpch.h"
#include "exec/executor.h"

namespace cgq {
namespace {

// All physical join methods must produce identical results; the optimizer
// labels each join with its chosen method.
class JoinMethodsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_.scale_factor = 0.002;
    catalog_ = std::make_unique<Catalog>(*tpch::BuildCatalog(config_));
    policies_ = std::make_unique<PolicyCatalog>(catalog_.get());
    EXPECT_TRUE(tpch::InstallUnrestrictedPolicies(policies_.get()).ok());
    net_ = std::make_unique<NetworkModel>(NetworkModel::DefaultGeo(5));
    store_ = std::make_unique<TableStore>();
    EXPECT_TRUE(tpch::GenerateData(*catalog_, config_, store_.get()).ok());
  }

  std::vector<std::string> Canon(const QueryResult& r) {
    std::vector<std::string> rows;
    for (const Row& row : r.rows) {
      std::string s;
      for (const Value& v : row) {
        if (v.is_double()) {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%.4f|", v.dbl());
          s += buf;
        } else {
          s += v.ToString() + "|";
        }
      }
      rows.push_back(std::move(s));
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  }

  QueryResult RunWith(const std::string& sql, bool sort_merge) {
    OptimizerOptions opts;
    opts.prefer_sort_merge_join = sort_merge;
    QueryOptimizer optimizer(catalog_.get(), policies_.get(), net_.get(),
                             opts);
    auto plan = optimizer.Optimize(sql);
    EXPECT_TRUE(plan.ok()) << plan.status();
    Executor executor(store_.get(), net_.get());
    auto r = executor.Execute(*plan);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? *r : QueryResult{};
  }

  static void CollectMethods(const PlanNode& n,
                             std::vector<JoinMethod>* out) {
    if (n.kind() == PlanKind::kJoin) out->push_back(n.join_method);
    for (const auto& c : n.children()) CollectMethods(*c, out);
  }

  tpch::TpchConfig config_;
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<PolicyCatalog> policies_;
  std::unique_ptr<NetworkModel> net_;
  std::unique_ptr<TableStore> store_;
};

TEST_F(JoinMethodsTest, HashAndSortMergeAgree) {
  for (int q : {3, 5, 10, 12, 14}) {
    std::string sql = *tpch::Query(q);
    QueryResult hash = RunWith(sql, /*sort_merge=*/false);
    QueryResult merge = RunWith(sql, /*sort_merge=*/true);
    EXPECT_EQ(Canon(hash), Canon(merge)) << "Q" << q;
  }
}

TEST_F(JoinMethodsTest, OptimizerLabelsEquiJoinsHashByDefault) {
  OptimizerOptions opts;
  QueryOptimizer optimizer(catalog_.get(), policies_.get(), net_.get(),
                           opts);
  auto plan = optimizer.Optimize(*tpch::Query(5));
  ASSERT_TRUE(plan.ok());
  std::vector<JoinMethod> methods;
  CollectMethods(*plan->plan, &methods);
  ASSERT_FALSE(methods.empty());
  for (JoinMethod m : methods) EXPECT_EQ(m, JoinMethod::kHash);
}

TEST_F(JoinMethodsTest, SortMergePreferenceIsHonored) {
  OptimizerOptions opts;
  opts.prefer_sort_merge_join = true;
  QueryOptimizer optimizer(catalog_.get(), policies_.get(), net_.get(),
                           opts);
  auto plan = optimizer.Optimize(*tpch::Query(3));
  ASSERT_TRUE(plan.ok());
  std::vector<JoinMethod> methods;
  CollectMethods(*plan->plan, &methods);
  ASSERT_FALSE(methods.empty());
  for (JoinMethod m : methods) EXPECT_EQ(m, JoinMethod::kSortMerge);
  std::string text = PlanToString(*plan->plan, nullptr);
  EXPECT_NE(text.find("Join(merge)"), std::string::npos);
}

TEST_F(JoinMethodsTest, CrossJoinFallsBackToNestedLoop) {
  Catalog catalog;
  (void)*catalog.mutable_locations().AddLocation("z");
  for (const char* name : {"t1", "t2"}) {
    TableDef t;
    t.name = name;
    t.schema = Schema({{"a", DataType::kInt64}});
    t.fragments = {TableFragment{0, 1.0}};
    t.stats.row_count = 3;
    (void)catalog.AddTable(t);
  }
  Engine engine(std::move(catalog), NetworkModel::DefaultGeo(1));
  engine.store().Put(0, "t1",
                     {{Value::Int64(1)}, {Value::Int64(2)}});
  engine.store().Put(0, "t2", {{Value::Int64(7)}, {Value::Int64(8)}});
  auto plan = engine.Optimize("SELECT t1.a, t2.a AS b FROM t1, t2");
  ASSERT_TRUE(plan.ok()) << plan.status();
  std::vector<JoinMethod> methods;
  CollectMethods(*plan->plan, &methods);
  ASSERT_EQ(methods.size(), 1u);
  EXPECT_EQ(methods[0], JoinMethod::kNestedLoop);
  auto r = engine.Run("SELECT t1.a, t2.a AS b FROM t1, t2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 4u);  // cross product
}

}  // namespace
}  // namespace cgq
