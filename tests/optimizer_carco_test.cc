#include <gtest/gtest.h>

#include "core/compliance_checker.h"
#include "core/optimizer.h"
#include "net/network_model.h"

namespace cgq {
namespace {

constexpr const char* kQueryEx =
    "SELECT c.name, SUM(o.totprice) AS tot, SUM(s.quantity) AS qty "
    "FROM customer AS c, orders AS o, supply AS s "
    "WHERE c.custkey = o.custkey AND o.ordkey = s.ordkey "
    "GROUP BY c.name";

// The motivating CarCo scenario of Section 2: Customer@N, Orders@E,
// Supply@A, with policies P_N, P_E, P_A.
class CarCoOptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* l : {"n", "e", "a"}) {
      ASSERT_TRUE(catalog_.mutable_locations().AddLocation(l).ok());
    }

    TableDef customer;
    customer.name = "customer";
    customer.schema = Schema({{"custkey", DataType::kInt64},
                              {"name", DataType::kString},
                              {"acctbal", DataType::kDouble},
                              {"mktseg", DataType::kString},
                              {"region", DataType::kString}});
    customer.fragments = {TableFragment{0, 1.0}};
    customer.stats.row_count = 1000;
    customer.stats.columns["custkey"] = {1000, 1, 1000, 8};
    customer.stats.columns["name"] = {1000, {}, {}, 18};
    ASSERT_TRUE(catalog_.AddTable(customer).ok());

    TableDef orders;
    orders.name = "orders";
    orders.schema = Schema({{"custkey", DataType::kInt64},
                            {"ordkey", DataType::kInt64},
                            {"totprice", DataType::kDouble}});
    orders.fragments = {TableFragment{1, 1.0}};
    orders.stats.row_count = 10000;
    orders.stats.columns["custkey"] = {1000, 1, 1000, 8};
    orders.stats.columns["ordkey"] = {10000, 1, 10000, 8};
    ASSERT_TRUE(catalog_.AddTable(orders).ok());

    TableDef supply;
    supply.name = "supply";
    supply.schema = Schema({{"ordkey", DataType::kInt64},
                            {"quantity", DataType::kInt64},
                            {"extprice", DataType::kDouble}});
    supply.fragments = {TableFragment{2, 1.0}};
    supply.stats.row_count = 5000;
    supply.stats.columns["ordkey"] = {5000, 1, 10000, 8};
    ASSERT_TRUE(catalog_.AddTable(supply).ok());

    policies_ = std::make_unique<PolicyCatalog>(&catalog_);
    // P_N: customer may leave only with acctbal suppressed.
    Add("n", "ship custkey, name, mktseg, region from customer to *");
    // P_E: non-price order data may go to N; only aggregated order data to A.
    Add("e", "ship custkey, ordkey from orders to n");
    Add("e",
        "ship totprice as aggregates sum, avg from orders to a "
        "group by custkey, ordkey");
    // P_A: only per-order aggregates of supply may go to E.
    Add("a",
        "ship quantity, extprice as aggregates sum from supply to e "
        "group by ordkey");

    net_ = std::make_unique<NetworkModel>(
        NetworkModel::DefaultGeo(catalog_.locations().num_locations()));
  }

  void Add(const std::string& loc, const std::string& text) {
    Status s = policies_->AddPolicyText(loc, text);
    ASSERT_TRUE(s.ok()) << s;
  }

  Result<OptimizedQuery> Run(bool compliant, const std::string& sql) {
    OptimizerOptions opts;
    opts.compliant = compliant;
    QueryOptimizer optimizer(&catalog_, policies_.get(), net_.get(), opts);
    return optimizer.Optimize(sql);
  }

  static int CountKind(const PlanNode& node, PlanKind kind) {
    int n = node.kind() == kind ? 1 : 0;
    for (const PlanNodePtr& c : node.children()) n += CountKind(*c, kind);
    return n;
  }

  static bool HasPartialAggAt(const PlanNode& node, LocationId loc) {
    if (node.kind() == PlanKind::kAggregate && node.is_partial_agg &&
        node.location == loc) {
      return true;
    }
    for (const PlanNodePtr& c : node.children()) {
      if (HasPartialAggAt(*c, loc)) return true;
    }
    return false;
  }

  Catalog catalog_;
  std::unique_ptr<PolicyCatalog> policies_;
  std::unique_ptr<NetworkModel> net_;
};

TEST_F(CarCoOptimizerTest, CompliantOptimizerFindsCompliantPlan) {
  auto r = Run(/*compliant=*/true, kQueryEx);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->compliant) << PlanToString(*r->plan, &catalog_.locations());
  EXPECT_TRUE(r->violations.empty());
}

TEST_F(CarCoOptimizerTest, CompliantPlanMatchesFigure1b) {
  auto r = Run(true, kQueryEx);
  ASSERT_TRUE(r.ok()) << r.status();
  // Supply must be pre-aggregated per order at A before shipping (the
  // paper's Γ(o, sum(q)) masking operator).
  EXPECT_TRUE(HasPartialAggAt(*r->plan, 2))
      << PlanToString(*r->plan, &catalog_.locations());
  // Both joins execute in Europe.
  std::vector<const PlanNode*> stack = {r->plan.get()};
  while (!stack.empty()) {
    const PlanNode* n = stack.back();
    stack.pop_back();
    if (n->kind() == PlanKind::kJoin) {
      EXPECT_EQ(n->location, 1u) << "join not in Europe";
    }
    for (const PlanNodePtr& c : n->children()) stack.push_back(c.get());
  }
  // Results are produced in Europe.
  EXPECT_EQ(r->result_location, 1u);
}

TEST_F(CarCoOptimizerTest, TraditionalOptimizerViolatesPolicies) {
  auto r = Run(/*compliant=*/false, kQueryEx);
  ASSERT_TRUE(r.ok()) << r.status();
  // Shipping raw Supply out of Asia (or raw Orders to Asia) violates
  // P_A/P_E; the cost-only baseline does not know that.
  EXPECT_FALSE(r->compliant)
      << PlanToString(*r->plan, &catalog_.locations());
  EXPECT_FALSE(r->violations.empty());
}

TEST_F(CarCoOptimizerTest, QueryRejectedWithoutSupplyPolicy) {
  // Drop P_A: supply can no longer leave Asia in any form, and orders may
  // not be shipped to Asia raw; only the aggregate path remains... which
  // also dies because SUM(quantity) cannot leave A. Expect rejection.
  policies_->Clear();
  Add("n", "ship custkey, name, mktseg, region from customer to *");
  Add("e", "ship custkey, ordkey from orders to n");
  auto r = Run(true, kQueryEx);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNonCompliant()) << r.status();
}

TEST_F(CarCoOptimizerTest, TheoremOneHoldsAcrossQueries) {
  // Every plan emitted by the compliance-based optimizer passes the
  // independent Definition-1 checker.
  const char* queries[] = {
      kQueryEx,
      "SELECT c.name FROM customer c WHERE c.mktseg = 'commercial'",
      "SELECT o.ordkey, o.custkey FROM orders o, customer c "
      "WHERE o.custkey = c.custkey",
      "SELECT c.name, SUM(s.extprice) FROM customer c, orders o, supply s "
      "WHERE c.custkey = o.custkey AND o.ordkey = s.ordkey GROUP BY c.name",
  };
  for (const char* q : queries) {
    auto r = Run(true, q);
    if (!r.ok()) {
      EXPECT_TRUE(r.status().IsNonCompliant()) << q << ": " << r.status();
      continue;
    }
    EXPECT_TRUE(r->compliant) << q << "\n"
                              << PlanToString(*r->plan,
                                              &catalog_.locations());
  }
}

TEST_F(CarCoOptimizerTest, SingleTableLocalQueryStaysHome) {
  auto r = Run(true, "SELECT acctbal FROM customer WHERE custkey = 7");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->compliant);
  EXPECT_EQ(r->result_location, 0u);  // N: acctbal may not leave
  EXPECT_EQ(CountKind(*r->plan, PlanKind::kShip), 0);
}

TEST_F(CarCoOptimizerTest, StatsArePopulated) {
  auto r = Run(true, kQueryEx);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GT(r->stats.memo_groups, 5u);
  EXPECT_GT(r->stats.memo_exprs, r->stats.memo_groups);
  EXPECT_GT(r->stats.policy.evaluations, 0);
  EXPECT_GE(r->stats.total_ms, 0.0);
}

TEST_F(CarCoOptimizerTest, RequiredResultLocationHonored) {
  OptimizerOptions opts;
  opts.compliant = true;
  opts.required_result = LocationSet::Single(1);  // Europe
  QueryOptimizer optimizer(&catalog_, policies_.get(), net_.get(), opts);
  auto r = optimizer.Optimize(kQueryEx);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->result_location, 1u);
}

}  // namespace
}  // namespace cgq
