#include <gtest/gtest.h>

#include "core/policy_lint.h"

namespace cgq {
namespace {

class PolicyLintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* l : {"n", "e"}) {
      ASSERT_TRUE(catalog_.mutable_locations().AddLocation(l).ok());
    }
    TableDef t;
    t.name = "cust";
    t.schema = Schema({{"id", DataType::kInt64},
                       {"name", DataType::kString},
                       {"secret", DataType::kString}});
    t.fragments = {TableFragment{0, 1.0}};
    t.stats.row_count = 10;
    ASSERT_TRUE(catalog_.AddTable(t).ok());
    TableDef o;
    o.name = "ord";
    o.schema = Schema({{"id", DataType::kInt64}});
    o.fragments = {TableFragment{1, 1.0}};
    o.stats.row_count = 10;
    ASSERT_TRUE(catalog_.AddTable(o).ok());
    policies_ = std::make_unique<PolicyCatalog>(&catalog_);
  }

  bool HasFinding(const std::vector<PolicyLintFinding>& findings,
                  const std::string& needle) {
    for (const PolicyLintFinding& f : findings) {
      if (f.ToString().find(needle) != std::string::npos) return true;
    }
    return false;
  }

  Catalog catalog_;
  std::unique_ptr<PolicyCatalog> policies_;
};

TEST_F(PolicyLintTest, ReportsStuckAttributes) {
  ASSERT_TRUE(policies_->AddPolicyText("n", "ship id, name from cust to e")
                  .ok());
  ASSERT_TRUE(policies_->AddPolicyText("e", "ship * from ord to *").ok());
  auto findings = LintPolicies(catalog_, *policies_);
  EXPECT_TRUE(HasFinding(findings, "secret")) << findings.size();
  EXPECT_TRUE(HasFinding(findings, "can never leave"));
}

TEST_F(PolicyLintTest, ReportsPinnedTables) {
  // No cust expressions at all.
  ASSERT_TRUE(policies_->AddPolicyText("e", "ship * from ord to *").ok());
  auto findings = LintPolicies(catalog_, *policies_);
  EXPECT_TRUE(HasFinding(findings, "pinned here"));
}

TEST_F(PolicyLintTest, ReportsMisplacedExpression) {
  // ord is stored at e, not n: the expression is dead.
  ASSERT_TRUE(policies_->AddPolicyText("n", "ship id from ord to *").ok());
  auto findings = LintPolicies(catalog_, *policies_);
  EXPECT_TRUE(HasFinding(findings, "never be consulted"));
}

TEST_F(PolicyLintTest, ReportsNoOpSelfTarget) {
  ASSERT_TRUE(policies_->AddPolicyText("n", "ship id from cust to n").ok());
  auto findings = LintPolicies(catalog_, *policies_);
  EXPECT_TRUE(HasFinding(findings, "no-op"));
}

TEST_F(PolicyLintTest, ReportsSubsumedExpression) {
  ASSERT_TRUE(policies_->AddPolicyText("n", "ship id, name from cust to *")
                  .ok());
  ASSERT_TRUE(policies_
                  ->AddPolicyText("n", "ship id from cust to e "
                                       "where id > 10")
                  .ok());
  auto findings = LintPolicies(catalog_, *policies_);
  EXPECT_TRUE(HasFinding(findings, "subsumed"));
}

TEST_F(PolicyLintTest, NoFalseSubsumptionAcrossConditions) {
  // Conditions point in different directions: neither subsumes.
  ASSERT_TRUE(policies_
                  ->AddPolicyText("n",
                                  "ship id from cust to e where id > 10")
                  .ok());
  ASSERT_TRUE(policies_
                  ->AddPolicyText("n",
                                  "ship id from cust to e where id < 5")
                  .ok());
  auto findings = LintPolicies(catalog_, *policies_);
  EXPECT_FALSE(HasFinding(findings, "subsumed"));
}

TEST_F(PolicyLintTest, CleanCatalogOnlyStuckInfoForCoveredSetup) {
  ASSERT_TRUE(policies_->AddPolicyText("n", "ship * from cust to *").ok());
  ASSERT_TRUE(policies_->AddPolicyText("e", "ship * from ord to *").ok());
  auto findings = LintPolicies(catalog_, *policies_);
  for (const PolicyLintFinding& f : findings) {
    EXPECT_NE(f.severity, PolicyLintFinding::Severity::kWarning)
        << f.ToString();
  }
}

}  // namespace
}  // namespace cgq
