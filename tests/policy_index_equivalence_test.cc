// Randomized equivalence soak for the hierarchical policy index (ISSUE 9):
// generated catalogs (seeded, log-skewed sizes 10..10k over 5 and 20
// regions) × the 24-query workload (the 12 paper TPC-H queries + 12
// generated PK-FK join queries), asserting that the indexed and flat
// evaluation paths produce identical per-query compliance decisions,
// identical plan traits (exec/ship trait and site per operator), and
// identical rejected-query sets. Decision-identity at scale is the whole
// contract of the index — merges, bucket prunes, and the bucket memo must
// all be invisible.
//
// Runs at evaluator fan-out widths 1 and 4; the 4-wide variant doubles as
// the TSan target (ci.yml runs this test under the TSan filter).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "core/optimizer.h"
#include "net/network_model.h"
#include "tpch/tpch.h"
#include "workload/policy_generator.h"
#include "workload/query_generator.h"

namespace cgq {
namespace {

// Everything a caller can observe about one optimized query, plus the
// per-operator annotations that drive compliance (𝒮/ℰ traits, chosen
// sites). Two modes agreeing on this for every query of every catalog is
// the equivalence contract.
struct QueryVerdict {
  bool ok = false;
  StatusCode code = StatusCode::kOk;
  bool compliant = false;
  LocationId result_location = 0;
  double phase1_cost = 0;
  double comm_cost_ms = 0;
  std::vector<uint64_t> traits;  ///< pre-order plan walk

  bool operator==(const QueryVerdict&) const = default;
};

void CollectTraits(const PlanNode& n, std::vector<uint64_t>* out) {
  out->push_back(static_cast<uint64_t>(n.kind()));
  out->push_back(n.exec_trait.bits());
  out->push_back(n.ship_trait.bits());
  out->push_back(static_cast<uint64_t>(n.location));
  out->push_back(static_cast<uint64_t>(n.ship_to));
  out->push_back(n.children().size());
  for (const PlanNodePtr& c : n.children()) CollectTraits(*c, out);
}

QueryVerdict VerdictOf(const Result<OptimizedQuery>& r) {
  QueryVerdict v;
  v.ok = r.ok();
  v.code = r.status().code();
  if (r.ok()) {
    v.compliant = r->compliant;
    v.result_location = r->result_location;
    v.phase1_cost = r->phase1_cost;
    v.comm_cost_ms = r->comm_cost_ms;
    if (r->plan != nullptr) CollectTraits(*r->plan, &v.traits);
  }
  return v;
}

// One TPC-H deployment (catalog + network + 24-query workload), shared by
// every generated policy catalog over the same region count.
struct Deployment {
  Result<Catalog> catalog;
  NetworkModel net = NetworkModel::DefaultGeo(1);
  WorkloadProperties properties;
  std::vector<std::string> workload;

  explicit Deployment(size_t num_regions)
      : catalog(tpch::BuildCatalog([&] {
          tpch::TpchConfig config;
          config.scale_factor = 1;
          config.num_locations = num_regions;
          return config;
        }())),
        net(NetworkModel::DefaultGeo(num_regions)),
        properties(TpchWorkloadProperties()) {
    if (!catalog.ok()) return;
    for (int q : {1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 14, 19}) {
      auto sql = tpch::Query(q);
      if (sql.ok()) workload.push_back(*sql);  // size checked by RunSoak
    }
    QueryGeneratorConfig qconfig;
    qconfig.seed = 29;
    AdhocQueryGenerator qgen(&*catalog, &properties, qconfig);
    for (int i = 0; i < 12; ++i) workload.push_back(qgen.Next());
  }
};

// Log-skewed catalog size for soak iteration i of n: mostly small catalogs
// (cheap, many seeds) with a heavy tail reaching 10k at the last index.
size_t SizeFor(size_t i, size_t n) {
  double t = static_cast<double>(i) / static_cast<double>(n - 1);
  double s = 10.0 * std::pow(1000.0, t * t * t * t);
  return static_cast<size_t>(s);
}

void RunSoak(int threads, uint64_t seed_base, size_t num_catalogs) {
  Deployment small(5);
  Deployment large(20);
  ASSERT_TRUE(small.catalog.ok());
  ASSERT_TRUE(large.catalog.ok());
  ASSERT_EQ(small.workload.size(), 24u);
  ASSERT_EQ(large.workload.size(), 24u);

  size_t rejected = 0, total_absorbed = 0;
  for (size_t i = 0; i < num_catalogs; ++i) {
    SCOPED_TRACE("catalog " + std::to_string(i));
    Deployment& dep = (i % 2 == 0) ? small : large;
    const size_t regions = (i % 2 == 0) ? 5 : 20;

    PolicyGeneratorConfig pconfig;
    pconfig.template_name = "F";
    pconfig.count = SizeFor(i, num_catalogs);
    pconfig.seed = seed_base + i;
    pconfig.locations_per_expr = 1 + i % 4;
    pconfig.hub = static_cast<LocationId>(regions - 1);

    PolicyCatalog flat(&*dep.catalog, PolicyIndexMode::kFlat);
    PolicyCatalog hier(&*dep.catalog, PolicyIndexMode::kHierarchical);
    for (PolicyCatalog* cat : {&flat, &hier}) {
      PolicyExpressionGenerator pgen(&*dep.catalog, &dep.properties, pconfig);
      ASSERT_TRUE(pgen.InstallInto(cat).ok());
    }
    // Merging must never lose an installed expression.
    ASSERT_EQ(flat.TotalCount(), hier.TotalCount());
    total_absorbed += hier.Stats().absorbed;

    // Two passes: free placement (the optimizer may park the result
    // anywhere legal) and pinned placement (result forced to a rotating
    // location, which makes some queries outright non-compliant — the
    // rejected-set side of the contract).
    OptimizerOptions oopts;
    oopts.threads = threads;
    OptimizerOptions pinned = oopts;
    pinned.required_result =
        LocationSet::Single(static_cast<LocationId>(i % regions));
    for (const OptimizerOptions& opts : {oopts, pinned}) {
      QueryOptimizer flat_opt(&*dep.catalog, &flat, &dep.net, opts);
      QueryOptimizer hier_opt(&*dep.catalog, &hier, &dep.net, opts);

      size_t flat_rejected = 0, hier_rejected = 0;
      for (size_t q = 0; q < dep.workload.size(); ++q) {
        SCOPED_TRACE("query " + std::to_string(q));
        QueryVerdict f = VerdictOf(flat_opt.Optimize(dep.workload[q]));
        QueryVerdict h = VerdictOf(hier_opt.Optimize(dep.workload[q]));
        EXPECT_TRUE(f == h)
            << "flat ok=" << f.ok << " code=" << static_cast<int>(f.code)
            << " compliant=" << f.compliant << " at=" << f.result_location
            << " | hier ok=" << h.ok << " code=" << static_cast<int>(h.code)
            << " compliant=" << h.compliant << " at=" << h.result_location;
        flat_rejected += f.ok ? 0 : 1;
        hier_rejected += h.ok ? 0 : 1;
      }
      EXPECT_EQ(flat_rejected, hier_rejected);
      rejected += flat_rejected;
    }
  }
  // The soak must exercise both interesting regimes: some queries rejected
  // outright, and some policies merged by the hierarchical index.
  EXPECT_GT(rejected, 0u);
  EXPECT_GT(total_absorbed, 0u);
}

TEST(PolicyIndexEquivalence, SoakSequential) { RunSoak(1, 1000, 100); }

TEST(PolicyIndexEquivalence, SoakParallel4) { RunSoak(4, 2000, 100); }

}  // namespace
}  // namespace cgq
