#include "common/trace.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/engine.h"
#include "net/network_model.h"
#include "tpch/tpch.h"

namespace cgq {
namespace {

// Metrics are process-wide state: every test starts from zero (cells stay
// registered, so call-site caches remain valid across tests).
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { MetricsRegistry::ResetForTest(); }
  void TearDown() override { MetricsRegistry::ResetForTest(); }
};

std::map<std::string, int64_t> SnapshotMap() {
  std::map<std::string, int64_t> m;
  for (const auto& [name, value] : MetricsRegistry::Snapshot()) {
    m[name] = value;
  }
  return m;
}

// Nonzero entries of `after - before`.
std::map<std::string, int64_t> Delta(
    const std::map<std::string, int64_t>& before,
    const std::map<std::string, int64_t>& after) {
  std::map<std::string, int64_t> d;
  for (const auto& [name, value] : after) {
    auto it = before.find(name);
    int64_t prev = it == before.end() ? 0 : it->second;
    if (value != prev) d[name] = value - prev;
  }
  return d;
}

// --- MetricsRegistry --------------------------------------------------------

TEST_F(TraceTest, CountersAccumulateAndSnapshotSorts) {
  MetricsRegistry::Counter* c = MetricsRegistry::GetCounter("ztest.c");
  MetricsRegistry::GetCounter("atest.c")->Add(7);
  c->Add(3);
  c->Add(39);
  EXPECT_EQ(MetricsRegistry::Value("ztest.c"), 42);
  EXPECT_EQ(MetricsRegistry::Value("atest.c"), 7);
  EXPECT_EQ(MetricsRegistry::Value("never.registered"), 0);
  // Same name, same cell.
  EXPECT_EQ(MetricsRegistry::GetCounter("ztest.c"), c);

  auto snap = MetricsRegistry::Snapshot();
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].first, snap[i].first);
  }
}

TEST_F(TraceTest, GaugesHoldLastValue) {
  MetricsRegistry::Gauge* g = MetricsRegistry::GetGauge("test.gauge");
  g->Set(5);
  g->Set(2);
  EXPECT_EQ(MetricsRegistry::Value("test.gauge"), 2);
}

TEST_F(TraceTest, ResetZeroesButKeepsCellsRegistered) {
  MetricsRegistry::Counter* c = MetricsRegistry::GetCounter("test.reset");
  c->Add(9);
  MetricsRegistry::ResetForTest();
  EXPECT_EQ(c->Get(), 0);
  // The cached pointer stays usable — the failpoint-style contract that
  // lets call sites cache cells in function-local statics.
  c->Add(4);
  EXPECT_EQ(MetricsRegistry::Value("test.reset"), 4);
}

// --- TraceSession core ------------------------------------------------------

TEST_F(TraceTest, CanonicalSpansFormPreorderTree) {
  TraceSession s("q");
  int64_t root = s.BeginSpan("query", -1, -1, 0);
  int64_t opt = s.BeginSpan("optimize", root, -1, 0);
  s.AddSpanArg(opt, "memo_groups", static_cast<int64_t>(12));
  s.EndSpan(opt);
  int64_t exec = s.BeginSpan("execute", root, -1, 0);
  s.EndSpan(exec);
  s.EndSpan(root);

  std::vector<CanonicalSpan> spans = s.CanonicalSpans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].path, "query");
  EXPECT_EQ(spans[1].path, "query/optimize");
  EXPECT_EQ(spans[2].path, "query/execute");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[1].depth, 1);

  // Deterministic ticks: the root exactly covers its subtree, children
  // partition the interior.
  EXPECT_EQ(spans[0].ts, 0);
  EXPECT_EQ(spans[0].dur, 3);
  EXPECT_EQ(spans[1].ts, 1);
  EXPECT_EQ(spans[1].dur, 1);
  EXPECT_EQ(spans[2].ts, 2);
  EXPECT_EQ(spans[2].dur, 1);

  ASSERT_EQ(spans[1].args.size(), 1u);
  EXPECT_EQ(spans[1].args[0].first, "memo_groups");
  EXPECT_EQ(spans[1].args[0].second, "12");
}

TEST_F(TraceTest, SiblingsOrderByOrdinalNotCreationOrder) {
  TraceSession s("q");
  int64_t root = s.BeginSpan("root", -1, -1, 0);
  // Created in reverse of their ordinals, as racing workers might.
  s.EndSpan(s.BeginSpan("fragment", root, 2, 3));
  s.EndSpan(s.BeginSpan("fragment", root, 0, 1));
  s.EndSpan(s.BeginSpan("fragment", root, 1, 2));
  s.EndSpan(root);

  std::vector<CanonicalSpan> spans = s.CanonicalSpans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[1].ordinal, 0);
  EXPECT_EQ(spans[2].ordinal, 1);
  EXPECT_EQ(spans[3].ordinal, 2);
  EXPECT_EQ(spans[1].track, 1);
}

TEST_F(TraceTest, OpenSpansAreClosedAtDump) {
  TraceSession s("q");
  int64_t root = s.BeginSpan("root", -1, -1, 0);
  (void)s.BeginSpan("child", root, -1, 0);  // never ended
  std::vector<CanonicalSpan> spans = s.CanonicalSpans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_GE(spans[0].dur, 1);
  EXPECT_GE(spans[1].dur, 1);
}

TEST_F(TraceTest, ChromeJsonHasMetadataAndCompleteEvents) {
  TraceSession s("SELECT 1");
  int64_t root = s.BeginSpan("query", -1, -1, 0);
  s.AddSpanArg(root, "label", std::string("a\"b\\c\nd"));
  s.AddSpanArg(root, "bytes", 1547656.0);
  s.EndSpan(root);

  std::string json = s.ToChromeJson();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"query\""), std::string::npos);
  // Strings are escaped; doubles rendered to full precision (%.17g) so
  // traced bytes reconcile bit-for-bit with ExecMetrics.
  EXPECT_NE(json.find("a\\\"b\\\\c\\nd"), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":1547656"), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
}

#ifdef CGQ_TRACING

// --- RAII spans and thread context (compiled-in tracing only) ---------------

TEST_F(TraceTest, SpanWithoutContextRecordsNothing) {
  ASSERT_EQ(TraceSession::Current(), nullptr);
  TraceSpan span("orphan");
  EXPECT_FALSE(span.active());
  span.AddArg("k", static_cast<int64_t>(1));
  span.End();
}

TEST_F(TraceTest, ScopedContextInstallsAndRestores) {
  TraceSession s("q");
  {
    ScopedTraceContext ctx(&s);
    EXPECT_EQ(TraceSession::Current(), &s);
    EXPECT_EQ(TraceSession::CurrentSpanId(), -1);
    {
      TraceSpan outer("outer");
      EXPECT_TRUE(outer.active());
      EXPECT_EQ(TraceSession::CurrentSpanId(), outer.id());
      TraceSpan inner("inner");
      EXPECT_EQ(TraceSession::CurrentSpanId(), inner.id());
    }
    EXPECT_EQ(TraceSession::CurrentSpanId(), -1);
  }
  EXPECT_EQ(TraceSession::Current(), nullptr);

  std::vector<CanonicalSpan> spans = s.CanonicalSpans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[1].path, "outer/inner");
}

// A parent span on the driver thread, children on pool workers: workers
// re-install the context with an explicit ordinal and track, so the
// canonical tree is identical at every pool width.
std::string TracedFanOut(size_t width) {
  TraceSession s("fanout");
  ThreadPool pool(4);
  {
    ScopedTraceContext ctx(&s);
    TraceSpan parent("parallel_region");
    TraceSession* trace = TraceSession::Current();
    int64_t parent_id = TraceSession::CurrentSpanId();
    pool.ParallelFor(8, width, [&](size_t i) {
      ScopedTraceContext worker_ctx(trace, parent_id,
                                    static_cast<int>(i) + 1);
      TraceSpan item("item", static_cast<int>(i));
      item.AddArg("index", static_cast<int64_t>(i));
    });
  }
  return s.ToChromeJson();
}

TEST_F(TraceTest, SpanNestingIsByteStableAcrossPoolWidths) {
  std::string sequential = TracedFanOut(1);
  std::string parallel_a = TracedFanOut(4);
  std::string parallel_b = TracedFanOut(4);
  EXPECT_EQ(parallel_a, parallel_b);
  EXPECT_EQ(sequential, parallel_a);
  EXPECT_NE(parallel_a.find("\"name\":\"item\""), std::string::npos);
}

TEST_F(TraceTest, CounterMacroIsLiveWhenCompiledIn) {
  CGQ_COUNTER_ADD("trace_test.on_witness", 5);
  CGQ_COUNTER_ADD("trace_test.on_witness", 2);
  EXPECT_EQ(MetricsRegistry::Value("trace_test.on_witness"), 7);
  CGQ_GAUGE_SET("trace_test.on_gauge", 9);
  EXPECT_EQ(MetricsRegistry::Value("trace_test.on_gauge"), 9);
}

#else  // !CGQ_TRACING

// --- Zero-overhead witness (CGQ_TRACING=OFF build) --------------------------

// With tracing compiled out the macros expand to nothing: the metric is
// never registered, let alone bumped, and the RAII types are empty shells.
TEST_F(TraceTest, MacrosCompileOutCompletely) {
  CGQ_COUNTER_ADD("trace_test.off_witness", 5);
  CGQ_GAUGE_SET("trace_test.off_gauge", 9);
  EXPECT_EQ(MetricsRegistry::Value("trace_test.off_witness"), 0);
  for (const auto& [name, value] : MetricsRegistry::Snapshot()) {
    EXPECT_NE(name, "trace_test.off_witness");
    EXPECT_NE(name, "trace_test.off_gauge");
  }

  TraceSession s("q");
  {
    ScopedTraceContext ctx(&s);
    TraceSpan span("never_recorded");
    span.AddArg("k", static_cast<int64_t>(1));
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(s.span_count(), 0u);
  EXPECT_EQ(TraceSession::Current(), nullptr);
}

#endif  // CGQ_TRACING

// --- Seeded determinism soak ------------------------------------------------

std::unique_ptr<Engine> MakeTpchEngine(bool lossy) {
  tpch::TpchConfig config;
  config.scale_factor = 0.002;
  auto catalog = tpch::BuildCatalog(config);
  CGQ_CHECK(catalog.ok());
  auto engine = std::make_unique<Engine>(std::move(*catalog),
                                         NetworkModel::DefaultGeo(5));
  CGQ_CHECK(tpch::InstallUnrestrictedPolicies(&engine->policies()).ok());
  CGQ_CHECK(
      tpch::GenerateData(engine->catalog(), config, &engine->store()).ok());
  if (lossy) {
    engine->mutable_net().ApplyLossyProfile(/*drop_probability=*/0.05,
                                            /*extra_latency_ms=*/2.0);
  }
  engine->set_tracing(true);
  return engine;
}

// 192 measured runs: {Q3, Q10} x {healthy, lossy} x batch {1, 7, 1024} x
// {1, 4} threads x 4 fault seeds, each config executed twice. Within a
// config the two runs must agree on every process-wide counter delta and
// produce byte-identical trace dumps. One unmeasured warm-up run per
// config first, so the process-wide implication cache reaches steady
// state before deltas are compared.
TEST_F(TraceTest, CounterDeltasAndTracesDeterministicUnderSoak) {
  const int kQueries[] = {3, 10};
  const int kBatchSizes[] = {1, 7, 1024};
  const int kThreads[] = {1, 4};
  const uint64_t kSeeds[] = {11, 12, 13, 14};

  int measured_runs = 0;
  for (bool lossy : {false, true}) {
    std::unique_ptr<Engine> engine = MakeTpchEngine(lossy);
    engine->set_exec_mode(ExecMode::kFragment);
    for (int q : kQueries) {
      const std::string sql = *tpch::Query(q);
      for (int batch : kBatchSizes) {
        for (int threads : kThreads) {
          for (uint64_t seed : kSeeds) {
            engine->default_exec_options().batch_size = batch;
            engine->default_exec_options().threads = threads;
            engine->set_threads(threads);
            if (lossy) {
              engine->default_exec_options().retry.max_retries = 8;
              engine->default_exec_options().retry.fault_seed = seed;
            }
            SCOPED_TRACE("q=" + std::to_string(q) +
                         " lossy=" + std::to_string(lossy) +
                         " batch=" + std::to_string(batch) +
                         " threads=" + std::to_string(threads) +
                         " seed=" + std::to_string(seed));

            ASSERT_TRUE(engine->Run(sql).ok());  // warm-up

            auto before1 = SnapshotMap();
            ASSERT_TRUE(engine->Run(sql).ok());
            auto delta1 = Delta(before1, SnapshotMap());
            std::string trace1 = engine->DumpTrace();

            auto before2 = SnapshotMap();
            ASSERT_TRUE(engine->Run(sql).ok());
            auto delta2 = Delta(before2, SnapshotMap());
            std::string trace2 = engine->DumpTrace();

            EXPECT_EQ(delta1, delta2);
            EXPECT_EQ(trace1, trace2);
            measured_runs += 2;
          }
        }
      }
    }
  }
  EXPECT_EQ(measured_runs, 192);
}

}  // namespace
}  // namespace cgq
