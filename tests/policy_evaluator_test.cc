#include <gtest/gtest.h>

#include "core/policy.h"
#include "core/policy_evaluator.h"
#include "plan/binder.h"
#include "plan/builder.h"
#include "plan/summary.h"
#include "sql/parser.h"

namespace cgq {
namespace {

// Fixture replicating Table 1 of the paper: relation T(A..G) with policy
// expressions e1-e4 over locations l1-l4.
class Table1Test : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* l : {"l1", "l2", "l3", "l4"}) {
      ASSERT_TRUE(catalog_.mutable_locations().AddLocation(l).ok());
    }
    TableDef t;
    t.name = "t";
    std::vector<ColumnDef> cols;
    for (const char* c : {"a", "b", "c", "d", "e", "f", "g"}) {
      cols.push_back({c, DataType::kInt64});
    }
    t.schema = Schema(cols);
    t.fragments = {TableFragment{0, 1.0}};  // home: l1
    t.stats.row_count = 1000;
    ASSERT_TRUE(catalog_.AddTable(t).ok());

    policies_ = std::make_unique<PolicyCatalog>(&catalog_);
    ASSERT_OK(policies_->AddPolicyText("l1", "ship a, b, c from t to l2, l3"));
    ASSERT_OK(policies_->AddPolicyText(
        "l1", "ship a, b from t to l1, l2, l3, l4"));
    ASSERT_OK(policies_->AddPolicyText(
        "l1", "ship a, d from t to l1, l3 where b > 10"));
    ASSERT_OK(policies_->AddPolicyText(
        "l1",
        "ship f, g as aggregates sum, avg from t to l1, l2 group by e, c"));
    evaluator_ = std::make_unique<PolicyEvaluator>(&catalog_, policies_.get());
  }

  static void ASSERT_OK(const Status& s) { ASSERT_TRUE(s.ok()) << s; }

  LocationSet Eval(const std::string& sql) {
    auto ast = ParseQuery(sql);
    EXPECT_TRUE(ast.ok()) << ast.status();
    PlannerContext ctx(&catalog_);
    auto bound = BindQuery(*ast, &ctx);
    EXPECT_TRUE(bound.ok()) << bound.status();
    auto plan = BuildLogicalPlan(*bound, &ctx);
    EXPECT_TRUE(plan.ok()) << plan.status();
    QuerySummary summary = SummarizePlan(*plan->root);
    EXPECT_TRUE(summary.IsSingleDatabaseBlock());
    return evaluator_->Evaluate(summary, 0);
  }

  LocationSet Locs(std::initializer_list<LocationId> ids) {
    LocationSet s;
    for (LocationId id : ids) s.Add(id);
    return s;
  }

  Catalog catalog_;
  std::unique_ptr<PolicyCatalog> policies_;
  std::unique_ptr<PolicyEvaluator> evaluator_;
};

TEST_F(Table1Test, Query1SelectProject) {
  // q1 = Π_{A,C,D}(σ_{B>15}(T))  =>  { l3 }
  EXPECT_EQ(Eval("SELECT a, c, d FROM t WHERE b > 15"), Locs({2}));
}

TEST_F(Table1Test, Query2Aggregate) {
  // q2 = Γ_{C; SUM(F*(1-G))}(T)  =>  { l1, l2 }  (§5 running text)
  EXPECT_EQ(Eval("SELECT c, SUM(f * (1 - g)) FROM t GROUP BY c"),
            Locs({0, 1}));
}

TEST_F(Table1Test, ImplicationFailureDropsExpression) {
  // Without b > 10 provable, e3 does not apply: D gets no locations.
  EXPECT_EQ(Eval("SELECT a, d FROM t WHERE b > 5"), LocationSet());
}

TEST_F(Table1Test, PredicateAttributesAreDisclosed) {
  // Filtering on D (only shippable to l1, l3 with b > 10) restricts the
  // result even when D is not projected.
  EXPECT_EQ(Eval("SELECT a FROM t WHERE d = 4 AND b > 10"), Locs({0, 2}));
}

TEST_F(Table1Test, AggregateFnMustBeAllowed) {
  // MIN is not among e4's aggregate functions.
  EXPECT_EQ(Eval("SELECT c, MIN(f) FROM t GROUP BY c"), LocationSet());
  // SUM is.
  EXPECT_EQ(Eval("SELECT c, SUM(f) FROM t GROUP BY c"), Locs({0, 1}));
}

TEST_F(Table1Test, GroupingMustBeSubset) {
  // Grouping by D is not allowed by e4.
  EXPECT_EQ(Eval("SELECT d, SUM(f) FROM t GROUP BY d"), LocationSet());
  // Grouping by E and C simultaneously is.
  EXPECT_EQ(Eval("SELECT e, c, SUM(f) FROM t GROUP BY e, c"), Locs({0, 1}));
  // Global aggregation (empty G_q) qualifies as the empty subset.
  EXPECT_EQ(Eval("SELECT SUM(g) FROM t"), Locs({0, 1}));
}

TEST_F(Table1Test, NonAggregatedAggAttrsNotShippable) {
  // F is only shippable in aggregated form.
  EXPECT_EQ(Eval("SELECT f FROM t"), LocationSet());
}

TEST_F(Table1Test, BasicExpressionCoversAggregatedQuery) {
  // Case 2 of Algorithm 1: basic expressions are "less aggregated" than
  // the query, so SUM(A) inherits A's basic permissions ({l2,l3} ∪ all
  // from e1/e2); C additionally picks up {l1,l2} as a grouping attribute
  // of e4 (exactly as in Table 1's L_C column).
  EXPECT_EQ(Eval("SELECT c, SUM(a) FROM t GROUP BY c"), Locs({0, 1, 2}));
}

TEST_F(Table1Test, EtaCounterAdvances) {
  evaluator_->ResetStats();
  Eval("SELECT a, c, d FROM t WHERE b > 15");
  // e1, e2, e3 all reach line 4 for q1; e4 does not match output attrs.
  EXPECT_EQ(evaluator_->stats().eta, 3);
  EXPECT_EQ(evaluator_->stats().evaluations, 1);
}

// The Section 2 / §3.1 CarCo policies.
class CarCoPolicyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* l : {"n", "e", "a"}) {
      ASSERT_TRUE(catalog_.mutable_locations().AddLocation(l).ok());
    }
    TableDef c;
    c.name = "customer";
    c.schema = Schema({{"custkey", DataType::kInt64},
                       {"name", DataType::kString},
                       {"acctbal", DataType::kDouble},
                       {"mktseg", DataType::kString},
                       {"region", DataType::kString}});
    c.fragments = {TableFragment{0, 1.0}};
    c.stats.row_count = 1000;
    ASSERT_TRUE(catalog_.AddTable(c).ok());
    policies_ = std::make_unique<PolicyCatalog>(&catalog_);
    // Example 1 of §4.1.
    ASSERT_TRUE(policies_
                    ->AddPolicyText(
                        "n", "ship custkey, name from customer to a, e")
                    .ok());
    ASSERT_TRUE(policies_
                    ->AddPolicyText("n",
                                    "ship mktseg, region from customer to e "
                                    "where mktseg = 'commercial'")
                    .ok());
    evaluator_ = std::make_unique<PolicyEvaluator>(&catalog_, policies_.get());
  }

  LocationSet Eval(const std::string& sql) {
    auto ast = ParseQuery(sql);
    EXPECT_TRUE(ast.ok()) << ast.status();
    PlannerContext ctx(&catalog_);
    auto bound = BindQuery(*ast, &ctx);
    EXPECT_TRUE(bound.ok()) << bound.status();
    auto plan = BuildLogicalPlan(*bound, &ctx);
    EXPECT_TRUE(plan.ok()) << plan.status();
    return evaluator_->Evaluate(SummarizePlan(*plan->root), 0);
  }

  Catalog catalog_;
  std::unique_ptr<PolicyCatalog> policies_;
  std::unique_ptr<PolicyEvaluator> evaluator_;
};

TEST_F(CarCoPolicyTest, Example1NameOnly) {
  // Π_{c,n}(σ_{n LIKE 'A%'}(C)) may ship to Asia and Europe.
  LocationSet expected;
  expected.Add(1);  // e
  expected.Add(2);  // a
  EXPECT_EQ(Eval("SELECT custkey, name FROM customer WHERE name LIKE 'A%'"),
            expected);
}

TEST_F(CarCoPolicyTest, Example1RegionWithoutPredicate) {
  // Region without the commercial predicate: nowhere.
  EXPECT_EQ(Eval("SELECT custkey, name, region FROM customer "
                 "WHERE name LIKE 'A%'"),
            LocationSet());
}

TEST_F(CarCoPolicyTest, Example1RegionWithPredicate) {
  // With mktseg='commercial', region may ship to Europe only.
  LocationSet e_only;
  e_only.Add(1);
  EXPECT_EQ(Eval("SELECT custkey, name, region FROM customer "
                 "WHERE name LIKE 'A%' AND mktseg = 'commercial'"),
            e_only);
}

TEST_F(CarCoPolicyTest, AcctbalNeverLeaves) {
  EXPECT_EQ(Eval("SELECT custkey, acctbal FROM customer"), LocationSet());
}

}  // namespace
}  // namespace cgq
