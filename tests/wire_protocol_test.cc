// Unit tests of the deployment layer's wire protocol (src/net): frame
// round-trips of every type, rejection of truncated / oversized /
// corrupted frames with typed errors, the version-mismatch handshake
// refusal, and endianness-stable golden byte encodings that pin the
// on-wire format across platforms and releases.

#include "net/wire_protocol.h"

#include <cstdint>
#include <string>
#include <vector>

#include "exec/fragmenter.h"
#include "gtest/gtest.h"
#include "plan/plan_node.h"

namespace cgq {
namespace wire {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

const uint8_t* Data(const std::string& s) {
  return reinterpret_cast<const uint8_t*>(s.data());
}

Result<FrameHeader> Header(const std::string& frame) {
  return DecodeFrameHeader(Data(frame), frame.size());
}

TEST(WireFrame, GoldenHelloFrame) {
  std::string frame = EncodeFrame(FrameType::kHello, Hello().Encode());
  ASSERT_EQ(frame.size(), kHeaderSize + 2);
  // Header: magic "CGQW", version 1, type 1, len 2, FNV-1a of {01 00}.
  const std::vector<uint8_t> expected_prefix = {
      'C',  'G',  'Q',  'W',        // magic, little-endian 0x57514743
      0x01, 0x00,                   // version 1
      0x01, 0x00,                   // type kHello
      0x02, 0x00, 0x00, 0x00,       // payload length 2
  };
  std::vector<uint8_t> actual = Bytes(frame);
  for (size_t i = 0; i < expected_prefix.size(); ++i) {
    EXPECT_EQ(actual[i], expected_prefix[i]) << "byte " << i;
  }
  // Checksum bytes 12..19: FNV-1a over payload {0x01, 0x00}.
  const uint8_t payload[] = {0x01, 0x00};
  uint64_t sum = Fnv1a(payload, 2);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(actual[12 + i], static_cast<uint8_t>((sum >> (8 * i)) & 0xff));
  }
  // Payload itself.
  EXPECT_EQ(actual[20], 0x01);
  EXPECT_EQ(actual[21], 0x00);
}

TEST(WireFrame, GoldenValueEncodings) {
  Writer w;
  w.PutValue(Value::Null());
  w.PutValue(Value::Int64(-2));
  w.PutValue(Value::Double(1.5));
  w.PutValue(Value::String("ab"));
  const std::vector<uint8_t> expected = {
      0x00,                                            // NULL
      0x01, 0xfe, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,  // -2
      0xff,
      0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xf8,  // 1.5 = 0x3FF8...
      0x3f,
      0x03, 0x02, 0x00, 0x00, 0x00, 'a', 'b',          // "ab"
  };
  EXPECT_EQ(Bytes(w.buffer()), expected);
}

TEST(WireFrame, KnownFnv1aVector) {
  // FNV-1a("a") is a published test vector.
  const uint8_t a[] = {'a'};
  EXPECT_EQ(Fnv1a(a, 1), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a(nullptr, 0), 14695981039346656037ull);
}

TEST(WireFrame, HeaderRejectsBadMagic) {
  std::string frame = EncodeFrame(FrameType::kHello, Hello().Encode());
  frame[0] = 'X';
  auto h = Header(frame);
  ASSERT_FALSE(h.ok());
  EXPECT_TRUE(h.status().IsInvalidArgument());
}

TEST(WireFrame, HeaderRejectsTruncation) {
  std::string frame = EncodeFrame(FrameType::kHello, Hello().Encode());
  auto h = DecodeFrameHeader(Data(frame), kHeaderSize - 1);
  ASSERT_FALSE(h.ok());
  EXPECT_TRUE(h.status().IsInvalidArgument());
}

TEST(WireFrame, HeaderRejectsVersionMismatchAsUnsupported) {
  std::string frame = EncodeFrame(FrameType::kHello, Hello().Encode());
  frame[4] = 0x63;  // version 99
  frame[5] = 0x00;
  auto h = Header(frame);
  ASSERT_FALSE(h.ok());
  EXPECT_TRUE(h.status().IsUnsupported());
  EXPECT_NE(h.status().message().find("version mismatch"), std::string::npos);
}

TEST(WireFrame, HeaderRejectsOversizedPayload) {
  std::string frame = EncodeFrame(FrameType::kHello, Hello().Encode());
  uint32_t huge = kMaxPayloadBytes + 1;
  for (int i = 0; i < 4; ++i) {
    frame[8 + i] = static_cast<char>((huge >> (8 * i)) & 0xff);
  }
  auto h = Header(frame);
  ASSERT_FALSE(h.ok());
  EXPECT_TRUE(h.status().IsInvalidArgument());
  EXPECT_NE(h.status().message().find("oversized"), std::string::npos);
}

TEST(WireFrame, ChecksumMismatchRejected) {
  std::string payload = Hello().Encode();
  std::string frame = EncodeFrame(FrameType::kHello, payload);
  auto h = Header(frame);
  ASSERT_TRUE(h.ok());
  payload[0] ^= 0x40;  // flip a payload bit
  Status s = VerifyPayload(*h, Data(payload));
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("checksum"), std::string::npos);
}

TEST(WireFrame, TruncatedPayloadRejectedByReader) {
  InputBatch in;
  in.channel = 3;
  in.batch.layout = RowLayout({7, 9});
  in.batch.rows.push_back({Value::Int64(1), Value::String("x")});
  std::string payload = in.Encode();
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    auto r = InputBatch::Decode(payload.substr(0, cut));
    ASSERT_FALSE(r.ok()) << "prefix of " << cut << " bytes decoded";
    EXPECT_TRUE(r.status().IsInvalidArgument());
  }
}

TEST(WireRoundTrip, Hello) {
  auto h = Hello::Decode(Hello().Encode());
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->version, kVersion);
}

TEST(WireRoundTrip, HelloAck) {
  HelloAck ack;
  ack.locations = {0, 3, 4};
  auto r = HelloAck::Decode(ack.Encode());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->version, kVersion);
  EXPECT_EQ(r->locations, ack.locations);
}

TEST(WireRoundTrip, LoadTableAndAck) {
  LoadTable load;
  load.location = 2;
  load.table = "customer";
  load.replace = false;
  load.rows.push_back({Value::Int64(7), Value::Null(), Value::Double(0.25)});
  load.rows.push_back({Value::String("s"), Value::Int64(-1), Value::Null()});
  auto r = LoadTable::Decode(load.Encode());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->location, 2u);
  EXPECT_EQ(r->table, "customer");
  EXPECT_FALSE(r->replace);
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_TRUE(r->rows[0][0].StructurallyEquals(Value::Int64(7)));
  EXPECT_TRUE(r->rows[0][1].StructurallyEquals(Value::Null()));
  EXPECT_TRUE(r->rows[0][2].StructurallyEquals(Value::Double(0.25)));
  EXPECT_TRUE(r->rows[1][0].StructurallyEquals(Value::String("s")));

  LoadAck ack;
  ack.fragment_rows = 12345;
  auto a = LoadAck::Decode(ack.Encode());
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->fragment_rows, 12345);
}

TEST(WireRoundTrip, InputFramesAndOutputFrames) {
  InputBatch in;
  in.channel = 1;
  in.batch.layout = RowLayout({65536, 65537});
  in.batch.rows.push_back({Value::Int64(10), Value::String("hi")});
  auto rin = InputBatch::Decode(in.Encode());
  ASSERT_TRUE(rin.ok());
  EXPECT_EQ(rin->channel, 1);
  EXPECT_EQ(rin->batch.layout.attrs(), in.batch.layout.attrs());
  ASSERT_EQ(rin->batch.rows.size(), 1u);
  EXPECT_TRUE(rin->batch.rows[0][1].StructurallyEquals(Value::String("hi")));

  InputEnd end;
  end.channel = 4;
  auto rend = InputEnd::Decode(end.Encode());
  ASSERT_TRUE(rend.ok());
  EXPECT_EQ(rend->channel, 4);

  OutputBatch out;
  out.batch = in.batch;
  auto rout = OutputBatch::Decode(out.Encode());
  ASSERT_TRUE(rout.ok());
  EXPECT_EQ(rout->batch.rows.size(), 1u);

  OutputEnd oend;
  oend.rows_out = 42;
  oend.rows_scanned = 1000;
  auto roend = OutputEnd::Decode(oend.Encode());
  ASSERT_TRUE(roend.ok());
  EXPECT_EQ(roend->rows_out, 42);
  EXPECT_EQ(roend->rows_scanned, 1000);
}

TEST(WireRoundTrip, ErrorCarriesTypedStatus) {
  ErrorMsg err = ErrorMsg::FromStatus(Status::Unavailable("link down"));
  auto r = ErrorMsg::Decode(err.Encode());
  ASSERT_TRUE(r.ok());
  Status s = r->ToStatus();
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_EQ(s.message(), "link down");

  // Out-of-range codes degrade to kInternal instead of trusting the peer.
  ErrorMsg bogus;
  bogus.code = 999;
  bogus.message = "???";
  EXPECT_TRUE(bogus.ToStatus().IsInternal());
  ErrorMsg okish;
  okish.code = 0;
  EXPECT_TRUE(okish.ToStatus().IsInternal());
}

TEST(WireRoundTrip, ExpressionTree) {
  // (c.acctbal > 100 AND c.mktsegment IN ('A', 'B')) with a NOT thrown in.
  ExprPtr col = Expr::BoundColumn(65536, "c", "acctbal", "customer",
                                  DataType::kDouble);
  ExprPtr cmp = Expr::Binary(ExprOp::kGt, col, Expr::Literal(Value::Int64(100)));
  ExprPtr seg = Expr::BoundColumn(65537, "c", "mktsegment", "customer",
                                  DataType::kString);
  ExprPtr in = Expr::InList(
      seg, {Value::String("A"), Value::String("B")});
  ExprPtr pred =
      Expr::Binary(ExprOp::kAnd, cmp, Expr::Unary(ExprOp::kNot, in));

  Writer w;
  w.PutExpr(*pred);
  Reader r(w.buffer());
  auto decoded = r.ReadExpr();
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_TRUE((*decoded)->Equals(*pred));
}

TEST(WireRoundTrip, PlanFragmentWithShipLeaf) {
  // Scan(customer@l1) -> Filter -> SHIP(l1 -> l0) feeding
  // Join at l0 against Scan(orders@l0): serialize the *top* fragment,
  // whose subtree contains the SHIP as a childless input leaf.
  auto scan_c = std::make_shared<PlanNode>(PlanKind::kScan);
  scan_c->table = "customer";
  scan_c->scan_location = 1;
  scan_c->outputs = {{65536, "custkey", DataType::kInt64},
                     {65537, "name", DataType::kString}};
  auto ship = std::make_shared<PlanNode>(PlanKind::kShip);
  ship->ship_from = 1;
  ship->ship_to = 0;
  ship->ship_trait = LocationSet(0b11);
  ship->outputs = scan_c->outputs;
  ship->children().push_back(scan_c);

  auto scan_o = std::make_shared<PlanNode>(PlanKind::kScan);
  scan_o->table = "orders";
  scan_o->scan_location = 0;
  scan_o->outputs = {{131072, "custkey", DataType::kInt64},
                     {131073, "total", DataType::kDouble}};

  auto join = std::make_shared<PlanNode>(PlanKind::kJoin);
  join->join_method = JoinMethod::kHash;
  join->conjuncts.push_back(Expr::Binary(
      ExprOp::kEq,
      Expr::BoundColumn(65536, "c", "custkey", "customer", DataType::kInt64),
      Expr::BoundColumn(131072, "o", "custkey", "orders",
                        DataType::kInt64)));
  join->exec_trait = LocationSet(0b1);
  join->location = 0;
  join->outputs = {{65537, "name", DataType::kString},
                   {131073, "total", DataType::kDouble}};
  join->children().push_back(ship);
  join->children().push_back(scan_o);

  std::unordered_map<const PlanNode*, int> channel_of_ship;
  channel_of_ship[ship.get()] = 0;

  StartFragment start;
  start.fragment_id = 1;
  start.site = 0;
  start.batch_size = 512;
  start.root = join;
  auto payload = start.Encode(channel_of_ship);
  ASSERT_TRUE(payload.ok());

  auto decoded = StartFragment::Decode(*payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->fragment_id, 1);
  EXPECT_EQ(decoded->site, 0u);
  EXPECT_EQ(decoded->batch_size, 512u);
  ASSERT_EQ(decoded->input_channels.size(), 1u);
  EXPECT_EQ(decoded->input_channels[0], 0);

  const PlanNode& droot = *decoded->root;
  ASSERT_EQ(droot.kind(), PlanKind::kJoin);
  EXPECT_EQ(droot.exec_trait.bits(), join->exec_trait.bits());
  ASSERT_EQ(droot.children().size(), 2u);
  const PlanNode& dship = *droot.child(0);
  ASSERT_EQ(dship.kind(), PlanKind::kShip);
  // The SHIP leaf decodes childless, carrying the channel id and its
  // producer's output layout.
  EXPECT_TRUE(dship.children().empty());
  EXPECT_EQ(dship.fragment_ordinal, 0);
  EXPECT_EQ(dship.ship_from, 1u);
  EXPECT_EQ(dship.ship_to, 0u);
  EXPECT_EQ(dship.ship_trait.bits(), ship->ship_trait.bits());
  ASSERT_EQ(dship.outputs.size(), 2u);
  EXPECT_EQ(dship.outputs[0].id, 65536u);
  EXPECT_EQ(dship.outputs[1].name, "name");
  EXPECT_EQ(dship.outputs[1].type, DataType::kString);
  ASSERT_EQ(droot.conjuncts.size(), 1u);
  EXPECT_TRUE(droot.conjuncts[0]->Equals(*join->conjuncts[0]));
  const PlanNode& dscan = *droot.child(1);
  EXPECT_EQ(dscan.kind(), PlanKind::kScan);
  EXPECT_EQ(dscan.table, "orders");
  EXPECT_EQ(dscan.scan_location, 0u);

  // The decoded placement facts feed the receiving-end compliance
  // re-check (fragment #1 runs at l0, inside its execution trait).
  EXPECT_TRUE(
      CheckFragmentPlacement(decoded->fragment_id, decoded->site,
                             droot.exec_trait, nullptr)
          .ok());
  // A tampered site outside the trait is refused.
  EXPECT_FALSE(
      CheckFragmentPlacement(decoded->fragment_id, /*site=*/3,
                             droot.exec_trait, nullptr)
          .ok());
}

TEST(WireRoundTrip, EveryFrameTypeHasAName) {
  for (uint16_t t = 1; t <= 12; ++t) {
    EXPECT_STRNE(FrameTypeToString(static_cast<FrameType>(t)), "UNKNOWN");
  }
  EXPECT_STREQ(FrameTypeToString(static_cast<FrameType>(99)), "UNKNOWN");
}

}  // namespace
}  // namespace wire
}  // namespace cgq
