#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exec/vector/column_batch.h"
#include "exec/vector/kernels.h"

namespace cgq {
namespace vec {
namespace {

// Structural (representation-level) equality: NULL == NULL, but
// Int64(1) != Double(1.0). This is the "byte-for-byte" notion the
// vectorized backend is validated under.
void ExpectSameValue(const Value& a, const Value& b,
                     const std::string& where) {
  EXPECT_TRUE(a.StructurallyEquals(b))
      << where << ": " << a.ToString() << " vs " << b.ToString();
}

RowBatch MixedBatch() {
  RowBatch b;
  b.layout = RowLayout({1, 2, 3, 4});
  // col 1: int64 with a NULL; col 2: double; col 3: string with NULLs;
  // col 4: all-NULL.
  b.rows = {
      {Value::Int64(7), Value::Double(1.5), Value::Null(), Value::Null()},
      {Value::Null(), Value::Double(-0.25), Value::String("x"),
       Value::Null()},
      {Value::Int64(-3), Value::Double(1e18), Value::String(""),
       Value::Null()},
  };
  return b;
}

TEST(NullBitmapTest, AppendAndQueryAcrossWordBoundaries) {
  NullBitmap bits;
  for (int i = 0; i < 130; ++i) bits.AppendBit(i % 3 == 0);
  ASSERT_EQ(bits.size(), 130u);
  EXPECT_EQ(bits.null_count(), 44);
  EXPECT_TRUE(bits.AnyNull());
  EXPECT_FALSE(bits.AllNull());
  for (int i = 0; i < 130; ++i) {
    EXPECT_EQ(bits.IsNull(i), i % 3 == 0) << i;
  }
}

TEST(NullBitmapTest, AllNullRequiresRows) {
  NullBitmap empty;
  EXPECT_FALSE(empty.AllNull());
  NullBitmap two;
  two.AppendBit(true);
  two.AppendBit(true);
  EXPECT_TRUE(two.AllNull());
}

TEST(ColumnVectorTest, FirstValueCommitsTheTag) {
  ColumnVector c;
  c.AppendValue(Value::Double(2.5));
  EXPECT_EQ(c.tag, ColumnTag::kDouble);
  ColumnVector s;
  s.AppendValue(Value::String("a"));
  EXPECT_EQ(s.tag, ColumnTag::kString);
}

TEST(ColumnVectorTest, LeadingNullsRetagOnFirstNonNull) {
  ColumnVector c;
  c.AppendValue(Value::Null());
  c.AppendValue(Value::Null());
  EXPECT_EQ(c.tag, ColumnTag::kInt64);  // provisional
  c.AppendValue(Value::String("late"));
  EXPECT_EQ(c.tag, ColumnTag::kString);
  ExpectSameValue(c.GetValue(0), Value::Null(), "row 0");
  ExpectSameValue(c.GetValue(1), Value::Null(), "row 1");
  ExpectSameValue(c.GetValue(2), Value::String("late"), "row 2");
}

TEST(ColumnVectorTest, MixedTypesFallBackToValuesLosslessly) {
  ColumnVector c;
  c.AppendValue(Value::Int64(1));
  c.AppendValue(Value::Double(2.0));  // int column sees a double
  EXPECT_EQ(c.tag, ColumnTag::kValue);
  ExpectSameValue(c.GetValue(0), Value::Int64(1), "row 0");
  ExpectSameValue(c.GetValue(1), Value::Double(2.0), "row 1");
  c.AppendValue(Value::Null());
  ExpectSameValue(c.GetValue(2), Value::Null(), "row 2");
}

TEST(ColumnVectorTest, AppendFromPreservesValuesAcrossTags) {
  ColumnVector src;
  src.AppendValue(Value::Int64(5));
  src.AppendValue(Value::Null());
  ColumnVector same_tag;
  same_tag.AppendValue(Value::Int64(9));
  same_tag.AppendFrom(src, 0);
  same_tag.AppendFrom(src, 1);
  ExpectSameValue(same_tag.GetValue(1), Value::Int64(5), "same tag");
  ExpectSameValue(same_tag.GetValue(2), Value::Null(), "same tag null");

  ColumnVector other_tag;
  other_tag.AppendValue(Value::String("s"));
  other_tag.AppendFrom(src, 0);  // int into string column
  EXPECT_EQ(other_tag.tag, ColumnTag::kValue);
  ExpectSameValue(other_tag.GetValue(1), Value::Int64(5), "cross tag");
}

TEST(ColumnVectorTest, GatherReordersAndRepeatsWithNulls) {
  ColumnVector c;
  for (int i = 0; i < 100; ++i) {
    c.AppendValue(i % 7 == 0 ? Value::Null() : Value::Int64(i));
  }
  std::vector<uint32_t> sel = {99, 0, 7, 7, 42, 13};
  ColumnVector g = c.Gather(sel);
  ASSERT_EQ(g.size(), sel.size());
  for (size_t k = 0; k < sel.size(); ++k) {
    ExpectSameValue(g.GetValue(k), c.GetValue(sel[k]),
                    "gather row " + std::to_string(k));
  }
}

TEST(ColumnBatchTest, RoundTripIsByteIdentical) {
  RowBatch in = MixedBatch();
  auto cb = FromRowBatch(in);
  ASSERT_TRUE(cb.ok()) << cb.status();
  EXPECT_EQ(cb->NumRows(), in.rows.size());
  EXPECT_EQ(cb->NumColumns(), in.layout.size());
  // The all-null column stays provisional int64, one bit per row.
  EXPECT_EQ(cb->columns[3]->tag, ColumnTag::kInt64);
  EXPECT_TRUE(cb->columns[3]->nulls.AllNull());

  RowBatch out = ToRowBatch(*cb);
  ASSERT_EQ(out.rows.size(), in.rows.size());
  EXPECT_EQ(out.layout.attrs(), in.layout.attrs());
  for (size_t r = 0; r < in.rows.size(); ++r) {
    for (size_t c = 0; c < in.layout.size(); ++c) {
      ExpectSameValue(out.rows[r][c], in.rows[r][c],
                      "row " + std::to_string(r) + " col " +
                          std::to_string(c));
    }
  }
}

TEST(ColumnBatchTest, FromRowsRejectsWidthMismatch) {
  RowLayout layout({1, 2});
  std::vector<Row> rows = {{Value::Int64(1), Value::Int64(2)},
                           {Value::Int64(3)}};
  auto cb = FromRows(layout, rows);
  EXPECT_FALSE(cb.ok());
}

TEST(ColumnBatchTest, GatherSelectionStraddlingChunkBoundaries) {
  // A selection whose indices cross several 64-row bitmap words and a
  // 1024-row chunk boundary must still address the full batch.
  RowLayout layout({1});
  std::vector<Row> rows;
  for (int i = 0; i < 2500; ++i) {
    rows.push_back({i % 5 == 0 ? Value::Null() : Value::Int64(i)});
  }
  auto cb = FromRows(layout, rows);
  ASSERT_TRUE(cb.ok());
  std::vector<uint32_t> sel = {0, 63, 64, 1023, 1024, 2047, 2048, 2499};
  ColumnBatch g = cb->Gather(sel);
  ASSERT_EQ(g.NumRows(), sel.size());
  for (size_t k = 0; k < sel.size(); ++k) {
    ExpectSameValue(g.columns[0]->GetValue(k),
                    cb->columns[0]->GetValue(sel[k]),
                    "sel " + std::to_string(sel[k]));
  }
}

TEST(ColumnBatchTest, SharedColumnsSurviveSourceBatchDestruction) {
  ColumnPtr kept;
  {
    auto cb = FromRows(RowLayout({1}), {{Value::Int64(42)}});
    ASSERT_TRUE(cb.ok());
    kept = cb->columns[0];
  }
  ExpectSameValue(kept->GetValue(0), Value::Int64(42), "shared column");
}

}  // namespace
}  // namespace vec
}  // namespace cgq
