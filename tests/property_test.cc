#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/policy.h"
#include "core/policy_evaluator.h"
#include "plan/binder.h"
#include "plan/builder.h"
#include "plan/summary.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "tpch/tpch.h"
#include "workload/policy_generator.h"
#include "workload/query_generator.h"

namespace cgq {
namespace {

// --- Self-join policy evaluation (per-instance implication) -----------------

class SelfJoinPolicyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* l : {"l1", "l2"}) {
      ASSERT_TRUE(catalog_.mutable_locations().AddLocation(l).ok());
    }
    TableDef t;
    t.name = "t";
    t.schema = Schema({{"a", DataType::kInt64}, {"b", DataType::kInt64}});
    t.fragments = {TableFragment{0, 1.0}};
    t.stats.row_count = 100;
    ASSERT_TRUE(catalog_.AddTable(t).ok());
    policies_ = std::make_unique<PolicyCatalog>(&catalog_);
    ASSERT_TRUE(policies_
                    ->AddPolicyText("l1",
                                    "ship a, b from t to l2 where b > 10")
                    .ok());
    evaluator_ =
        std::make_unique<PolicyEvaluator>(&catalog_, policies_.get());
  }

  LocationSet Eval(const std::string& sql) {
    auto ast = ParseQuery(sql);
    EXPECT_TRUE(ast.ok());
    PlannerContext ctx(&catalog_);
    auto bound = BindQuery(*ast, &ctx);
    EXPECT_TRUE(bound.ok()) << bound.status();
    auto plan = BuildLogicalPlan(*bound, &ctx);
    EXPECT_TRUE(plan.ok());
    return evaluator_->Evaluate(SummarizePlan(*(*plan).root), 0);
  }

  Catalog catalog_;
  std::unique_ptr<PolicyCatalog> policies_;
  std::unique_ptr<PolicyEvaluator> evaluator_;
};

TEST_F(SelfJoinPolicyTest, BothInstancesMustImply) {
  EXPECT_EQ(Eval("SELECT t1.a, t2.a FROM t t1, t t2 "
                 "WHERE t1.a = t2.a AND t1.b > 15 AND t2.b > 20"),
            LocationSet::Single(1));
}

TEST_F(SelfJoinPolicyTest, OneFailingInstanceBlocks) {
  EXPECT_EQ(Eval("SELECT t1.a, t2.a FROM t t1, t t2 "
                 "WHERE t1.a = t2.a AND t1.b > 15 AND t2.b > 5"),
            LocationSet());
  EXPECT_EQ(Eval("SELECT t1.a, t2.a FROM t t1, t t2 "
                 "WHERE t1.a = t2.a AND t1.b > 15"),
            LocationSet());
}

TEST_F(SelfJoinPolicyTest, InstancePredicatesDoNotLeakAcrossAliases) {
  // t1's b > 15 must not satisfy the policy for t2.
  EXPECT_EQ(Eval("SELECT t2.a FROM t t1, t t2 "
                 "WHERE t1.a = t2.a AND t1.b > 15 AND t1.b < 50"),
            LocationSet());
}

// --- Metamorphic properties of Algorithm 1 ----------------------------------

class PolicyMonotonicityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PolicyMonotonicityTest, AddingExpressionsNeverShrinksA) {
  tpch::TpchConfig config;
  config.scale_factor = 1;
  auto catalog = tpch::BuildCatalog(config);
  ASSERT_TRUE(catalog.ok());
  WorkloadProperties props = TpchWorkloadProperties();

  // A growing policy set: A(q) must grow monotonically with it.
  PolicyGeneratorConfig pconfig;
  pconfig.template_name = "CRA";
  pconfig.count = 30;
  pconfig.seed = GetParam();
  pconfig.ensure_feasible = false;
  PolicyExpressionGenerator pgen(&*catalog, &props, pconfig);
  std::vector<GeneratedPolicy> all = pgen.Generate();

  QueryGeneratorConfig qconfig;
  qconfig.seed = GetParam() * 31 + 7;
  AdhocQueryGenerator qgen(&*catalog, &props, qconfig);

  for (int iteration = 0; iteration < 5; ++iteration) {
    std::string sql = qgen.Next();
    auto ast = ParseQuery(sql);
    ASSERT_TRUE(ast.ok());
    PlannerContext ctx(&*catalog);
    auto bound = BindQuery(*ast, &ctx);
    if (!bound.ok()) continue;
    auto plan = BuildLogicalPlan(*bound, &ctx);
    ASSERT_TRUE(plan.ok());
    QuerySummary summary = SummarizePlan(*(*plan).root);
    if (!summary.IsSingleDatabaseBlock()) continue;
    LocationId db = summary.source_locations.ToVector().front();

    LocationSet previous;
    for (size_t n = 0; n <= all.size(); n += 10) {
      PolicyCatalog policies(&*catalog);
      for (size_t i = 0; i < n && i < all.size(); ++i) {
        ASSERT_TRUE(
            policies.AddPolicyText(all[i].location, all[i].text).ok());
      }
      PolicyEvaluator evaluator(&*catalog, &policies);
      LocationSet now = evaluator.Evaluate(summary, db);
      EXPECT_TRUE(previous.IsSubsetOf(now))
          << sql << " shrank when adding expressions";
      previous = now;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyMonotonicityTest,
                         ::testing::Range<uint64_t>(1, 9));

TEST(PolicyStrengthTest, StrongerQueryPredicateNeverShrinksA) {
  // A query asking for *less* (stronger predicate, implied by the weaker
  // one) can only be shippable to more places.
  Catalog catalog;
  ASSERT_TRUE(catalog.mutable_locations().AddLocation("l1").ok());
  ASSERT_TRUE(catalog.mutable_locations().AddLocation("l2").ok());
  ASSERT_TRUE(catalog.mutable_locations().AddLocation("l3").ok());
  TableDef t;
  t.name = "t";
  t.schema = Schema({{"a", DataType::kInt64}, {"b", DataType::kInt64}});
  t.fragments = {TableFragment{0, 1.0}};
  t.stats.row_count = 100;
  ASSERT_TRUE(catalog.AddTable(t).ok());
  PolicyCatalog policies(&catalog);
  ASSERT_TRUE(
      policies.AddPolicyText("l1", "ship a, b from t to l2 where b > 10")
          .ok());
  ASSERT_TRUE(
      policies.AddPolicyText("l1", "ship a, b from t to l3 where b > 50")
          .ok());
  PolicyEvaluator evaluator(&catalog, &policies);

  auto eval = [&](const std::string& pred) {
    auto ast = ParseQuery("SELECT a FROM t WHERE " + pred);
    PlannerContext ctx(&catalog);
    auto bound = BindQuery(*ast, &ctx);
    auto plan = BuildLogicalPlan(*bound, &ctx);
    return evaluator.Evaluate(SummarizePlan(*(*plan).root), 0);
  };
  LocationSet weak = eval("b > 20");    // implies b > 10 only
  LocationSet strong = eval("b > 60");  // implies both
  EXPECT_TRUE(weak.IsSubsetOf(strong));
  EXPECT_EQ(weak, LocationSet::Single(1));
  EXPECT_EQ(strong,
            LocationSet::Single(1).Union(LocationSet::Single(2)));
}

// --- Parser robustness: random garbage must error, never crash --------------

TEST(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  const char* fragments[] = {"SELECT", "FROM",  "WHERE", "GROUP", "BY",
                             "(",      ")",     ",",     "*",     "'x'",
                             "42",     "3.14",  "a",     "t",     "=",
                             "<",      ">",     "AND",   "OR",    "NOT",
                             "SUM",    "LIKE",  "IN",    "BETWEEN",
                             "ship",   "to",    "having", "distinct"};
  Rng rng(2021);
  for (int i = 0; i < 3000; ++i) {
    std::string input;
    int len = static_cast<int>(rng.Uniform(1, 14));
    for (int k = 0; k < len; ++k) {
      input += fragments[rng.Uniform(0, 27)];
      input += " ";
    }
    (void)ParseQuery(input);            // must not crash
    (void)ParsePolicyExpression(input); // must not crash
  }
}

TEST(ParserFuzzTest, RandomBytesNeverCrashLexer) {
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    std::string input;
    int len = static_cast<int>(rng.Uniform(0, 40));
    for (int k = 0; k < len; ++k) {
      input += static_cast<char>(rng.Uniform(32, 126));
    }
    (void)Tokenize(input);
    (void)ParseQuery(input);
  }
}

}  // namespace
}  // namespace cgq
