#include <gtest/gtest.h>

#include "core/engine.h"
#include "exec/analyze.h"

namespace cgq {
namespace {

// A reference table replicated at two sites; the optimizer must pick the
// replica whose location's policies (and network position) fit the plan.
class ReplicationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Catalog catalog;
    for (const char* l : {"eu", "us", "ap"}) {
      ASSERT_TRUE(catalog.mutable_locations().AddLocation(l).ok());
    }
    TableDef rates;  // replicated at eu and us
    rates.name = "rates";
    rates.schema = Schema({{"cur", DataType::kString},
                           {"rate", DataType::kDouble}});
    rates.replicated = true;
    rates.fragments = {TableFragment{0, 1.0}, TableFragment{1, 1.0}};
    rates.stats.row_count = 3;
    ASSERT_TRUE(catalog.AddTable(rates).ok());

    TableDef trades;  // only in ap
    trades.name = "trades";
    trades.schema = Schema({{"id", DataType::kInt64},
                            {"cur", DataType::kString},
                            {"amount", DataType::kDouble}});
    trades.fragments = {TableFragment{2, 1.0}};
    trades.stats.row_count = 1000;
    ASSERT_TRUE(catalog.AddTable(trades).ok());

    engine_ = std::make_unique<Engine>(std::move(catalog),
                                       NetworkModel::DefaultGeo(3));
    std::vector<Row> rate_rows = {
        {Value::String("usd"), Value::Double(1.0)},
        {Value::String("eur"), Value::Double(0.9)},
        {Value::String("jpy"), Value::Double(150.0)}};
    engine_->store().Put(0, "rates", rate_rows);
    engine_->store().Put(1, "rates", rate_rows);
    engine_->store().Put(2, "trades",
                         {{Value::Int64(1), Value::String("usd"),
                           Value::Double(100)},
                          {Value::Int64(2), Value::String("jpy"),
                           Value::Double(5000)}});
  }

  static const PlanNode* FindScan(const PlanNode& n, const std::string& t) {
    if (n.kind() == PlanKind::kScan && n.table == t) return &n;
    for (const auto& c : n.children()) {
      if (const PlanNode* f = FindScan(*c, t)) return f;
    }
    return nullptr;
  }

  std::unique_ptr<Engine> engine_;
};

TEST_F(ReplicationTest, PolicyDrivenReplicaChoice) {
  // The EU replica may not leave eu; the US replica may travel anywhere.
  // With the result required at ap, only the US replica can serve the
  // join (the EU replica would strand the result in eu).
  ASSERT_TRUE(engine_->AddPolicy("us", "ship * from rates to *").ok());
  ASSERT_TRUE(engine_->AddPolicy("ap", "ship * from trades to *").ok());
  OptimizerOptions opts;
  opts.required_result = LocationSet::Single(2);  // ap
  const char* sql =
      "SELECT t.id, r.rate FROM trades t, rates r WHERE t.cur = r.cur";
  auto plan = engine_->Optimize(sql, opts);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(plan->compliant);
  EXPECT_EQ(plan->result_location, 2u);
  const PlanNode* scan = FindScan(*plan->plan, "rates");
  ASSERT_NE(scan, nullptr);
  EXPECT_EQ(scan->scan_location, 1u)  // must read the US replica
      << PlanToString(*plan->plan, &engine_->catalog().locations());
  auto result = engine_->Run(sql, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 2u);
}

TEST_F(ReplicationTest, RejectedWhenNoReplicaMayTravel) {
  // No rates policy at all and trades pinned to ap: the join cannot be
  // placed anywhere.
  ASSERT_TRUE(engine_->AddPolicy("ap", "ship cur from trades to *").ok());
  auto r = engine_->Optimize(
      "SELECT t.amount, r.rate FROM trades t, rates r WHERE t.cur = r.cur");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNonCompliant());
}

TEST_F(ReplicationTest, PerReplicaPoliciesApplyIndividually) {
  // EU replica: only aggregated rates leave. US replica: raw but only to
  // eu. Joining raw at ap is impossible; joining at eu works via the US
  // replica.
  ASSERT_TRUE(engine_
                  ->AddPolicy("eu",
                              "ship rate as aggregates avg from rates "
                              "to * group by cur")
                  .ok());
  ASSERT_TRUE(engine_->AddPolicy("us", "ship * from rates to eu").ok());
  ASSERT_TRUE(engine_->AddPolicy("ap", "ship * from trades to eu").ok());
  auto plan = engine_->Optimize(
      "SELECT t.id, r.rate FROM trades t, rates r WHERE t.cur = r.cur");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(plan->compliant);
  EXPECT_EQ(plan->result_location, 0u);  // eu
}

TEST_F(ReplicationTest, CostDrivenReplicaChoiceWhenPoliciesEqual) {
  // Both replicas free to travel: the optimizer picks by network cost.
  ASSERT_TRUE(engine_->AddPolicy("eu", "ship * from rates to *").ok());
  ASSERT_TRUE(engine_->AddPolicy("us", "ship * from rates to *").ok());
  ASSERT_TRUE(engine_->AddPolicy("ap", "ship cur from trades to *").ok());
  auto plan = engine_->Optimize(
      "SELECT t.id, r.rate FROM trades t, rates r WHERE t.cur = r.cur");
  ASSERT_TRUE(plan.ok()) << plan.status();
  const PlanNode* scan = FindScan(*plan->plan, "rates");
  ASSERT_NE(scan, nullptr);
  // DefaultGeo: eu(0)->ap(2) has alpha 110, us(1)->ap(2) alpha 140; rates
  // ships to ap (trades is bigger), so the eu replica is cheaper.
  EXPECT_EQ(scan->scan_location, 0u);
}

TEST_F(ReplicationTest, AnalyzeChecksReplicaConsistency) {
  ASSERT_TRUE(
      AnalyzeTable(engine_->store(), "rates", &engine_->catalog()).ok());
  auto t = engine_->catalog().GetTable("rates");
  EXPECT_DOUBLE_EQ((*t)->stats.row_count, 3);
  // Diverging replicas are refused.
  engine_->store().Append(1, "rates",
                          {Value::String("gbp"), Value::Double(1.2)});
  EXPECT_FALSE(
      AnalyzeTable(engine_->store(), "rates", &engine_->catalog()).ok());
}

TEST_F(ReplicationTest, ReplicatedFractionsForcedToOne) {
  auto t = engine_->catalog().GetTable("rates");
  for (const TableFragment& f : (*t)->fragments) {
    EXPECT_DOUBLE_EQ(f.row_fraction, 1.0);
  }
}

}  // namespace
}  // namespace cgq
