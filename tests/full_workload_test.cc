#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "exec/executor.h"
#include "net/network_model.h"
#include "tpch/tpch.h"

namespace cgq {
namespace {

// Shared fixture state: generating TPC-H data once keeps the sweep fast.
struct SharedTpch {
  SharedTpch() {
    config.scale_factor = 0.002;
    catalog = std::make_unique<Catalog>(*tpch::BuildCatalog(config));
    net = std::make_unique<NetworkModel>(NetworkModel::DefaultGeo(5));
    store = std::make_unique<TableStore>();
    CGQ_CHECK(tpch::GenerateData(*catalog, config, store.get()).ok());
  }
  tpch::TpchConfig config;
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<NetworkModel> net;
  std::unique_ptr<TableStore> store;
};

SharedTpch& Shared() {
  static SharedTpch* s = new SharedTpch();
  return *s;
}

std::vector<std::string> Canon(const QueryResult& r) {
  std::vector<std::string> rows;
  for (const Row& row : r.rows) {
    std::string s;
    for (const Value& v : row) {
      if (v.is_double()) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.4f|", v.dbl());
        s += buf;
      } else {
        s += v.ToString() + "|";
      }
    }
    rows.push_back(std::move(s));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

// (policy set, query number) sweep over the whole workload.
class FullWorkload
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(FullWorkload, CompliantPlanExistsVerifiesAndAgrees) {
  const auto& [set, q] = GetParam();
  SharedTpch& shared = Shared();
  PolicyCatalog policies(shared.catalog.get());
  ASSERT_TRUE(tpch::InstallPolicySet(set, &policies).ok());

  OptimizerOptions copts;
  QueryOptimizer compliant(shared.catalog.get(), &policies,
                           shared.net.get(), copts);
  OptimizerOptions topts;
  topts.compliant = false;
  QueryOptimizer traditional(shared.catalog.get(), &policies,
                             shared.net.get(), topts);

  std::string sql = *tpch::Query(q);
  auto c = compliant.Optimize(sql);
  ASSERT_TRUE(c.ok()) << set << "/Q" << q << ": " << c.status();
  // Theorem 1: the emitted plan verifies compliant.
  EXPECT_TRUE(c->compliant) << set << "/Q" << q;

  auto t = traditional.Optimize(sql);
  ASSERT_TRUE(t.ok()) << set << "/Q" << q;

  // Semantics preservation: identical result multisets.
  Executor executor(shared.store.get(), shared.net.get());
  auto rc = executor.Execute(*c);
  ASSERT_TRUE(rc.ok()) << set << "/Q" << q << ": " << rc.status();
  auto rt = executor.Execute(*t);
  ASSERT_TRUE(rt.ok()) << set << "/Q" << q << ": " << rt.status();
  EXPECT_EQ(Canon(*rc), Canon(*rt)) << set << "/Q" << q;
}

std::vector<std::tuple<const char*, int>> AllVariants() {
  std::vector<std::tuple<const char*, int>> out;
  for (const char* set : {"T", "C", "CR", "CRA"}) {
    for (int q : tpch::QueryNumbers()) out.emplace_back(set, q);
    for (int q : tpch::ExtendedQueryNumbers()) out.emplace_back(set, q);
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    AllSetsAllQueries, FullWorkload, ::testing::ValuesIn(AllVariants()),
    [](const ::testing::TestParamInfo<std::tuple<const char*, int>>& info) {
      return std::string(std::get<0>(info.param)) + "_Q" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace cgq
