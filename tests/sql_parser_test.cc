#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "sql/parser.h"
#include "types/date.h"

namespace cgq {
namespace {

TEST(LexerTest, BasicTokens) {
  auto r = Tokenize("SELECT a, b FROM t WHERE x >= 1.5");
  ASSERT_TRUE(r.ok());
  const auto& tokens = *r;
  EXPECT_EQ(tokens[0].text, "select");
  EXPECT_EQ(tokens[1].text, "a");
  EXPECT_EQ(tokens[2].type, TokenType::kComma);
  EXPECT_EQ(tokens.back().type, TokenType::kEnd);
}

TEST(LexerTest, Operators) {
  auto r = Tokenize("= <> != < <= > >= + - * /");
  ASSERT_TRUE(r.ok());
  std::vector<TokenType> expected = {
      TokenType::kEq, TokenType::kNe, TokenType::kNe,    TokenType::kLt,
      TokenType::kLe, TokenType::kGt, TokenType::kGe,    TokenType::kPlus,
      TokenType::kMinus, TokenType::kStar, TokenType::kSlash,
      TokenType::kEnd};
  ASSERT_EQ(r->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ((*r)[i].type, expected[i]) << i;
  }
}

TEST(LexerTest, StringLiteralWithEscapedQuote) {
  auto r = Tokenize("'it''s'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].type, TokenType::kString);
  EXPECT_EQ((*r)[0].text, "it's");
}

TEST(LexerTest, UnterminatedString) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(LexerTest, LineComment) {
  auto r = Tokenize("a -- comment here\n b");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].text, "a");
  EXPECT_EQ((*r)[1].text, "b");
}

TEST(LexerTest, NumbersIntAndFloat) {
  auto r = Tokenize("42 3.14");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].int_value, 42);
  EXPECT_DOUBLE_EQ((*r)[1].float_value, 3.14);
}

TEST(ParserTest, SimpleSelect) {
  auto r = ParseQuery("SELECT name, acctbal FROM customer");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->select.size(), 2u);
  EXPECT_EQ(r->select[0].output_name, "name");
  EXPECT_EQ(r->from.size(), 1u);
  EXPECT_EQ(r->from[0].table, "customer");
  EXPECT_EQ(r->from[0].alias, "customer");
}

TEST(ParserTest, AliasesExplicitAndImplicit) {
  auto r = ParseQuery("SELECT c.name FROM customer AS c, orders o");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->from[0].alias, "c");
  EXPECT_EQ(r->from[1].alias, "o");
}

TEST(ParserTest, WhereWithPrecedence) {
  auto r = ParseQuery(
      "SELECT a FROM t WHERE a > 1 AND b < 2 OR c = 3");
  ASSERT_TRUE(r.ok()) << r.status();
  // OR binds loosest.
  EXPECT_EQ(r->where->op(), ExprOp::kOr);
  EXPECT_EQ(r->where->child(0)->op(), ExprOp::kAnd);
}

TEST(ParserTest, ArithmeticPrecedence) {
  auto r = ParseQuery("SELECT a FROM t WHERE a + b * 2 > 10");
  ASSERT_TRUE(r.ok()) << r.status();
  const Expr& cmp = *r->where;
  EXPECT_EQ(cmp.op(), ExprOp::kGt);
  EXPECT_EQ(cmp.child(0)->op(), ExprOp::kAdd);
  EXPECT_EQ(cmp.child(0)->child(1)->op(), ExprOp::kMul);
}

TEST(ParserTest, Aggregates) {
  auto r = ParseQuery(
      "SELECT c.name, SUM(o.total) AS s, COUNT(o.id) FROM c, o "
      "GROUP BY c.name");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->select[0].agg.has_value());
  EXPECT_EQ(r->select[1].agg, AggFn::kSum);
  EXPECT_EQ(r->select[1].output_name, "s");
  EXPECT_EQ(r->select[2].agg, AggFn::kCount);
  ASSERT_EQ(r->group_by.size(), 1u);
  EXPECT_EQ(r->group_by[0]->column(), "name");
}

TEST(ParserTest, AggregateOverExpression) {
  auto r = ParseQuery(
      "SELECT SUM(l.extendedprice * (1 - l.discount)) AS revenue FROM l");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->select[0].agg, AggFn::kSum);
  EXPECT_EQ(r->select[0].expr->op(), ExprOp::kMul);
}

TEST(ParserTest, LikeInBetween) {
  auto r = ParseQuery(
      "SELECT a FROM t WHERE name LIKE '%BRASS%' AND x IN (1, 2, 3) "
      "AND y BETWEEN 5 AND 10 AND z NOT LIKE 'a%'");
  ASSERT_TRUE(r.ok()) << r.status();
  auto conjuncts = SplitConjuncts(r->where);
  ASSERT_EQ(conjuncts.size(), 5u);  // BETWEEN desugars to two conjuncts
  EXPECT_EQ(conjuncts[0]->op(), ExprOp::kLike);
  EXPECT_EQ(conjuncts[1]->op(), ExprOp::kIn);
  EXPECT_EQ(conjuncts[1]->in_list().size(), 3u);
  EXPECT_EQ(conjuncts[2]->op(), ExprOp::kGe);
  EXPECT_EQ(conjuncts[3]->op(), ExprOp::kLe);
  EXPECT_EQ(conjuncts[4]->op(), ExprOp::kNotLike);
}

TEST(ParserTest, DateLiteral) {
  auto r = ParseQuery("SELECT a FROM t WHERE d < DATE '1995-03-15'");
  ASSERT_TRUE(r.ok()) << r.status();
  const Expr& lit = *r->where->child(1);
  EXPECT_EQ(lit.op(), ExprOp::kLiteral);
  EXPECT_EQ(lit.literal().int64(), DaysFromCivil(1995, 3, 15));
}

TEST(ParserTest, OrderByLimit) {
  auto r = ParseQuery(
      "SELECT a, b FROM t ORDER BY b DESC, a LIMIT 10");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->order_by.size(), 2u);
  EXPECT_TRUE(r->order_by[0].descending);
  EXPECT_FALSE(r->order_by[1].descending);
  EXPECT_EQ(r->limit, 10);
}

TEST(ParserTest, RejectsGarbage) {
  EXPECT_FALSE(ParseQuery("SELECT FROM t").ok());
  EXPECT_FALSE(ParseQuery("SELECT a").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseQuery("SELECT a FROM t extra garbage ,").ok());
}

TEST(ParserTest, NegativeNumbers) {
  auto r = ParseQuery("SELECT a FROM t WHERE x > -5");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->where->op(), ExprOp::kGt);
}

TEST(PolicyParserTest, BasicExpression) {
  auto r = ParsePolicyExpression(
      "ship custkey, name from Customer C to Asia, Europe");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->ship_all);
  EXPECT_EQ(r->attributes, (std::vector<std::string>{"custkey", "name"}));
  EXPECT_EQ(r->table, "customer");
  EXPECT_EQ(r->alias, "c");
  EXPECT_EQ(r->to_locations,
            (std::vector<std::string>{"asia", "europe"}));
  EXPECT_TRUE(r->agg_fns.empty());
}

TEST(PolicyParserTest, ShipStarToStar) {
  auto r = ParsePolicyExpression("ship * from nation to *");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->ship_all);
  EXPECT_TRUE(r->to_all);
}

TEST(PolicyParserTest, WithWhere) {
  auto r = ParsePolicyExpression(
      "ship mktseg, region from Customer to Europe "
      "where mktseg = 'commercial'");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_NE(r->where, nullptr);
  EXPECT_EQ(r->where->op(), ExprOp::kEq);
}

TEST(PolicyParserTest, AggregateExpression) {
  auto r = ParsePolicyExpression(
      "ship acctbal as aggregates sum, avg from Customer C to * "
      "group by mktseg, region");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->agg_fns, (std::vector<AggFn>{AggFn::kSum, AggFn::kAvg}));
  EXPECT_EQ(r->group_by, (std::vector<std::string>{"mktseg", "region"}));
}

TEST(PolicyParserTest, Table3Example) {
  auto r = ParsePolicyExpression(
      "ship partkey, mfgr, size, type, name from part to L4 "
      "where size > 40 OR type LIKE '%COPPER%'");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->attributes.size(), 5u);
  EXPECT_EQ(r->where->op(), ExprOp::kOr);
}

TEST(PolicyParserTest, RejectsBadSyntax) {
  EXPECT_FALSE(ParsePolicyExpression("ship from t to *").ok());
  EXPECT_FALSE(ParsePolicyExpression("ship a from t").ok());
  EXPECT_FALSE(ParsePolicyExpression("ship a to x from t").ok());
  EXPECT_FALSE(
      ParsePolicyExpression("ship a as aggregates bogus from t to *").ok());
}

}  // namespace
}  // namespace cgq
