#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace cgq {
namespace {

// Every test starts and ends with a clean registry: failpoints are
// process-wide state.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::DisarmAll(); }
  void TearDown() override { Failpoints::DisarmAll(); }
};

TEST_F(FailpointTest, UnarmedSiteNeverFires) {
  EXPECT_FALSE(Failpoints::AnyArmed());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(CGQ_FAILPOINT("test.unarmed"));
  }
  EXPECT_EQ(Failpoints::Evaluations("test.unarmed"), 0);
  EXPECT_EQ(Failpoints::Fires("test.unarmed"), 0);
}

// The macro's fast path is AnyArmed(): while nothing is armed, sites are
// not even looked up. Arm the site afterwards and its counters still read
// zero — the witness that unarmed evaluation costs no registry work.
TEST_F(FailpointTest, InactiveEvaluationLeavesNoTrace) {
  for (int i = 0; i < 1000; ++i) {
    (void)CGQ_FAILPOINT("test.cold");
  }
  Failpoints::ArmOnce("test.cold");
  EXPECT_EQ(Failpoints::Evaluations("test.cold"), 0);
  EXPECT_EQ(Failpoints::Fires("test.cold"), 0);
}

// Arming one site must not make an unrelated site fire, even though the
// process-wide gate is now open.
TEST_F(FailpointTest, OnlyTheArmedSiteFires) {
  Failpoints::ArmEveryN("test.armed", 1);
  EXPECT_TRUE(Failpoints::AnyArmed());
  EXPECT_FALSE(CGQ_FAILPOINT("test.other"));
  EXPECT_TRUE(CGQ_FAILPOINT("test.armed"));
  EXPECT_EQ(Failpoints::Evaluations("test.other"), 0);
}

TEST_F(FailpointTest, OncePolicyFiresExactlyOnce) {
  Failpoints::ArmOnce("test.once");
  EXPECT_TRUE(CGQ_FAILPOINT("test.once"));
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(CGQ_FAILPOINT("test.once"));
  }
  EXPECT_EQ(Failpoints::Evaluations("test.once"), 51);
  EXPECT_EQ(Failpoints::Fires("test.once"), 1);
}

TEST_F(FailpointTest, EveryNPolicyFiresOnMultiples) {
  Failpoints::ArmEveryN("test.every3", 3);
  std::vector<int> fired;
  for (int i = 1; i <= 12; ++i) {
    if (CGQ_FAILPOINT("test.every3")) fired.push_back(i);
  }
  EXPECT_EQ(fired, (std::vector<int>{3, 6, 9, 12}));
  EXPECT_EQ(Failpoints::Fires("test.every3"), 4);
}

TEST_F(FailpointTest, ProbabilityPolicyIsSeedDeterministic) {
  auto run = [](uint64_t seed) {
    Failpoints::ArmProbability("test.prob", 0.3, seed);
    std::vector<bool> pattern;
    for (int i = 0; i < 200; ++i) {
      pattern.push_back(CGQ_FAILPOINT("test.prob"));
    }
    Failpoints::Disarm("test.prob");
    return pattern;
  };
  std::vector<bool> a = run(42);
  std::vector<bool> b = run(42);
  std::vector<bool> c = run(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);

  int fires = 0;
  for (bool f : a) fires += f;
  // 200 draws at p=0.3: the exact count is seed-determined, but it should
  // be in the statistically plausible band.
  EXPECT_GT(fires, 30);
  EXPECT_LT(fires, 90);
}

TEST_F(FailpointTest, ProbabilityExtremesAreExact) {
  Failpoints::ArmProbability("test.never", 0.0, 7);
  Failpoints::ArmProbability("test.always", 1.0, 7);
  for (int i = 0; i < 64; ++i) {
    EXPECT_FALSE(CGQ_FAILPOINT("test.never"));
    EXPECT_TRUE(CGQ_FAILPOINT("test.always"));
  }
}

// The registry lock serializes policy evaluation, so the total number of
// fires across N evaluations is a pure function of the policy state —
// regardless of how the evaluations interleave across threads.
TEST_F(FailpointTest, CrossThreadFireCountIsDeterministic) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 250;

  auto total_fires = [&](auto arm) {
    arm();
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([] {
        for (int i = 0; i < kPerThread; ++i) {
          (void)CGQ_FAILPOINT("test.mt");
        }
      });
    }
    for (std::thread& w : workers) w.join();
    int64_t fires = Failpoints::Fires("test.mt");
    EXPECT_EQ(Failpoints::Evaluations("test.mt"), kThreads * kPerThread);
    Failpoints::Disarm("test.mt");
    return fires;
  };

  EXPECT_EQ(total_fires([] { Failpoints::ArmOnce("test.mt"); }), 1);
  EXPECT_EQ(total_fires([] { Failpoints::ArmEveryN("test.mt", 10); }),
            kThreads * kPerThread / 10);

  // Seeded probability: same (seed, p, N) -> same fire count, every run.
  int64_t first =
      total_fires([] { Failpoints::ArmProbability("test.mt", 0.25, 99); });
  for (int rep = 0; rep < 3; ++rep) {
    EXPECT_EQ(total_fires(
                  [] { Failpoints::ArmProbability("test.mt", 0.25, 99); }),
              first);
  }
}

TEST_F(FailpointTest, DisarmStopsFiringAndRearmResetsCounters) {
  Failpoints::ArmEveryN("test.rearm", 1);
  EXPECT_TRUE(CGQ_FAILPOINT("test.rearm"));
  Failpoints::Disarm("test.rearm");
  EXPECT_FALSE(CGQ_FAILPOINT("test.rearm"));
  EXPECT_EQ(Failpoints::Evaluations("test.rearm"), 0);

  Failpoints::ArmOnce("test.rearm");
  EXPECT_TRUE(CGQ_FAILPOINT("test.rearm"));
  EXPECT_EQ(Failpoints::Evaluations("test.rearm"), 1);
}

TEST_F(FailpointTest, ArmedSitesAreListed) {
  Failpoints::ArmOnce("test.b");
  Failpoints::ArmOnce("test.a");
  EXPECT_EQ(Failpoints::ArmedSites(),
            (std::vector<std::string>{"test.a", "test.b"}));
  Failpoints::DisarmAll();
  EXPECT_TRUE(Failpoints::ArmedSites().empty());
  EXPECT_FALSE(Failpoints::AnyArmed());
}

}  // namespace
}  // namespace cgq
