// Out-of-core (grace) hash join: when the build side exceeds
// `memory_budget_bytes`, every backend partitions both sides to disk and
// joins partition-by-partition — and the output must stay byte-identical
// to the unbounded in-memory hash join, order included (the row
// reference probes in input order with matches in build insertion
// order). The TPC-H cells pin the ISSUE acceptance bar: a join completes
// correctly with a budget below 10% of its build side, with
// spill_partitions > 0 actually asserted.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "exec/spill_join.h"
#include "exec/table_store.h"
#include "net/network_model.h"
#include "tpch/tpch.h"

namespace cgq {
namespace {

using exec_internal::JoinSpec;

class SpillJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_.scale_factor = 0.002;
    catalog_ = std::make_unique<Catalog>(*tpch::BuildCatalog(config_));
    policies_ = std::make_unique<PolicyCatalog>(catalog_.get());
    ASSERT_TRUE(tpch::InstallUnrestrictedPolicies(policies_.get()).ok());
    net_ = std::make_unique<NetworkModel>(NetworkModel::DefaultGeo(5));
    store_ = std::make_unique<TableStore>();
    ASSERT_TRUE(tpch::GenerateData(*catalog_, config_, store_.get()).ok());
  }

  Result<OptimizedQuery> Optimize(int qnum) {
    QueryOptimizer optimizer(catalog_.get(), policies_.get(), net_.get(),
                             OptimizerOptions());
    CGQ_ASSIGN_OR_RETURN(std::string sql, tpch::Query(qnum));
    return optimizer.Optimize(sql);
  }

  Result<QueryResult> Run(const OptimizedQuery& q, ExecMode mode,
                          uint64_t budget) {
    ExecutorOptions opts;
    opts.mode = mode;
    opts.memory_budget_bytes = budget;
    Executor executor(store_.get(), net_.get(), opts);
    return executor.Execute(q);
  }

  // Full-precision order-sensitive serialization: spilled joins must
  // reproduce the in-memory output exactly, not merely as a set.
  static std::vector<std::string> ExactRows(const QueryResult& r) {
    std::vector<std::string> rows;
    rows.reserve(r.rows.size());
    for (const Row& row : r.rows) {
      std::string s;
      for (const Value& v : row) {
        if (v.is_null()) {
          s += "NULL|";
        } else if (v.is_double()) {
          char buf[40];
          std::snprintf(buf, sizeof(buf), "%.17g|", v.dbl());
          s += buf;
        } else {
          s += v.ToString() + "|";
        }
      }
      rows.push_back(std::move(s));
    }
    return rows;
  }

  tpch::TpchConfig config_;
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<PolicyCatalog> policies_;
  std::unique_ptr<NetworkModel> net_;
  std::unique_ptr<TableStore> store_;
};

TEST_F(SpillJoinTest, PickPartitionsScalesWithPressure) {
  using exec_internal::SpillHashJoin;
  // No pressure -> minimum fan-out; extreme pressure -> capped.
  EXPECT_EQ(SpillHashJoin::PickPartitions(1000, 1u << 30), 2);
  EXPECT_EQ(SpillHashJoin::PickPartitions(1u << 30, 1), 64);
  int mild = SpillHashJoin::PickPartitions(1 << 20, 1 << 18);
  EXPECT_GE(mild, 2);
  EXPECT_LE(mild, 64);
  int harsher = SpillHashJoin::PickPartitions(1 << 20, 1 << 14);
  EXPECT_GE(harsher, mild);
}

// The acceptance cell: TPC-H join queries under a budget far below 10%
// of any build side (1 KB vs multi-hundred-KB builds at sf 0.002) spill
// and still reproduce the unbounded run byte for byte, on every
// in-process backend.
TEST_F(SpillJoinTest, TpchJoinsSpillAndMatchUnbounded) {
  const struct {
    ExecMode mode;
    const char* name;
  } backends[] = {{ExecMode::kRow, "row"},
                  {ExecMode::kFragment, "fragment"},
                  {ExecMode::kVector, "vector"}};
  const uint64_t kTinyBudget = 1024;

  for (int qnum : {3, 5, 10, 12, 14}) {
    SCOPED_TRACE("Q" + std::to_string(qnum));
    auto q = Optimize(qnum);
    ASSERT_TRUE(q.ok()) << q.status();

    auto unbounded = Run(*q, ExecMode::kRow, 0);
    ASSERT_TRUE(unbounded.ok()) << unbounded.status();
    EXPECT_EQ(unbounded->metrics.spill_partitions, 0);
    ASSERT_FALSE(unbounded->rows.empty());

    for (const auto& backend : backends) {
      SCOPED_TRACE(backend.name);
      auto spilled = Run(*q, backend.mode, kTinyBudget);
      ASSERT_TRUE(spilled.ok()) << spilled.status();
      EXPECT_GT(spilled->metrics.spill_partitions, 0)
          << "a 1KB budget must force the grace path";
      EXPECT_GT(spilled->metrics.spill_bytes, 0);
      EXPECT_EQ(ExactRows(*spilled), ExactRows(*unbounded));
    }
  }
}

// A budget larger than every build side must never spill: the budget is
// a threshold, not a behavior change for small joins.
TEST_F(SpillJoinTest, GenerousBudgetNeverSpills) {
  auto q = Optimize(3);
  ASSERT_TRUE(q.ok()) << q.status();
  auto r = Run(*q, ExecMode::kRow, 1ull << 40);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->metrics.spill_partitions, 0);
  EXPECT_EQ(r->metrics.spill_bytes, 0);
}

// Direct exercise of the spill machinery on adversarial shapes the TPC-H
// workload underrepresents: heavy duplicate keys (cross-product bursts)
// and NULL join keys (dropped on both sides, matching the in-memory
// hash-join contract).
TEST_F(SpillJoinTest, DuplicateAndNullKeysMatchReference) {
  JoinSpec spec;
  spec.key_positions = {{0, 0}};
  spec.out_positions = {0, 1, 2, 3};  // identity over build ++ probe

  std::vector<Row> build, probe;
  for (int64_t i = 0; i < 200; ++i) {
    // Keys cycle 0..9 -> 20 duplicates per key on each side.
    build.push_back({Value::Int64(i % 10), Value::String("b" +
                                                         std::to_string(i))});
    probe.push_back({Value::Int64(i % 10), Value::String("p" +
                                                         std::to_string(i))});
  }
  // NULL keys never match and never crash the partitioner.
  build.push_back({Value::Null(), Value::String("bnull")});
  probe.push_back({Value::Null(), Value::String("pnull")});

  // Reference: the in-memory hash join via a row executor is overkill to
  // set up here, so compute the expected output directly from the
  // documented contract — probe order outer, build insertion order inner.
  std::vector<Row> expected;
  for (const Row& p : probe) {
    if (p[0].is_null()) continue;
    for (const Row& b : build) {
      if (b[0].is_null()) continue;
      if (b[0].int64() == p[0].int64()) {
        Row joined = b;
        joined.insert(joined.end(), p.begin(), p.end());
        expected.push_back(joined);
      }
    }
  }

  for (int partitions : {2, 7, 64}) {
    SCOPED_TRACE("partitions=" + std::to_string(partitions));
    exec_internal::SpillHashJoin join(
        &spec, exec_internal::SpillHashJoin::MakeSpillDir(""), partitions,
        nullptr);
    ASSERT_TRUE(join.Init().ok());
    for (const Row& b : build) ASSERT_TRUE(join.AddBuild(b).ok());
    for (const Row& p : probe) ASSERT_TRUE(join.AddProbe(p).ok());
    std::vector<Row> got;
    ASSERT_TRUE(join.Finish([&](Row row) {
                      got.push_back(std::move(row));
                      return Status::OK();
                    })
                    .ok());
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_TRUE(RowsStructurallyEqual(got[i], expected[i])) << "row " << i;
    }
    EXPECT_GT(join.spill_bytes(), 0);
  }
}

TEST_F(SpillJoinTest, EmptySidesProduceEmptyOutput) {
  JoinSpec spec;
  spec.key_positions = {{0, 0}};
  exec_internal::SpillHashJoin join(
      &spec, exec_internal::SpillHashJoin::MakeSpillDir(""), 4, nullptr);
  ASSERT_TRUE(join.Init().ok());
  ASSERT_TRUE(join.AddProbe({Value::Int64(1)}).ok());
  std::vector<Row> got;
  ASSERT_TRUE(join.Finish([&](Row row) {
                    got.push_back(std::move(row));
                    return Status::OK();
                  })
                  .ok());
  EXPECT_TRUE(got.empty());
}

}  // namespace
}  // namespace cgq
