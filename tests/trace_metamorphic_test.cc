#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/trace.h"
#include "core/engine.h"
#include "net/network_model.h"
#include "tpch/tpch.h"
#include "workload/policy_generator.h"
#include "workload/query_generator.h"

namespace cgq {
namespace {

#ifndef CGQ_TRACING

TEST(TraceMetamorphic, SkippedWithoutTracing) {
  GTEST_SKIP() << "built with CGQ_TRACING=OFF";
}

#else  // CGQ_TRACING

// Metamorphic sweep over generated ad-hoc queries and generated policy
// sets: whatever the query, every traced SHIP edge must be legal under
// the annotated plan (the shipped subtree's 𝒮 trait contains the
// destination), and a rejected query must leave no executor spans — the
// trace itself witnesses that no data moved.

struct ShipEdge {
  int64_t from;
  int64_t to;
  int64_t rows;
  double bytes;
  bool operator<(const ShipEdge& o) const {
    return std::tie(from, to, rows, bytes) <
           std::tie(o.from, o.to, o.rows, o.bytes);
  }
  bool operator==(const ShipEdge& o) const {
    return std::tie(from, to, rows, bytes) ==
           std::tie(o.from, o.to, o.rows, o.bytes);
  }
};

int64_t IntArg(const CanonicalSpan& span, const std::string& key) {
  for (const auto& [k, v] : span.args) {
    if (k == key) return std::strtoll(v.c_str(), nullptr, 10);
  }
  ADD_FAILURE() << "span " << span.path << " lacks arg " << key;
  return -1;
}

double DoubleArg(const CanonicalSpan& span, const std::string& key) {
  for (const auto& [k, v] : span.args) {
    if (k == key) return std::strtod(v.c_str(), nullptr);
  }
  ADD_FAILURE() << "span " << span.path << " lacks arg " << key;
  return -1;
}

std::vector<ShipEdge> ShipSpans(const TraceSession& trace) {
  std::vector<ShipEdge> edges;
  for (const CanonicalSpan& s : trace.CanonicalSpans()) {
    if (s.name != "ship") continue;
    edges.push_back({IntArg(s, "from"), IntArg(s, "to"), IntArg(s, "rows"),
                     DoubleArg(s, "bytes")});
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

// All SHIP operators of a located plan as (from, to, child 𝒮 trait).
void CollectPlanShips(
    const PlanNode& node,
    std::vector<std::tuple<LocationId, LocationId, LocationSet>>* out) {
  if (node.kind() == PlanKind::kShip) {
    out->push_back(
        {node.ship_from, node.ship_to, node.child(0)->ship_trait});
  }
  for (const PlanNodePtr& child : node.children()) {
    CollectPlanShips(*child, out);
  }
}

class TraceMetamorphicTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tpch::TpchConfig config;
    config.scale_factor = 0.002;
    auto catalog = tpch::BuildCatalog(config);
    ASSERT_TRUE(catalog.ok());
    engine_ = std::make_unique<Engine>(std::move(*catalog),
                                       NetworkModel::DefaultGeo(5));
    ASSERT_TRUE(
        tpch::GenerateData(engine_->catalog(), config, &engine_->store())
            .ok());
    engine_->set_tracing(true);
    properties_ = TpchWorkloadProperties();
  }

  void InstallPolicies(bool feasible, uint64_t seed) {
    PolicyGeneratorConfig config;
    config.template_name = "CRA";
    config.count = 20;
    config.seed = seed;
    config.ensure_feasible = feasible;
    PolicyExpressionGenerator gen(&engine_->catalog(), &properties_,
                                  config);
    ASSERT_TRUE(gen.InstallInto(&engine_->policies()).ok());
  }

  std::unique_ptr<Engine> engine_;
  WorkloadProperties properties_;
};

// ~200 generated queries under a feasible generated policy set: every
// ship span must map onto a SHIP operator of the optimized plan whose
// shipped subtree is allowed at the destination. Every 10th query also
// runs under the row backend, whose ship-span multiset must equal the
// fragment backend's.
TEST_F(TraceMetamorphicTest, ShipSpansAreLegalUnderTheAnnotatedPlan) {
  InstallPolicies(/*feasible=*/true, /*seed=*/11);
  AdhocQueryGenerator gen(&engine_->catalog(), &properties_, {});
  int executed = 0;
  for (int i = 0; i < 200; ++i) {
    std::string sql = gen.Next();
    SCOPED_TRACE(sql);

    auto opt = engine_->Optimize(sql);
    ASSERT_TRUE(opt.ok()) << opt.status();
    std::vector<std::tuple<LocationId, LocationId, LocationSet>> plan_ships;
    CollectPlanShips(*opt->plan, &plan_ships);

    engine_->set_exec_mode(ExecMode::kFragment);
    auto result = engine_->Run(sql);
    ASSERT_TRUE(result.ok()) << result.status();
    ++executed;

    ASSERT_NE(engine_->last_trace(), nullptr);
    std::vector<ShipEdge> traced = ShipSpans(*engine_->last_trace());
    EXPECT_EQ(traced.size(), plan_ships.size());
    for (const ShipEdge& edge : traced) {
      bool legal = false;
      for (const auto& [from, to, child_trait] : plan_ships) {
        if (edge.from == from && edge.to == to &&
            child_trait.Contains(static_cast<LocationId>(edge.to))) {
          legal = true;
          break;
        }
      }
      EXPECT_TRUE(legal) << "ship " << edge.from << "->" << edge.to
                         << " has no legal SHIP operator in the plan";
    }

    if (i % 10 == 0) {
      engine_->set_exec_mode(ExecMode::kRow);
      auto row_result = engine_->Run(sql);
      ASSERT_TRUE(row_result.ok());
      EXPECT_EQ(ShipSpans(*engine_->last_trace()), traced);
    }
  }
  EXPECT_EQ(executed, 200);
}

// Under an infeasible generated policy set, rejection happens before any
// data moves: the trace of a rejected query contains optimizer spans but
// no execute/fragment/ship spans at all.
TEST_F(TraceMetamorphicTest, RejectedQueriesProduceNoExecutorSpans) {
  InstallPolicies(/*feasible=*/false, /*seed=*/13);
  AdhocQueryGenerator gen(&engine_->catalog(), &properties_, {});
  engine_->set_exec_mode(ExecMode::kFragment);
  int rejected = 0;
  for (int i = 0; i < 100; ++i) {
    std::string sql = gen.Next();
    SCOPED_TRACE(sql);
    auto result = engine_->Run(sql);
    if (result.ok()) continue;
    EXPECT_TRUE(result.status().IsNonCompliant()) << result.status();
    ++rejected;

    ASSERT_NE(engine_->last_trace(), nullptr);
    bool saw_optimize = false;
    for (const CanonicalSpan& s : engine_->last_trace()->CanonicalSpans()) {
      EXPECT_NE(s.name, "execute") << sql;
      EXPECT_NE(s.name, "ship") << sql;
      EXPECT_NE(s.name, "fragment") << sql;
      saw_optimize |= s.name == "optimize";
    }
    EXPECT_TRUE(saw_optimize);
  }
  // The restricted set must actually bite, or this test shows nothing.
  EXPECT_GT(rejected, 0);
}

#endif  // CGQ_TRACING

}  // namespace
}  // namespace cgq
