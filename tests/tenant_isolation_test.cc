#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/query_service.h"
#include "tpch/tpch.h"

namespace cgq {
namespace {

std::vector<std::string> RenderedRows(const QueryResult& r) {
  std::vector<std::string> out;
  out.reserve(r.rows.size());
  for (const Row& row : r.rows) {
    std::string s;
    for (const Value& v : row) s += v.ToString() + "|";
    out.push_back(std::move(s));
  }
  return out;
}

// Busy for far longer than any admission window in this file (a ~36M-pair
// nested loop), yet stops at the next cancellation point when asked.
constexpr const char* kSlowSql =
    "SELECT COUNT(*) AS pairs FROM lineitem l, orders o "
    "WHERE l.orderkey < o.orderkey";

constexpr const char* kCheapSql =
    "SELECT count(*) AS n FROM nation WHERE regionkey = 1";

void PollUntilInflight(QueryService& service, int64_t n) {
  while (service.stats().inflight < n) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TenantServiceStats StatsFor(QueryService& service, const std::string& name) {
  for (const TenantServiceStats& t : service.tenant_stats()) {
    if (t.name == name) return t;
  }
  ADD_FAILURE() << "no tenant named " << name;
  return {};
}

class TenantIsolationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_.scale_factor = 0.002;
    auto catalog = tpch::BuildCatalog(config_);
    ASSERT_TRUE(catalog.ok()) << catalog.status();
    engine_ = std::make_unique<Engine>(std::move(*catalog),
                                       NetworkModel::DefaultGeo(5));
    ASSERT_TRUE(
        tpch::InstallUnrestrictedPolicies(&engine_->policies()).ok());
    ASSERT_TRUE(
        tpch::GenerateData(engine_->catalog(), config_, &engine_->store())
            .ok());
  }

  tpch::TpchConfig config_;
  std::unique_ptr<Engine> engine_;
};

// Unknown tokens are refused with kPermissionDenied (not kNotFound: a
// caller must not learn whether its guess was close), known tokens open a
// session scoped to their tenant, and the empty token stays reserved.
TEST_F(TenantIsolationTest, TokenAuthenticationScopesSessions) {
  QueryService service(engine_.get());
  ASSERT_TRUE(service.tenants().Register("acme", "tok-acme").ok());

  auto bad = service.OpenSession("no-such-token");
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsPermissionDenied()) << bad.status();

  auto good = service.OpenSession("tok-acme");
  ASSERT_TRUE(good.ok()) << good.status();
  EXPECT_EQ(good->tenant_name(), "acme");
  EXPECT_NE(good->tenant_id(), kDefaultTenantId);

  EXPECT_EQ(service.OpenSession().tenant_id(), kDefaultTenantId);
  auto dup = service.tenants().Register("other", "tok-acme");
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
  auto empty = service.tenants().Register("other", "");
  EXPECT_TRUE(empty.status().IsInvalidArgument());
}

// A tenant that exhausts its queue quota is rejected with
// kResourceExhausted while other tenants' submissions keep being
// admitted and completed.
TEST_F(TenantIsolationTest, QuotaExhaustedTenantDoesNotBlockOthers) {
  ServiceOptions opts;
  opts.max_inflight = 2;
  opts.queue_capacity = 64;
  opts.queue_timeout_ms = 0;
  QueryService service(engine_.get(), opts);

  TenantQuotas capped;
  capped.max_queued = 2;
  ASSERT_TRUE(service.tenants().Register("capped", "tok-c", capped).ok());
  ASSERT_TRUE(service.tenants().Register("free", "tok-f").ok());
  auto capped_s = service.OpenSession("tok-c");
  auto free_s = service.OpenSession("tok-f");
  ASSERT_TRUE(capped_s.ok());
  ASSERT_TRUE(free_s.ok());

  // Occupy both workers so submissions stay queued.
  auto blocker = service.OpenSession();
  auto b1 = blocker.Submit(kSlowSql);
  auto b2 = blocker.Submit(kSlowSql);
  ASSERT_TRUE(b1.ok());
  ASSERT_TRUE(b2.ok());
  PollUntilInflight(service, 2);

  auto q1 = capped_s->Submit(kCheapSql);
  auto q2 = capped_s->Submit(kCheapSql);
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  auto q3 = capped_s->Submit(kCheapSql);  // over max_queued = 2
  ASSERT_FALSE(q3.ok());
  EXPECT_TRUE(q3.status().IsResourceExhausted()) << q3.status();
  EXPECT_NE(q3.status().message().find("capped"), std::string::npos)
      << "rejection must name the tenant quota, got: " << q3.status();

  // The other tenant is untouched by its neighbor's full queue.
  auto f1 = free_s->Submit(kCheapSql);
  ASSERT_TRUE(f1.ok()) << f1.status();

  // Unblock the workers; everything admitted completes.
  ASSERT_TRUE(blocker.Cancel(*b1).ok());
  ASSERT_TRUE(blocker.Cancel(*b2).ok());
  (void)blocker.Wait(*b1);
  (void)blocker.Wait(*b2);
  EXPECT_TRUE(capped_s->Wait(*q1).ok());
  EXPECT_TRUE(capped_s->Wait(*q2).ok());
  EXPECT_TRUE(free_s->Wait(*f1).ok());

  TenantServiceStats cs = StatsFor(service, "capped");
  EXPECT_EQ(cs.rejected, 1);
  EXPECT_EQ(cs.completed, 2);
  EXPECT_EQ(StatsFor(service, "free").rejected, 0);
  EXPECT_EQ(StatsFor(service, "free").completed, 1);
}

// An inflight-capped tenant never holds more than its cap of the workers,
// even when it is the only one with queued work — the remaining workers
// stay available to others.
TEST_F(TenantIsolationTest, InflightCapLimitsConcurrency) {
  ServiceOptions opts;
  opts.max_inflight = 3;
  opts.queue_timeout_ms = 0;
  QueryService service(engine_.get(), opts);
  TenantQuotas one;
  one.max_inflight = 1;
  ASSERT_TRUE(service.tenants().Register("narrow", "tok-n", one).ok());
  auto narrow = service.OpenSession("tok-n");
  ASSERT_TRUE(narrow.ok());

  std::vector<QueryService::TicketId> slow;
  for (int i = 0; i < 3; ++i) {
    auto t = narrow->Submit(kSlowSql);
    ASSERT_TRUE(t.ok());
    slow.push_back(*t);
  }
  PollUntilInflight(service, 1);
  // Give the scheduler every chance to (wrongly) dispatch more.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(service.stats().inflight, 1);
  EXPECT_EQ(StatsFor(service, "narrow").inflight, 1);

  // A free worker picks up another tenant's query immediately.
  auto other = service.OpenSession();
  auto t = other.Submit(kCheapSql);
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(other.Wait(*t).ok());

  for (QueryService::TicketId id : slow) {
    ASSERT_TRUE(narrow->Cancel(id).ok());
    (void)narrow->Wait(id);
  }
}

// Weighted-fair scheduling is starvation-free under a 100:1 hot/cold
// load mix: a cold tenant's single query runs long before the hot
// tenant's backlog drains, instead of queueing behind all of it as the
// old global FIFO would.
TEST_F(TenantIsolationTest, ColdTenantIsNotStarvedByHotBacklog) {
  ServiceOptions opts;
  opts.max_inflight = 1;  // one worker makes dispatch order observable
  opts.queue_capacity = 256;
  opts.queue_timeout_ms = 0;
  QueryService service(engine_.get(), opts);
  ASSERT_TRUE(service.tenants().Register("hot", "tok-h").ok());
  ASSERT_TRUE(service.tenants().Register("cold", "tok-c").ok());
  auto hot = service.OpenSession("tok-h");
  auto cold = service.OpenSession("tok-c");
  ASSERT_TRUE(hot.ok());
  ASSERT_TRUE(cold.ok());

  // Hold the worker so the backlog forms while nothing dispatches.
  auto blocker = service.OpenSession();
  auto b = blocker.Submit(kSlowSql);
  ASSERT_TRUE(b.ok());
  PollUntilInflight(service, 1);

  std::vector<QueryService::TicketId> hot_tickets;
  for (int i = 0; i < 100; ++i) {
    auto t = hot->Submit(kCheapSql);
    ASSERT_TRUE(t.ok()) << t.status();
    hot_tickets.push_back(*t);
  }
  auto cold_ticket = cold->Submit(kCheapSql);
  ASSERT_TRUE(cold_ticket.ok());

  ASSERT_TRUE(blocker.Cancel(*b).ok());
  (void)blocker.Wait(*b);

  ASSERT_TRUE(cold->Wait(*cold_ticket).ok());
  // Equal weights: the scheduler interleaves the two tenants, so when
  // the cold query finished, the hot backlog was still nearly intact. A
  // FIFO would have completed all 100 hot queries first.
  TenantServiceStats hs = StatsFor(service, "hot");
  EXPECT_LT(hs.completed, 50)
      << "cold tenant waited behind the hot backlog";

  for (QueryService::TicketId id : hot_tickets) {
    EXPECT_TRUE(hot->Wait(id).ok());
  }
  EXPECT_EQ(StatsFor(service, "hot").completed, 100);
  EXPECT_EQ(StatsFor(service, "cold").completed, 1);
}

// Weights set the capacity ratio: with one worker and a 4:1 weight
// split, the heavy tenant gets ~4 dispatches per light dispatch while
// both have work queued.
TEST_F(TenantIsolationTest, WeightsShapeTheDispatchRatio) {
  ServiceOptions opts;
  opts.max_inflight = 1;
  opts.queue_capacity = 256;
  opts.queue_timeout_ms = 0;
  QueryService service(engine_.get(), opts);
  TenantQuotas heavy_q;
  heavy_q.weight = 4;
  ASSERT_TRUE(service.tenants().Register("heavy", "tok-h", heavy_q).ok());
  ASSERT_TRUE(service.tenants().Register("light", "tok-l").ok());
  auto heavy = service.OpenSession("tok-h");
  auto light = service.OpenSession("tok-l");
  ASSERT_TRUE(heavy.ok());
  ASSERT_TRUE(light.ok());

  auto blocker = service.OpenSession();
  auto b = blocker.Submit(kSlowSql);
  ASSERT_TRUE(b.ok());
  PollUntilInflight(service, 1);

  // Heavy's 40th query is the slow one: per-tenant FIFO means it is
  // dispatched exactly when heavy's backlog is otherwise drained, and
  // while it occupies the single worker the light tenant's counters are
  // frozen — the measurement below cannot race with further dispatches.
  std::vector<QueryService::TicketId> heavy_t, light_t;
  for (int i = 0; i < 39; ++i) {
    auto t = heavy->Submit(kCheapSql);
    ASSERT_TRUE(t.ok());
    heavy_t.push_back(*t);
  }
  auto heavy_slow = heavy->Submit(kSlowSql);
  ASSERT_TRUE(heavy_slow.ok());
  for (int i = 0; i < 40; ++i) {
    auto t = light->Submit(kCheapSql);
    ASSERT_TRUE(t.ok());
    light_t.push_back(*t);
  }
  ASSERT_TRUE(blocker.Cancel(*b).ok());
  (void)blocker.Wait(*b);

  // Wait until heavy's last (slow) query holds the worker, then read:
  // the light tenant should have seen about 10 of the ~50 dispatches so
  // far (40 / weight 4), certainly nowhere near its full 40.
  while (StatsFor(service, "heavy").scheduled < 40) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  TenantServiceStats ls = StatsFor(service, "light");
  EXPECT_GE(ls.scheduled, 5) << "light tenant was starved";
  EXPECT_LE(ls.scheduled, 25)
      << "weights had no effect (FIFO-like interleaving)";

  ASSERT_TRUE(heavy->Cancel(*heavy_slow).ok());
  (void)heavy->Wait(*heavy_slow);
  for (QueryService::TicketId id : heavy_t) {
    ASSERT_TRUE(heavy->Wait(id).ok());
  }
  for (QueryService::TicketId id : light_t) {
    EXPECT_TRUE(light->Wait(id).ok());
  }
}

// Per-tenant concurrent traffic returns exactly the rows a sequential
// run of the same queries produces, on both the row and the vectorized
// backend — admission control must never change results.
TEST_F(TenantIsolationTest, ConcurrentMatchesSequentialPerTenant) {
  const std::vector<std::string> sqls = {
      "SELECT count(*) AS n FROM nation WHERE regionkey = 1",
      "SELECT name FROM customer WHERE custkey < 20",
      "SELECT count(*) AS n, sum(totalprice) AS s FROM orders "
      "WHERE custkey < 100",
      "SELECT name FROM supplier WHERE nationkey IN (1, 7, 13)",
  };
  for (ExecMode mode : {ExecMode::kRow, ExecMode::kVector}) {
    SCOPED_TRACE(ExecModeToString(mode));
    engine_->set_exec_mode(mode);
    std::vector<std::vector<std::string>> baseline;
    for (const std::string& sql : sqls) {
      auto r = engine_->Run(sql);
      ASSERT_TRUE(r.ok()) << sql << ": " << r.status();
      baseline.push_back(RenderedRows(*r));
    }

    ServiceOptions opts;
    opts.max_inflight = 4;
    opts.queue_capacity = 256;
    QueryService service(engine_.get(), opts);
    ASSERT_TRUE(service.tenants().Register("a", "tok-a").ok());
    ASSERT_TRUE(service.tenants().Register("b", "tok-b").ok());

    constexpr int kRounds = 5;
    std::vector<std::thread> clients;
    std::vector<Status> failures(2, Status::OK());
    for (int c = 0; c < 2; ++c) {
      clients.emplace_back([&, c] {
        auto session =
            service.OpenSession(c == 0 ? "tok-a" : "tok-b");
        if (!session.ok()) {
          failures[c] = session.status();
          return;
        }
        for (int round = 0; round < kRounds; ++round) {
          for (size_t i = 0; i < sqls.size(); ++i) {
            auto r = session->Run(sqls[i]);
            if (!r.ok()) {
              failures[c] = r.status();
              return;
            }
            if (RenderedRows(*r) != baseline[i]) {
              failures[c] = Status::Internal(
                  "result mismatch on " + sqls[i]);
              return;
            }
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
    for (const Status& s : failures) EXPECT_TRUE(s.ok()) << s;

    const int per_tenant = kRounds * static_cast<int>(sqls.size());
    EXPECT_EQ(StatsFor(service, "a").completed, per_tenant);
    EXPECT_EQ(StatsFor(service, "b").completed, per_tenant);
  }
}

}  // namespace
}  // namespace cgq
