#include <gtest/gtest.h>

#include <algorithm>

#include "core/engine.h"

namespace cgq {
namespace {

// Two-site engine with small hand-written tables; queries run end-to-end
// through the engine so each executor operator is exercised with real
// plans.
class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Catalog catalog;
    ASSERT_TRUE(catalog.mutable_locations().AddLocation("east").ok());
    ASSERT_TRUE(catalog.mutable_locations().AddLocation("west").ok());

    TableDef t;
    t.name = "sales";
    t.schema = Schema({{"id", DataType::kInt64},
                       {"region", DataType::kString},
                       {"amount", DataType::kDouble},
                       {"qty", DataType::kInt64}});
    t.fragments = {TableFragment{0, 1.0}};
    t.stats.row_count = 6;
    ASSERT_TRUE(catalog.AddTable(t).ok());

    TableDef r;
    r.name = "regions";
    r.schema = Schema({{"name", DataType::kString},
                       {"manager", DataType::kString}});
    r.fragments = {TableFragment{1, 1.0}};
    r.stats.row_count = 3;
    ASSERT_TRUE(catalog.AddTable(r).ok());

    TableDef f;  // fragmented table
    f.name = "events";
    f.schema = Schema({{"sale_id", DataType::kInt64},
                       {"kind", DataType::kString}});
    f.fragments = {TableFragment{0, 0.5}, TableFragment{1, 0.5}};
    f.stats.row_count = 4;
    ASSERT_TRUE(catalog.AddTable(f).ok());

    engine_ = std::make_unique<Engine>(std::move(catalog),
                                       NetworkModel::DefaultGeo(2));
    for (const char* t2 : {"sales", "regions", "events"}) {
      ASSERT_TRUE(
          engine_->AddPolicy("east", std::string("ship * from ") + t2 +
                                         " to *")
              .ok());
      ASSERT_TRUE(
          engine_->AddPolicy("west", std::string("ship * from ") + t2 +
                                         " to *")
              .ok());
    }

    engine_->store().Put(
        0, "sales",
        {{Value::Int64(1), Value::String("na"), Value::Double(10.0),
          Value::Int64(2)},
         {Value::Int64(2), Value::String("eu"), Value::Double(20.0),
          Value::Int64(1)},
         {Value::Int64(3), Value::String("na"), Value::Double(30.0),
          Value::Int64(4)},
         {Value::Int64(4), Value::String("eu"), Value::Null(),
          Value::Int64(3)},
         {Value::Int64(5), Value::String("apac"), Value::Double(50.0),
          Value::Int64(5)},
         {Value::Int64(6), Value::Null(), Value::Double(60.0),
          Value::Int64(6)}});
    engine_->store().Put(1, "regions",
                         {{Value::String("na"), Value::String("ann")},
                          {Value::String("eu"), Value::String("bob")},
                          {Value::String("apac"), Value::String("carol")}});
    engine_->store().Put(0, "events",
                         {{Value::Int64(1), Value::String("view")},
                          {Value::Int64(2), Value::String("click")}});
    engine_->store().Put(1, "events",
                         {{Value::Int64(1), Value::String("click")},
                          {Value::Int64(9), Value::String("view")}});
  }

  QueryResult Run(const std::string& sql) {
    auto r = engine_->Run(sql);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status();
    return r.ok() ? *r : QueryResult{};
  }

  std::unique_ptr<Engine> engine_;
};

TEST_F(ExecutorTest, ScanAndProject) {
  QueryResult r = Run("SELECT id FROM sales");
  EXPECT_EQ(r.rows.size(), 6u);
  EXPECT_EQ(r.column_names, (std::vector<std::string>{"id"}));
}

TEST_F(ExecutorTest, FilterComparison) {
  QueryResult r = Run("SELECT id FROM sales WHERE amount > 25");
  // amount NULL rows are filtered out; 30, 50, 60 qualify.
  EXPECT_EQ(r.rows.size(), 3u);
}

TEST_F(ExecutorTest, FilterOnString) {
  QueryResult r = Run("SELECT id FROM sales WHERE region = 'eu'");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(ExecutorTest, HashJoin) {
  QueryResult r = Run(
      "SELECT s.id, r.manager FROM sales s, regions r "
      "WHERE s.region = r.name");
  // NULL region does not join; 5 rows match.
  EXPECT_EQ(r.rows.size(), 5u);
}

TEST_F(ExecutorTest, JoinWithResidualPredicate) {
  QueryResult r = Run(
      "SELECT s.id FROM sales s, regions r "
      "WHERE s.region = r.name AND s.amount > 15");
  EXPECT_EQ(r.rows.size(), 3u);  // 20(eu), 30(na), 50(apac)
}

TEST_F(ExecutorTest, NonEquiJoinFallsBackToNestedLoop) {
  QueryResult r = Run(
      "SELECT s.id, e.kind FROM sales s, events e "
      "WHERE s.id < e.sale_id");
  // events sale_ids: 1,2,1,9 ; each sales.id < 9 contributes.
  // id<1: none; id<2: id 1; id<9: ids 1..6 (one event) => 1 + 6 = 7.
  EXPECT_EQ(r.rows.size(), 7u);
}

TEST_F(ExecutorTest, GlobalAggregate) {
  QueryResult r = Run("SELECT SUM(amount) AS total, COUNT(amount) AS n "
                      "FROM sales");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsDouble(), 170.0);  // NULL skipped
  EXPECT_EQ(r.rows[0][1].int64(), 5);
}

TEST_F(ExecutorTest, GroupByWithNullGroup) {
  QueryResult r = Run(
      "SELECT region, SUM(qty) AS q FROM sales GROUP BY region");
  // Groups: na, eu, apac, NULL.
  EXPECT_EQ(r.rows.size(), 4u);
}

TEST_F(ExecutorTest, AggregateOverExpression) {
  QueryResult r =
      Run("SELECT SUM(amount * qty) AS weighted FROM sales "
          "WHERE amount < 25");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsDouble(), 10.0 * 2 + 20.0 * 1);
}

TEST_F(ExecutorTest, EmptyGlobalAggregateYieldsOneRow) {
  QueryResult r = Run("SELECT SUM(amount) AS s FROM sales WHERE id > 100");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_TRUE(r.rows[0][0].is_null());
}

TEST_F(ExecutorTest, UnionOverFragments) {
  QueryResult r = Run("SELECT e.kind FROM events e, sales s "
                      "WHERE e.sale_id = s.id");
  // events rows with sale_id in {1,2,1}: 3 matches (9 doesn't join).
  EXPECT_EQ(r.rows.size(), 3u);
}

TEST_F(ExecutorTest, OrderByDescAndLimit) {
  QueryResult r =
      Run("SELECT id, amount FROM sales WHERE amount > 0 "
          "ORDER BY amount DESC LIMIT 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].int64(), 6);
  EXPECT_EQ(r.rows[1][0].int64(), 5);
}

TEST_F(ExecutorTest, OrderByAscPutsNullsFirst) {
  QueryResult r = Run("SELECT id, amount FROM sales ORDER BY amount");
  ASSERT_EQ(r.rows.size(), 6u);
  EXPECT_TRUE(r.rows[0][1].is_null());
}

TEST_F(ExecutorTest, ShipMetricsAccumulate) {
  QueryResult r = Run(
      "SELECT s.id, r.manager FROM sales s, regions r "
      "WHERE s.region = r.name");
  EXPECT_GE(r.metrics.ships, 1);
  EXPECT_GT(r.metrics.bytes_shipped, 0);
  EXPECT_GT(r.metrics.network_ms, 0);
  EXPECT_GT(r.metrics.rows_scanned, 0);
}

TEST_F(ExecutorTest, SingleSiteQueryShipsNothing) {
  QueryResult r = Run("SELECT id FROM sales WHERE amount > 0");
  EXPECT_EQ(r.metrics.ships, 0);
  EXPECT_EQ(r.metrics.bytes_shipped, 0);
}

TEST_F(ExecutorTest, InAndLikeAndBetween) {
  EXPECT_EQ(Run("SELECT id FROM sales WHERE region IN ('na', 'apac')")
                .rows.size(),
            3u);
  EXPECT_EQ(Run("SELECT id FROM sales WHERE region LIKE 'e%'").rows.size(),
            2u);
  EXPECT_EQ(
      Run("SELECT id FROM sales WHERE amount BETWEEN 15 AND 35").rows.size(),
      2u);
}

TEST_F(ExecutorTest, MinMaxAvg) {
  QueryResult r = Run(
      "SELECT MIN(amount) AS lo, MAX(amount) AS hi, AVG(qty) AS aq "
      "FROM sales");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0][0].AsDouble(), 10.0);
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsDouble(), 60.0);
  EXPECT_DOUBLE_EQ(r.rows[0][2].dbl(), 21.0 / 6.0);
}

}  // namespace
}  // namespace cgq
