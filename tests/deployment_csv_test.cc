#include <gtest/gtest.h>

#include "catalog/deployment.h"
#include "core/engine.h"
#include "exec/analyze.h"
#include "exec/csv.h"
#include "types/date.h"

namespace cgq {
namespace {

constexpr const char* kDeployment = R"(
# A two-region deployment.
location berlin
location tokyo

table users @ berlin : id int64, name string, email string, signup date
table clicks @ tokyo : user_id int64, url string, ms int64
table events @ berlin 0.5, tokyo 0.5 : id int64, kind string
rows users 2000

policy berlin : ship id, name from users to tokyo
policy tokyo  : ship * from clicks to *
policy berlin : deny email from users to *
)";

TEST(DeploymentTest, ParsesLocationsTablesAndPolicies) {
  auto d = ParseDeployment(kDeployment);
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_EQ(d->catalog.locations().num_locations(), 2u);
  auto users = d->catalog.GetTable("users");
  ASSERT_TRUE(users.ok());
  EXPECT_EQ((*users)->schema.num_columns(), 4u);
  EXPECT_EQ((*users)->schema.column(3).type, DataType::kDate);
  EXPECT_DOUBLE_EQ((*users)->stats.row_count, 2000);
  auto events = d->catalog.GetTable("events");
  ASSERT_TRUE(events.ok());
  EXPECT_EQ((*events)->fragments.size(), 2u);
  EXPECT_DOUBLE_EQ((*events)->fragments[0].row_fraction, 0.5);
  EXPECT_EQ(d->policies.size(), 3u);
}

TEST(DeploymentTest, InstallExpandsDenyRules) {
  auto d = ParseDeployment(kDeployment);
  ASSERT_TRUE(d.ok());
  PolicyCatalog policies(&d->catalog);
  ASSERT_TRUE(InstallDeploymentPolicies(*d, &policies).ok());
  // berlin: the ship expression + the closed-world complement of the deny
  // (one expression covering everything except email).
  auto berlin = d->catalog.locations().GetId("berlin");
  bool found_complement = false;
  for (const PolicyExpression& e : policies.For(*berlin)) {
    if (e.table == "users" && !e.HasShipAttribute("email") &&
        e.HasShipAttribute("signup")) {
      found_complement = true;
    }
  }
  EXPECT_TRUE(found_complement);
}

TEST(DeploymentTest, ReplicatedTables) {
  auto d = ParseDeployment(
      "location a\nlocation b\n"
      "replicated table rates @ a, b : cur string, rate double\n");
  ASSERT_TRUE(d.ok()) << d.status();
  auto rates = d->catalog.GetTable("rates");
  ASSERT_TRUE(rates.ok());
  EXPECT_TRUE((*rates)->replicated);
  ASSERT_EQ((*rates)->fragments.size(), 2u);
  EXPECT_DOUBLE_EQ((*rates)->fragments[0].row_fraction, 1.0);
  EXPECT_DOUBLE_EQ((*rates)->fragments[1].row_fraction, 1.0);
}

TEST(DeploymentTest, WriteRoundTrips) {
  auto d = ParseDeployment(kDeployment);
  ASSERT_TRUE(d.ok());
  PolicyCatalog policies(&d->catalog);
  ASSERT_TRUE(InstallDeploymentPolicies(*d, &policies).ok());
  std::string dumped = WriteDeployment(d->catalog, policies);

  auto again = ParseDeployment(dumped);
  ASSERT_TRUE(again.ok()) << again.status() << "\n" << dumped;
  EXPECT_EQ(again->catalog.locations().num_locations(), 2u);
  EXPECT_EQ(again->catalog.TableNames(), d->catalog.TableNames());
  auto users = again->catalog.GetTable("users");
  EXPECT_DOUBLE_EQ((*users)->stats.row_count, 2000);
  PolicyCatalog again_policies(&again->catalog);
  ASSERT_TRUE(InstallDeploymentPolicies(*again, &again_policies).ok())
      << dumped;
  EXPECT_EQ(again_policies.TotalCount(), policies.TotalCount());
}

TEST(DeploymentTest, ParseErrorsCarryLineNumbers) {
  auto missing_colon = ParseDeployment("location a\ntable t @ a id int64");
  ASSERT_FALSE(missing_colon.ok());
  EXPECT_NE(missing_colon.status().message().find("line 2"),
            std::string::npos);
  EXPECT_FALSE(ParseDeployment("flub blarg").ok());
  EXPECT_FALSE(
      ParseDeployment("location a\ntable t @ nowhere : x int64").ok());
  EXPECT_FALSE(
      ParseDeployment("location a\ntable t @ a : x blobtype").ok());
}

TEST(CsvTest, TypedLoad) {
  auto d = ParseDeployment(kDeployment);
  ASSERT_TRUE(d.ok());
  TableStore store;
  auto loaded = LoadCsv(d->catalog, "users", 0,
                        "1,ada,ada@x.test,2021-05-01\n"
                        "2,\"bob, jr\",bob@x.test,2022-01-15\n"
                        "3,carol,,2020-07-30\n",
                        &store);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(*loaded, 3u);
  auto rows = store.Get(0, "users");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((**rows)[1][1].str(), "bob, jr");  // quoted comma
  EXPECT_TRUE((**rows)[2][2].is_null());       // empty unquoted = NULL
  EXPECT_EQ((**rows)[0][3].int64(), DaysFromCivil(2021, 5, 1));
}

TEST(CsvTest, QuotedEmptyVersusNull) {
  auto d = ParseDeployment(kDeployment);
  TableStore store;
  auto loaded =
      LoadCsv(d->catalog, "users", 0, "1,\"\",x@y.test,2021-01-01\n",
              &store);
  ASSERT_TRUE(loaded.ok());
  auto rows = store.Get(0, "users");
  EXPECT_TRUE((**rows)[0][1].is_string());
  EXPECT_EQ((**rows)[0][1].str(), "");
}

TEST(CsvTest, EscapedQuotes) {
  auto d = ParseDeployment(kDeployment);
  TableStore store;
  auto loaded = LoadCsv(d->catalog, "users", 0,
                        "1,\"say \"\"hi\"\"\",a@b.test,2021-01-01\n",
                        &store);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  auto rows = store.Get(0, "users");
  EXPECT_EQ((**rows)[0][1].str(), "say \"hi\"");
}

TEST(CsvTest, Errors) {
  auto d = ParseDeployment(kDeployment);
  TableStore store;
  // Wrong arity.
  EXPECT_FALSE(LoadCsv(d->catalog, "users", 0, "1,a\n", &store).ok());
  // Bad int.
  auto bad = LoadCsv(d->catalog, "users", 0, "xx,a,b,2021-01-01\n", &store);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 1"), std::string::npos);
  // Wrong location for the fragment.
  EXPECT_FALSE(
      LoadCsv(d->catalog, "users", 1, "1,a,b,2021-01-01\n", &store).ok());
}

TEST(DeploymentTest, EndToEndQueryOverCsvData) {
  auto d = ParseDeployment(kDeployment);
  ASSERT_TRUE(d.ok());
  Engine engine(std::move(d->catalog), NetworkModel::DefaultGeo(2));
  // Re-parse policies against the engine's catalog copy.
  ASSERT_TRUE(InstallDeploymentPolicies(
                  Deployment{Catalog(engine.catalog()), d->policies},
                  &engine.policies())
                  .ok());
  ASSERT_TRUE(LoadCsv(engine.catalog(), "users", 0,
                      "1,ada,a@x.test,2021-05-01\n"
                      "2,bob,b@x.test,2022-01-15\n",
                      &engine.store())
                  .ok());
  ASSERT_TRUE(LoadCsv(engine.catalog(), "clicks", 1,
                      "1,/home,120\n1,/buy,80\n2,/home,95\n",
                      &engine.store())
                  .ok());
  ASSERT_TRUE(AnalyzeTable(engine.store(), "users", &engine.catalog()).ok());

  auto ok = engine.Run(
      "SELECT u.name, c.url FROM users u, clicks c WHERE u.id = c.user_id");
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(ok->rows.size(), 3u);

  // email is denied everywhere, but clicks may travel: the optimizer pins
  // the join to berlin so email never crosses a border.
  auto pinned = engine.Optimize(
      "SELECT u.email, c.url FROM users u, clicks c "
      "WHERE u.id = c.user_id");
  ASSERT_TRUE(pinned.ok()) << pinned.status();
  EXPECT_TRUE(pinned->compliant);
  EXPECT_EQ(pinned->result_location,
            *engine.catalog().locations().GetId("berlin"));

  // Once clicks are restricted to tokyo as well, no site can see both
  // sides: rejected.
  engine.policies().Clear();
  ASSERT_TRUE(InstallDeploymentPolicies(
                  Deployment{Catalog(engine.catalog()),
                             {{"berlin", "ship id, name from users to tokyo"},
                              {"berlin", "deny email from users to *"}}},
                  &engine.policies())
                  .ok());
  auto rejected = engine.Run(
      "SELECT u.email, c.url FROM users u, clicks c "
      "WHERE u.id = c.user_id");
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsNonCompliant());
}

}  // namespace
}  // namespace cgq
