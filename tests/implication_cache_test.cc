// The implication-result cache must be a transparent memo: same verdicts
// as the direct Goldstein-Larson test, under any conjunct order, any
// premise/conclusion role of a predicate, any eviction pressure, and any
// number of concurrent callers.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/optimizer.h"
#include "expr/implication.h"
#include "net/network_model.h"
#include "sql/parser.h"
#include "tpch/tpch.h"
#include "workload/policy_generator.h"

namespace cgq {
namespace {

std::vector<ExprPtr> Pred(const std::string& text) {
  auto r = ParseQuery("SELECT x FROM t WHERE " + text);
  EXPECT_TRUE(r.ok()) << r.status();
  return SplitConjuncts(r->where);
}

// Random conjunction over a tiny column/value domain — small enough that
// premise/conclusion pairs frequently relate, so both verdicts occur.
std::string RandomPredicateText(Rng* rng) {
  static const char* kCols[] = {"a", "b", "c"};
  static const char* kOps[] = {"<", "<=", "=", ">=", ">"};
  int conjuncts = static_cast<int>(rng->Uniform(1, 3));
  std::string out;
  for (int i = 0; i < conjuncts; ++i) {
    if (i > 0) out += " AND ";
    out += kCols[rng->Uniform(0, 2)];
    out += " ";
    out += kOps[rng->Uniform(0, 4)];
    out += " ";
    out += std::to_string(rng->Uniform(0, 12));
  }
  return out;
}

TEST(ImplicationCacheTest, MatchesUncachedOnRandomizedPredicates) {
  Rng rng(2024);
  ImplicationCache cache;
  std::vector<std::vector<ExprPtr>> preds;
  for (int i = 0; i < 40; ++i) preds.push_back(Pred(RandomPredicateText(&rng)));

  int agreements = 0;
  for (int round = 0; round < 2; ++round) {  // cold pass, then warm pass
    for (const auto& premise : preds) {
      for (const auto& conclusion : preds) {
        bool direct = PredicateImplies(premise, conclusion);
        bool cached = cache.Implies(premise, conclusion);
        ASSERT_EQ(direct, cached);
        ++agreements;
      }
    }
  }
  EXPECT_EQ(agreements, 2 * 40 * 40);
  ImplicationCacheStats stats = cache.Stats();
  // The warm pass answers everything from the memo.
  EXPECT_GE(stats.hits, 40 * 40);
  EXPECT_EQ(stats.hits + stats.misses, 2 * 40 * 40);
}

TEST(ImplicationCacheTest, FingerprintIgnoresConjunctOrder) {
  // PredicateImplies treats a predicate as a conjunct *set*; the
  // fingerprint must too, or reordered queries would miss the memo.
  std::vector<ExprPtr> ab = Pred("a > 5 AND b < 10");
  std::vector<ExprPtr> ba = Pred("b < 10 AND a > 5");
  ExprFingerprint fab = FingerprintConjuncts(ab);
  ExprFingerprint fba = FingerprintConjuncts(ba);
  EXPECT_EQ(fab, fba);
  ExprFingerprint other = FingerprintConjuncts(Pred("a > 5 AND b < 11"));
  EXPECT_FALSE(fab == other);
}

TEST(ImplicationCacheTest, FingerprintCollisionSanity) {
  // Thousands of structurally distinct predicates must hash to distinct
  // 128-bit fingerprints (a collision here would silently corrupt
  // compliance verdicts).
  std::set<std::pair<uint64_t, uint64_t>> seen;
  int count = 0;
  for (const char* col : {"a", "b", "c", "d"}) {
    for (const char* op : {"<", "<=", "=", ">=", ">", "<>"}) {
      for (int v = 0; v < 60; ++v) {
        std::string text = std::string(col) + " " + op + " " +
                           std::to_string(v);
        ExprFingerprint fp = FingerprintConjuncts(Pred(text));
        EXPECT_TRUE(seen.emplace(fp.hi, fp.lo).second) << text;
        ++count;
      }
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), count);

  // Value-type tagging: integer 5 and string '5' must not alias.
  EXPECT_FALSE(FingerprintConjuncts(Pred("a = 5")) ==
               FingerprintConjuncts(Pred("a = '5'")));
}

TEST(ImplicationCacheTest, DirectionalKeysDoNotAlias) {
  // (P => Q) and (Q => P) share the same fingerprints in swapped roles;
  // the combined cache key must keep them apart.
  std::vector<ExprPtr> strong = Pred("b > 15");
  std::vector<ExprPtr> weak = Pred("b > 10");
  ImplicationCache cache;
  EXPECT_TRUE(cache.Implies(strong, weak));
  EXPECT_FALSE(cache.Implies(weak, strong));
  // Warm answers stay distinct.
  EXPECT_TRUE(cache.Implies(strong, weak));
  EXPECT_FALSE(cache.Implies(weak, strong));
}

TEST(ImplicationCacheTest, CorrectUnderEvictionPressure) {
  // A capacity far below the working set forces shard flushes; verdicts
  // must still match the direct test.
  Rng rng(7);
  ImplicationCache tiny(/*max_entries=*/32);
  std::vector<std::vector<ExprPtr>> preds;
  for (int i = 0; i < 30; ++i) preds.push_back(Pred(RandomPredicateText(&rng)));
  for (int round = 0; round < 3; ++round) {
    for (const auto& p : preds) {
      for (const auto& c : preds) {
        ASSERT_EQ(PredicateImplies(p, c), tiny.Implies(p, c));
      }
    }
  }
  EXPECT_GT(tiny.Stats().evictions, 0);
}

TEST(ImplicationCacheTest, ThreadedStressMatchesReference) {
  Rng rng(99);
  std::vector<std::vector<ExprPtr>> preds;
  for (int i = 0; i < 24; ++i) preds.push_back(Pred(RandomPredicateText(&rng)));

  // Reference verdicts, computed sequentially without the cache.
  std::vector<std::vector<bool>> expected(preds.size());
  for (size_t i = 0; i < preds.size(); ++i) {
    for (size_t j = 0; j < preds.size(); ++j) {
      expected[i].push_back(PredicateImplies(preds[i], preds[j]));
    }
  }

  ImplicationCache cache;
  std::atomic<int> mismatches{0};
  auto worker = [&](unsigned salt) {
    // Each thread walks the pair matrix in a different order.
    size_t n = preds.size();
    for (size_t step = 0; step < 4 * n * n; ++step) {
      size_t flat = (step * (salt * 2 + 1)) % (n * n);
      size_t i = flat / n, j = flat % n;
      if (cache.Implies(preds[i], preds[j]) != expected[i][j]) {
        mismatches.fetch_add(1);
      }
    }
  };
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < 8; ++t) threads.emplace_back(worker, t);
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ImplicationCacheTest, EvaluatorDecisionsIdenticalAcrossThreadCounts) {
  // End to end: the parallel, cached optimizer must reach bit-identical
  // compliance decisions at every thread count, cache on or off.
  tpch::TpchConfig config;
  config.scale_factor = 10;
  auto catalog = tpch::BuildCatalog(config);
  ASSERT_TRUE(catalog.ok());
  NetworkModel net = NetworkModel::DefaultGeo(5);
  WorkloadProperties properties = TpchWorkloadProperties();
  PolicyGeneratorConfig pconfig;
  pconfig.template_name = "CRA";
  pconfig.count = 120;
  pconfig.seed = 99;
  PolicyExpressionGenerator pgen(&*catalog, &properties, pconfig);
  PolicyCatalog policies(&*catalog);
  ASSERT_TRUE(pgen.InstallInto(&policies).ok());

  for (int q : {2, 3, 10}) {
    std::string sql = *tpch::Query(q);
    OptimizerOptions ref_opts;
    ref_opts.threads = 1;
    ref_opts.implication_cache = false;
    QueryOptimizer reference(&*catalog, &policies, &net, ref_opts);
    auto ref = reference.Optimize(sql);
    ASSERT_TRUE(ref.ok());

    for (int threads : {1, 2, 4, 8}) {
      OptimizerOptions o;
      o.threads = threads;
      o.implication_cache = true;
      QueryOptimizer par(&*catalog, &policies, &net, o);
      auto got = par.Optimize(sql);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(ref->result_location, got->result_location)
          << "Q" << q << " threads=" << threads;
      EXPECT_EQ(ref->compliant, got->compliant);
      EXPECT_DOUBLE_EQ(ref->phase1_cost, got->phase1_cost);
      EXPECT_DOUBLE_EQ(ref->comm_cost_ms, got->comm_cost_ms);
      // Same amount of policy-evaluation work, however it was scheduled.
      EXPECT_EQ(ref->stats.policy.implication_tests,
                got->stats.policy.implication_tests);
      EXPECT_EQ(ref->stats.policy.eta, got->stats.policy.eta);
    }
  }
}

}  // namespace
}  // namespace cgq
