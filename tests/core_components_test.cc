#include <gtest/gtest.h>

#include "core/compliance_checker.h"
#include "core/site_selector.h"
#include "net/network_model.h"
#include "core/engine.h"

namespace cgq {
namespace {

// --- NetworkModel -----------------------------------------------------------

TEST(NetworkModelTest, UniformModel) {
  NetworkModel net(3, 10.0, 0.001);
  EXPECT_DOUBLE_EQ(net.Cost(0, 1, 1000), 10.0 + 1.0);
  EXPECT_DOUBLE_EQ(net.Cost(2, 2, 1000), 0.0);  // intra-site free
}

TEST(NetworkModelTest, DefaultGeoIsAsymmetricAndPositive) {
  NetworkModel net = NetworkModel::DefaultGeo(5);
  for (LocationId i = 0; i < 5; ++i) {
    for (LocationId j = 0; j < 5; ++j) {
      if (i == j) continue;
      EXPECT_GT(net.alpha(i, j), 0) << i << "," << j;
      EXPECT_GT(net.beta(i, j), 0);
    }
  }
  // Europe<->NA is a faster link than Africa<->Asia.
  EXPECT_LT(net.Cost(0, 3, 1 << 20), net.Cost(1, 2, 1 << 20));
}

TEST(NetworkModelTest, ExtendsBeyondFiveRegions) {
  NetworkModel net = NetworkModel::DefaultGeo(20);
  EXPECT_EQ(net.num_locations(), 20u);
  // Sites 0 and 5 share a canonical region: regional link.
  EXPECT_LT(net.Cost(0, 5, 1000), net.Cost(0, 2, 1000));
}

TEST(NetworkModelTest, CostScalesWithBytes) {
  NetworkModel net = NetworkModel::DefaultGeo(5);
  EXPECT_LT(net.Cost(0, 1, 100), net.Cost(0, 1, 1000000));
}

// --- SiteSelector on hand-built plans ---------------------------------------

class SiteSelectorTest : public ::testing::Test {
 protected:
  // Builds Scan(a)@0 JOIN Scan(b)@1 with the given traits on the join.
  PlanNodePtr MakeJoinPlan(LocationSet join_exec) {
    auto scan_a = std::make_shared<PlanNode>(PlanKind::kScan);
    scan_a->table = "a";
    scan_a->scan_location = 0;
    scan_a->exec_trait = LocationSet::Single(0);
    scan_a->est_rows = 1000;
    scan_a->est_row_bytes = 100;

    auto scan_b = std::make_shared<PlanNode>(PlanKind::kScan);
    scan_b->table = "b";
    scan_b->scan_location = 1;
    scan_b->exec_trait = LocationSet::Single(1);
    scan_b->est_rows = 10;
    scan_b->est_row_bytes = 100;

    auto join = std::make_shared<PlanNode>(PlanKind::kJoin);
    join->exec_trait = join_exec;
    join->est_rows = 10;
    join->est_row_bytes = 200;
    join->children() = {scan_a, scan_b};
    return join;
  }
};

TEST_F(SiteSelectorTest, PicksCheaperSide) {
  NetworkModel net(2, 5.0, 0.001);
  SiteSelector selector(&net);
  LocationSet both = LocationSet::AllOf(2);
  auto r = selector.Place(MakeJoinPlan(both));
  ASSERT_TRUE(r.ok());
  // Shipping b (1 KB) to 0 is cheaper than a (100 KB) to 1.
  EXPECT_EQ(r->result_location, 0u);
  EXPECT_NEAR(r->comm_cost_ms, 5.0 + 10 * 100 * 0.001, 1e-9);
}

TEST_F(SiteSelectorTest, RespectsExecTrait) {
  NetworkModel net(2, 5.0, 0.001);
  SiteSelector selector(&net);
  auto r = selector.Place(MakeJoinPlan(LocationSet::Single(1)));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->result_location, 1u);  // forced to the expensive side
}

TEST_F(SiteSelectorTest, InsertsShipNodesOnCrossSiteEdges) {
  NetworkModel net(2, 5.0, 0.001);
  SiteSelector selector(&net);
  auto r = selector.Place(MakeJoinPlan(LocationSet::AllOf(2)));
  ASSERT_TRUE(r.ok());
  int ships = 0;
  std::vector<const PlanNode*> stack = {r->root.get()};
  while (!stack.empty()) {
    const PlanNode* n = stack.back();
    stack.pop_back();
    if (n->kind() == PlanKind::kShip) {
      ++ships;
      EXPECT_EQ(n->ship_to, r->root->location);
    }
    for (const auto& c : n->children()) stack.push_back(c.get());
  }
  EXPECT_EQ(ships, 1);
}

TEST_F(SiteSelectorTest, RequiredResultRestriction) {
  NetworkModel net(2, 5.0, 0.001);
  SiteSelector selector(&net);
  auto r = selector.Place(MakeJoinPlan(LocationSet::AllOf(2)),
                          LocationSet::Single(1));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->result_location, 1u);
}

TEST_F(SiteSelectorTest, EmptyTraitFails) {
  NetworkModel net(2, 5.0, 0.001);
  SiteSelector selector(&net);
  auto r = selector.Place(MakeJoinPlan(LocationSet()));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNonCompliant());
}

// --- Compliance checker on hand-located plans -------------------------------

class CheckerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.mutable_locations().AddLocation("n").ok());
    ASSERT_TRUE(catalog_.mutable_locations().AddLocation("e").ok());
    TableDef t;
    t.name = "cust";
    t.schema = Schema({{"id", DataType::kInt64},
                       {"secret", DataType::kString}});
    t.fragments = {TableFragment{0, 1.0}};
    t.stats.row_count = 10;
    ASSERT_TRUE(catalog_.AddTable(t).ok());
    policies_ = std::make_unique<PolicyCatalog>(&catalog_);
    ASSERT_TRUE(policies_->AddPolicyText("n", "ship id from cust to e").ok());
    evaluator_ =
        std::make_unique<PolicyEvaluator>(&catalog_, policies_.get());
  }

  PlanNodePtr MakeScan() {
    auto scan = std::make_shared<PlanNode>(PlanKind::kScan);
    scan->table = "cust";
    scan->alias = "cust";
    scan->scan_location = 0;
    scan->location = 0;
    scan->outputs = {{0, "id", DataType::kInt64},
                     {1, "secret", DataType::kString}};
    return scan;
  }

  PlanNodePtr WrapShip(PlanNodePtr child, LocationId to) {
    auto ship = std::make_shared<PlanNode>(PlanKind::kShip);
    ship->ship_from = child->location;
    ship->ship_to = to;
    ship->location = to;
    ship->outputs = child->outputs;
    ship->children().push_back(std::move(child));
    return ship;
  }

  Catalog catalog_;
  std::unique_ptr<PolicyCatalog> policies_;
  std::unique_ptr<PolicyEvaluator> evaluator_;
};

TEST_F(CheckerTest, ShippingWholeTableIsFlagged) {
  PlanNodePtr plan = WrapShip(MakeScan(), 1);
  ComplianceReport report =
      CheckCompliance(*plan, *evaluator_, catalog_.locations());
  EXPECT_FALSE(report.compliant);
  ASSERT_FALSE(report.violations.empty());
}

TEST_F(CheckerTest, ShippingMaskedProjectionIsLegal) {
  auto project = std::make_shared<PlanNode>(PlanKind::kProject);
  project->project_ids = {0};
  project->project_names = {"id"};
  project->location = 0;
  project->children().push_back(MakeScan());
  project->outputs = {{0, "id", DataType::kInt64}};
  PlanNodePtr plan = WrapShip(project, 1);
  ComplianceReport report =
      CheckCompliance(*plan, *evaluator_, catalog_.locations());
  EXPECT_TRUE(report.compliant)
      << (report.violations.empty() ? "" : report.violations[0]);
}

TEST_F(CheckerTest, ScanAtWrongLocationIsFlagged) {
  PlanNodePtr scan = MakeScan();
  scan->location = 1;  // claims to run where the data is not
  ComplianceReport report =
      CheckCompliance(*scan, *evaluator_, catalog_.locations());
  EXPECT_FALSE(report.compliant);
}

// --- Engine facade -----------------------------------------------------------

TEST(EngineTest, RejectBeforeDataMoves) {
  Catalog catalog;
  (void)*catalog.mutable_locations().AddLocation("p");
  (void)*catalog.mutable_locations().AddLocation("q");
  TableDef t;
  t.name = "vault";
  t.schema = Schema({{"k", DataType::kInt64}});
  t.fragments = {TableFragment{0, 1.0}};
  t.stats.row_count = 1;
  (void)catalog.AddTable(t);
  TableDef u;
  u.name = "pub";
  u.schema = Schema({{"k", DataType::kInt64}});
  u.fragments = {TableFragment{1, 1.0}};
  u.stats.row_count = 1;
  (void)catalog.AddTable(u);

  Engine engine(std::move(catalog), NetworkModel::DefaultGeo(2));
  // No policies at all: vault cannot leave p, pub cannot leave q.
  auto r = engine.Run(
      "SELECT vault.k FROM vault, pub WHERE vault.k = pub.k");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNonCompliant());

  // Single-site queries still work without any policy.
  engine.store().Put(0, "vault", {{Value::Int64(7)}});
  auto local = engine.Run("SELECT k FROM vault");
  ASSERT_TRUE(local.ok()) << local.status();
  EXPECT_EQ(local->rows.size(), 1u);
}

}  // namespace
}  // namespace cgq
