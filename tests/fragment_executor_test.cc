#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <tuple>
#include <vector>

#include "core/engine.h"
#include "exec/executor.h"
#include "exec/fragmenter.h"
#include "net/network_model.h"
#include "tpch/tpch.h"
#include "workload/query_generator.h"

namespace cgq {
namespace {

// Shared fixture state: generating TPC-H data once keeps the sweep fast.
struct SharedTpch {
  SharedTpch() {
    config.scale_factor = 0.002;
    catalog = std::make_unique<Catalog>(*tpch::BuildCatalog(config));
    net = std::make_unique<NetworkModel>(NetworkModel::DefaultGeo(5));
    store = std::make_unique<TableStore>();
    CGQ_CHECK(tpch::GenerateData(*catalog, config, store.get()).ok());
  }
  tpch::TpchConfig config;
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<NetworkModel> net;
  std::unique_ptr<TableStore> store;
};

SharedTpch& Shared() {
  static SharedTpch* s = new SharedTpch();
  return *s;
}

// Full-precision row serialization: the fragment backend must reproduce the
// row interpreter byte for byte, order included.
std::vector<std::string> ExactRows(const QueryResult& r) {
  std::vector<std::string> rows;
  rows.reserve(r.rows.size());
  for (const Row& row : r.rows) {
    std::string s;
    for (const Value& v : row) {
      if (v.is_null()) {
        s += "NULL|";
      } else if (v.is_double()) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g|", v.dbl());
        s += buf;
      } else {
        s += v.ToString() + "|";
      }
    }
    rows.push_back(std::move(s));
  }
  return rows;
}

// The batch-size / thread-count grid every query is checked against.
std::vector<ExecutorOptions> FragmentConfigs() {
  std::vector<ExecutorOptions> configs;
  for (int batch : {1, 7, 1024}) {
    for (int threads : {1, 4}) {
      ExecutorOptions o;
      o.mode = ExecMode::kFragment;
      o.batch_size = batch;
      o.threads = threads;
      configs.push_back(o);
    }
  }
  return configs;
}

std::string Describe(const ExecutorOptions& o) {
  return std::string("mode=") + ExecModeToString(o.mode) +
         " batch_size=" + std::to_string(o.batch_size) +
         " threads=" + std::to_string(o.threads);
}

// Runs `q` under both backends (the fragmented one at every grid point) and
// asserts identical rows and ship metrics.
void CheckEquivalence(const SharedTpch& shared, const OptimizedQuery& q,
                      const std::string& label) {
  Executor row_exec(shared.store.get(), shared.net.get());
  auto row = row_exec.Execute(q);
  ASSERT_TRUE(row.ok()) << label << ": " << row.status();
  std::vector<std::string> expected = ExactRows(*row);

  for (const ExecutorOptions& o : FragmentConfigs()) {
    SCOPED_TRACE(label + " [" + Describe(o) + "]");
    Executor frag_exec(shared.store.get(), shared.net.get(), o);
    auto frag = frag_exec.Execute(q);
    ASSERT_TRUE(frag.ok()) << frag.status();

    EXPECT_EQ(frag->column_names, row->column_names);
    EXPECT_EQ(ExactRows(*frag), expected);
    EXPECT_EQ(frag->metrics.ships, row->metrics.ships);
    EXPECT_EQ(frag->metrics.rows_shipped, row->metrics.rows_shipped);
    EXPECT_EQ(frag->metrics.bytes_shipped, row->metrics.bytes_shipped);
    EXPECT_EQ(frag->metrics.rows_scanned, row->metrics.rows_scanned);
    EXPECT_NEAR(frag->metrics.network_ms, row->metrics.network_ms,
                1e-6 * (1.0 + row->metrics.network_ms));

    // Per-edge breakdowns match the row backend's SHIP post-order.
    ASSERT_EQ(frag->metrics.edges.size(), row->metrics.edges.size());
    for (size_t i = 0; i < frag->metrics.edges.size(); ++i) {
      EXPECT_EQ(frag->metrics.edges[i].from, row->metrics.edges[i].from);
      EXPECT_EQ(frag->metrics.edges[i].to, row->metrics.edges[i].to);
      EXPECT_EQ(frag->metrics.edges[i].rows, row->metrics.edges[i].rows);
      EXPECT_EQ(frag->metrics.edges[i].bytes, row->metrics.edges[i].bytes);
    }

    // One fragment per SHIP edge plus the top fragment.
    EXPECT_EQ(frag->metrics.fragments.size(),
              frag->metrics.edges.size() + 1);
  }
}

// (policy set, query number) sweep over the TPC-H workload.
class FragmentEquivalence
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(FragmentEquivalence, MatchesRowBackendAcrossGrid) {
  const auto& [set, qnum] = GetParam();
  SharedTpch& shared = Shared();
  PolicyCatalog policies(shared.catalog.get());
  ASSERT_TRUE(tpch::InstallPolicySet(set, &policies).ok());

  QueryOptimizer optimizer(shared.catalog.get(), &policies, shared.net.get(),
                           OptimizerOptions());
  std::string sql = *tpch::Query(qnum);
  auto q = optimizer.Optimize(sql);
  ASSERT_TRUE(q.ok()) << set << "/Q" << qnum << ": " << q.status();

  CheckEquivalence(shared, *q,
                   std::string(set) + "/Q" + std::to_string(qnum));
}

std::vector<std::tuple<const char*, int>> AllVariants() {
  std::vector<std::tuple<const char*, int>> out;
  for (const char* set : {"T", "CR"}) {
    for (int q : tpch::QueryNumbers()) out.emplace_back(set, q);
    for (int q : tpch::ExtendedQueryNumbers()) out.emplace_back(set, q);
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    TpchWorkload, FragmentEquivalence, ::testing::ValuesIn(AllVariants()),
    [](const ::testing::TestParamInfo<std::tuple<const char*, int>>& info) {
      return std::string(std::get<0>(info.param)) + "_Q" +
             std::to_string(std::get<1>(info.param));
    });

// Randomized ad-hoc workload: the generator walks the PK-FK graph, so this
// exercises operator shapes (unions over fragmented tables, multi-way
// joins, aggregates) beyond the fixed TPC-H plans.
TEST(FragmentExecutorTest, RandomizedAdhocWorkloadAgrees) {
  SharedTpch& shared = Shared();
  PolicyCatalog policies(shared.catalog.get());
  ASSERT_TRUE(tpch::InstallUnrestrictedPolicies(&policies).ok());

  WorkloadProperties properties = TpchWorkloadProperties();
  QueryGeneratorConfig qconfig;
  qconfig.seed = 20260807;
  AdhocQueryGenerator qgen(shared.catalog.get(), &properties, qconfig);

  QueryOptimizer optimizer(shared.catalog.get(), &policies, shared.net.get(),
                           OptimizerOptions());
  int checked = 0;
  for (int i = 0; i < 20; ++i) {
    std::string sql = qgen.Next();
    auto q = optimizer.Optimize(sql);
    ASSERT_TRUE(q.ok()) << sql << ": " << q.status();
    CheckEquivalence(shared, *q, "adhoc#" + std::to_string(i));
    ++checked;
  }
  EXPECT_EQ(checked, 20);
}

// A plan whose result is empty still pays the per-edge start-up latency in
// both backends.
TEST(FragmentExecutorTest, EmptyResultParity) {
  SharedTpch& shared = Shared();
  PolicyCatalog policies(shared.catalog.get());
  ASSERT_TRUE(tpch::InstallUnrestrictedPolicies(&policies).ok());

  QueryOptimizer optimizer(shared.catalog.get(), &policies, shared.net.get(),
                           OptimizerOptions());
  auto q = optimizer.Optimize(
      "SELECT c.name, o.totalprice FROM customer c, orders o "
      "WHERE c.custkey = o.custkey AND o.totalprice < -1");
  ASSERT_TRUE(q.ok()) << q.status();
  CheckEquivalence(shared, *q, "empty-result");
}

// FragmentPlan splits at every SHIP edge: producers come before consumers,
// channel ids equal fragment ids, and the top fragment has no output.
TEST(FragmentExecutorTest, FragmenterPostOrderInvariants) {
  SharedTpch& shared = Shared();
  PolicyCatalog policies(shared.catalog.get());
  ASSERT_TRUE(tpch::InstallUnrestrictedPolicies(&policies).ok());

  QueryOptimizer optimizer(shared.catalog.get(), &policies, shared.net.get(),
                           OptimizerOptions());
  auto q = optimizer.Optimize(*tpch::Query(5));
  ASSERT_TRUE(q.ok()) << q.status();

  FragmentedPlan fp = FragmentPlan(*q->plan);
  ASSERT_FALSE(fp.fragments.empty());
  EXPECT_EQ(fp.top().output_channel, -1);
  EXPECT_EQ(fp.num_channels(), fp.fragments.size() - 1);
  for (size_t i = 0; i < fp.fragments.size(); ++i) {
    const PlanFragment& f = fp.fragments[i];
    EXPECT_EQ(f.id, static_cast<int>(i));
    if (i + 1 < fp.fragments.size()) {
      EXPECT_EQ(f.output_channel, f.id);
      ASSERT_NE(f.ship, nullptr);
      EXPECT_EQ(f.site, f.ship->ship_from);
    }
    // Producers precede consumers in the schedule.
    for (int in : f.input_channels) {
      EXPECT_LT(in, f.id);
    }
  }
}

// Engine-level plumbing: default_exec_options() selects the backend for
// Run(), and ORDER BY / LIMIT apply identically on top of both.
TEST(FragmentExecutorTest, EnginePlumbingAndOrderBy) {
  tpch::TpchConfig config;
  config.scale_factor = 0.002;
  Engine engine(*tpch::BuildCatalog(config), NetworkModel::DefaultGeo(5));
  ASSERT_TRUE(tpch::InstallUnrestrictedPolicies(&engine.policies()).ok());
  ASSERT_TRUE(
      tpch::GenerateData(engine.catalog(), config, &engine.store()).ok());

  const std::string sql =
      "SELECT c.name, o.totalprice FROM customer c, orders o "
      "WHERE c.custkey = o.custkey ORDER BY totalprice DESC LIMIT 10";

  EXPECT_EQ(engine.default_exec_options().mode, ExecMode::kRow);
  auto row = engine.Run(sql);
  ASSERT_TRUE(row.ok()) << row.status();

  engine.set_exec_mode(ExecMode::kFragment);
  engine.default_exec_options().threads = 4;
  EXPECT_EQ(engine.default_exec_options().mode, ExecMode::kFragment);
  auto frag = engine.Run(sql);
  ASSERT_TRUE(frag.ok()) << frag.status();

  EXPECT_EQ(frag->rows.size(), 10u);
  EXPECT_EQ(ExactRows(*frag), ExactRows(*row));
  EXPECT_EQ(frag->metrics.bytes_shipped, row->metrics.bytes_shipped);
  EXPECT_FALSE(frag->metrics.fragments.empty());
}

}  // namespace
}  // namespace cgq
