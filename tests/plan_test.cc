#include <gtest/gtest.h>

#include "plan/binder.h"
#include "plan/builder.h"
#include "plan/summary.h"
#include "sql/parser.h"

namespace cgq {
namespace {

// Three-site fixture with a fragmented table for normalization tests.
class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* l : {"x", "y", "z"}) {
      ASSERT_TRUE(catalog_.mutable_locations().AddLocation(l).ok());
    }
    TableDef t1;
    t1.name = "emp";
    t1.schema = Schema({{"id", DataType::kInt64},
                        {"dept", DataType::kInt64},
                        {"salary", DataType::kDouble},
                        {"name", DataType::kString}});
    t1.fragments = {TableFragment{0, 1.0}};
    t1.stats.row_count = 1000;
    ASSERT_TRUE(catalog_.AddTable(t1).ok());

    TableDef t2;
    t2.name = "dept";
    t2.schema = Schema({{"id", DataType::kInt64},
                        {"dname", DataType::kString}});
    t2.fragments = {TableFragment{1, 1.0}};
    t2.stats.row_count = 10;
    ASSERT_TRUE(catalog_.AddTable(t2).ok());

    TableDef t3;  // fragmented over all three sites
    t3.name = "log";
    t3.schema = Schema({{"emp_id", DataType::kInt64},
                        {"ts", DataType::kInt64}});
    t3.fragments = {TableFragment{0, 0.3}, TableFragment{1, 0.4},
                    TableFragment{2, 0.3}};
    t3.stats.row_count = 5000;
    ASSERT_TRUE(catalog_.AddTable(t3).ok());
  }

  LogicalPlan Build(const std::string& sql, PlannerContext* ctx) {
    auto ast = ParseQuery(sql);
    EXPECT_TRUE(ast.ok()) << ast.status();
    auto bound = BindQuery(*ast, ctx);
    EXPECT_TRUE(bound.ok()) << bound.status();
    auto plan = BuildLogicalPlan(*bound, ctx);
    EXPECT_TRUE(plan.ok()) << plan.status();
    return *plan;
  }

  static int Count(const PlanNode& n, PlanKind k) {
    int c = n.kind() == k ? 1 : 0;
    for (const auto& ch : n.children()) c += Count(*ch, k);
    return c;
  }

  static const PlanNode* Find(const PlanNode& n, PlanKind k) {
    if (n.kind() == k) return &n;
    for (const auto& ch : n.children()) {
      if (const PlanNode* f = Find(*ch, k)) return f;
    }
    return nullptr;
  }

  Catalog catalog_;
};

TEST_F(PlanTest, FilterPushedBelowJoin) {
  PlannerContext ctx(&catalog_);
  LogicalPlan plan = Build(
      "SELECT e.name FROM emp e, dept d "
      "WHERE e.dept = d.id AND e.salary > 100",
      &ctx);
  // The salary filter must sit directly above the emp scan.
  const PlanNode* filter = Find(*plan.root, PlanKind::kFilter);
  ASSERT_NE(filter, nullptr);
  EXPECT_EQ(filter->child(0)->kind(), PlanKind::kScan);
  EXPECT_EQ(filter->child(0)->table, "emp");
  // The join keeps only the join conjunct.
  const PlanNode* join = Find(*plan.root, PlanKind::kJoin);
  ASSERT_NE(join, nullptr);
  ASSERT_EQ(join->conjuncts.size(), 1u);
}

TEST_F(PlanTest, MaskingProjectionPrunesColumns) {
  PlannerContext ctx(&catalog_);
  LogicalPlan plan = Build(
      "SELECT e.name FROM emp e, dept d WHERE e.dept = d.id", &ctx);
  // emp has 4 columns; only name and dept are needed upstream.
  const PlanNode* join = Find(*plan.root, PlanKind::kJoin);
  ASSERT_NE(join, nullptr);
  const PlanNode& emp_side = *join->child(0);
  EXPECT_EQ(emp_side.kind(), PlanKind::kProject);
  EXPECT_EQ(emp_side.outputs.size(), 2u);
}

TEST_F(PlanTest, FragmentedTableBecomesUnion) {
  PlannerContext ctx(&catalog_);
  LogicalPlan plan = Build("SELECT log.ts FROM log, emp "
                           "WHERE log.emp_id = emp.id", &ctx);
  const PlanNode* u = Find(*plan.root, PlanKind::kUnion);
  ASSERT_NE(u, nullptr);
  EXPECT_EQ(u->children().size(), 3u);
  EXPECT_EQ(Count(*plan.root, PlanKind::kScan), 4);  // 3 fragments + emp
}

TEST_F(PlanTest, FilterPushedIntoEveryFragment) {
  PlannerContext ctx(&catalog_);
  LogicalPlan plan =
      Build("SELECT log.ts FROM log, emp "
            "WHERE log.emp_id = emp.id AND log.ts > 100", &ctx);
  EXPECT_EQ(Count(*plan.root, PlanKind::kFilter), 3);
}

TEST_F(PlanTest, AggregatePlanShape) {
  PlannerContext ctx(&catalog_);
  LogicalPlan plan = Build(
      "SELECT e.dept, SUM(e.salary) AS total FROM emp e GROUP BY e.dept",
      &ctx);
  EXPECT_EQ(plan.root->kind(), PlanKind::kProject);
  const PlanNode& agg = *plan.root->child(0);
  EXPECT_EQ(agg.kind(), PlanKind::kAggregate);
  EXPECT_EQ(agg.group_ids.size(), 1u);
  EXPECT_EQ(agg.agg_calls.size(), 1u);
  EXPECT_TRUE(IsSyntheticAttr(agg.agg_out_ids[0]));
  EXPECT_EQ(plan.root->outputs[1].name, "total");
}

TEST_F(PlanTest, OrderByLimitCarried) {
  PlannerContext ctx(&catalog_);
  LogicalPlan plan = Build(
      "SELECT e.name, e.salary FROM emp e ORDER BY salary DESC LIMIT 5",
      &ctx);
  ASSERT_EQ(plan.order_by.size(), 1u);
  EXPECT_TRUE(plan.order_by[0].descending);
  EXPECT_EQ(plan.limit, 5);
}

TEST_F(PlanTest, BindErrors) {
  PlannerContext ctx1(&catalog_);
  auto ast = ParseQuery("SELECT bogus FROM emp");
  EXPECT_FALSE(BindQuery(*ast, &ctx1).ok());

  PlannerContext ctx2(&catalog_);
  ast = ParseQuery("SELECT id FROM emp, dept");  // ambiguous id
  EXPECT_FALSE(BindQuery(*ast, &ctx2).ok());

  PlannerContext ctx3(&catalog_);
  ast = ParseQuery("SELECT name FROM missing_table");
  EXPECT_FALSE(BindQuery(*ast, &ctx3).ok());

  PlannerContext ctx4(&catalog_);
  ast = ParseQuery("SELECT e.name, SUM(e.salary) FROM emp e");
  EXPECT_FALSE(BindQuery(*ast, &ctx4).ok());  // name not grouped

  PlannerContext ctx5(&catalog_);
  ast = ParseQuery("SELECT e.name FROM emp e ORDER BY nope");
  EXPECT_FALSE(BindQuery(*ast, &ctx5).ok());
}

TEST_F(PlanTest, SelfJoinGetsDistinctAttrIds) {
  PlannerContext ctx(&catalog_);
  LogicalPlan plan = Build(
      "SELECT a.name FROM emp a, emp b WHERE a.dept = b.dept", &ctx);
  const PlanNode* join = Find(*plan.root, PlanKind::kJoin);
  ASSERT_NE(join, nullptr);
  std::vector<AttrId> ids;
  join->conjuncts[0]->CollectAttrIds(&ids);
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_NE(ids[0], ids[1]);
  EXPECT_NE(PlannerContext::RelIndexOf(ids[0]),
            PlannerContext::RelIndexOf(ids[1]));
}

// --- Summary tests ---

TEST_F(PlanTest, ScanSummary) {
  PlannerContext ctx(&catalog_);
  LogicalPlan plan = Build("SELECT e.name, e.salary FROM emp e", &ctx);
  QuerySummary s = SummarizePlan(*plan.root);
  EXPECT_TRUE(s.spg_valid);
  EXPECT_FALSE(s.is_aggregate);
  EXPECT_TRUE(s.IsSingleDatabaseBlock());
  EXPECT_EQ(s.outputs.size(), 2u);
  for (const auto& [id, out] : s.outputs) {
    ASSERT_EQ(out.bases.size(), 1u);
    EXPECT_EQ(out.bases[0].table, "emp");
    EXPECT_FALSE(out.fn.has_value());
  }
}

TEST_F(PlanTest, AggregateSummaryTracksFns) {
  PlannerContext ctx(&catalog_);
  LogicalPlan plan = Build(
      "SELECT e.dept, SUM(e.salary) FROM emp e WHERE e.id > 10 "
      "GROUP BY e.dept",
      &ctx);
  QuerySummary s = SummarizePlan(*plan.root);
  EXPECT_TRUE(s.spg_valid);
  EXPECT_TRUE(s.is_aggregate);
  ASSERT_EQ(s.group_attrs.size(), 1u);
  EXPECT_EQ(s.group_attrs[0].column, "dept");
  bool found_sum = false;
  for (const auto& [id, out] : s.outputs) {
    if (out.fn == AggFn::kSum) {
      found_sum = true;
      ASSERT_EQ(out.bases.size(), 1u);
      EXPECT_EQ(out.bases[0].column, "salary");
    }
  }
  EXPECT_TRUE(found_sum);
  EXPECT_EQ(s.predicate.size(), 1u);
}

TEST_F(PlanTest, CrossDatabaseJoinIsNotSingleBlock) {
  PlannerContext ctx(&catalog_);
  LogicalPlan plan = Build(
      "SELECT e.name FROM emp e, dept d WHERE e.dept = d.id", &ctx);
  QuerySummary s = SummarizePlan(*plan.root);
  EXPECT_TRUE(s.spg_valid);  // still one SPJ block...
  EXPECT_EQ(s.source_locations.Count(), 2u);
  EXPECT_FALSE(s.IsSingleDatabaseBlock());  // ...but not single-DB
  EXPECT_EQ(s.alias_tables.size(), 2u);
}

TEST_F(PlanTest, FragmentedUnionSummarySpansLocations) {
  PlannerContext ctx(&catalog_);
  LogicalPlan plan = Build("SELECT log.ts FROM log, emp "
                           "WHERE log.emp_id = emp.id", &ctx);
  QuerySummary s = SummarizePlan(*plan.root);
  EXPECT_EQ(s.source_locations.Count(), 3u);
}

TEST_F(PlanTest, PlanPrinterMentionsOperators) {
  PlannerContext ctx(&catalog_);
  LogicalPlan plan = Build(
      "SELECT e.dept, SUM(e.salary) FROM emp e GROUP BY e.dept", &ctx);
  std::string text = PlanToString(*plan.root, nullptr);
  EXPECT_NE(text.find("Aggregate"), std::string::npos);
  EXPECT_NE(text.find("Scan[emp"), std::string::npos);
  EXPECT_NE(text.find("SUM"), std::string::npos);
}

TEST_F(PlanTest, ClonePlanIsDeep) {
  PlannerContext ctx(&catalog_);
  LogicalPlan plan = Build("SELECT e.name FROM emp e", &ctx);
  PlanNodePtr copy = ClonePlan(*plan.root);
  EXPECT_NE(copy.get(), plan.root.get());
  EXPECT_EQ(PlanToString(*copy, nullptr), PlanToString(*plan.root, nullptr));
  // Mutate the copy's scan; the original must be unaffected.
  PlanNode* scan = copy.get();
  while (!scan->children().empty()) scan = scan->children()[0].get();
  ASSERT_EQ(scan->kind(), PlanKind::kScan);
  scan->table = "mutated";
  EXPECT_NE(PlanToString(*copy, nullptr), PlanToString(*plan.root, nullptr));
}

}  // namespace
}  // namespace cgq
