#include "exec/channel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "net/network_model.h"

namespace cgq {
namespace {

RowBatch MakeBatch(int64_t first, int n) {
  RowBatch b;
  b.layout = RowLayout({AttrId{1}});
  for (int i = 0; i < n; ++i) {
    b.rows.push_back({Value::Int64(first + i)});
  }
  return b;
}

TEST(ShipChannelTest, FifoOrderAndStats) {
  NetworkModel net(2, /*alpha_ms=*/10.0, /*beta_ms_per_byte=*/0.5);
  ShipChannel ch(0, 1, /*capacity=*/0, &net);

  double bytes = 0;
  for (int i = 0; i < 3; ++i) {
    RowBatch b = MakeBatch(i * 10, 4);
    bytes += b.ByteSize();
    ASSERT_TRUE(ch.Push(std::move(b)));
  }
  ch.CloseProducer();

  RowBatch out;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(ch.Pop(&out));
    ASSERT_EQ(out.NumRows(), 4u);
    EXPECT_EQ(out.rows[0][0].int64(), i * 10);
  }
  EXPECT_FALSE(ch.Pop(&out));  // end-of-stream
  EXPECT_FALSE(ch.Pop(&out));  // stays closed

  ChannelStats s = ch.stats();
  EXPECT_EQ(s.from, 0);
  EXPECT_EQ(s.to, 1);
  EXPECT_EQ(s.batches, 3);
  EXPECT_EQ(s.rows, 12);
  EXPECT_EQ(s.bytes, bytes);
  EXPECT_EQ(s.peak_in_flight, 3);
}

// The channel charges alpha once per edge plus beta per byte, so the total
// equals the row interpreter's one-message charge for the same volume.
TEST(ShipChannelTest, NetworkChargeMatchesSingleMessage) {
  NetworkModel net = NetworkModel::DefaultGeo(5);
  ShipChannel ch(1, 3, 0, &net);

  double bytes = 0;
  for (int i = 0; i < 5; ++i) {
    RowBatch b = MakeBatch(i, 7);
    bytes += b.ByteSize();
    ASSERT_TRUE(ch.Push(std::move(b)));
  }
  ch.CloseProducer();

  EXPECT_NEAR(ch.stats().network_ms, net.Cost(1, 3, bytes), 1e-9);
}

// An edge that carries no batches still pays the start-up latency: the row
// interpreter ships one (empty) message per SHIP edge.
TEST(ShipChannelTest, EmptyEdgePaysStartupLatency) {
  NetworkModel net(3, 25.0, 0.125);
  ShipChannel ch(2, 0, 4, &net);
  ch.CloseProducer();

  RowBatch out;
  EXPECT_FALSE(ch.Pop(&out));
  ChannelStats s = ch.stats();
  EXPECT_EQ(s.batches, 0);
  EXPECT_EQ(s.rows, 0);
  EXPECT_EQ(s.bytes, 0);
  EXPECT_EQ(s.network_ms, net.Cost(2, 0, 0));
}

TEST(ShipChannelTest, IntraSiteTransferIsFree) {
  NetworkModel net(2, 10.0, 0.5);
  ShipChannel ch(1, 1, 0, &net);
  ASSERT_TRUE(ch.Push(MakeBatch(0, 8)));
  ch.CloseProducer();
  EXPECT_EQ(ch.stats().network_ms, 0.0);
}

// With capacity 2 the producer cannot run more than 2 batches ahead of the
// consumer, and peak_in_flight records exactly that bound.
TEST(ShipChannelTest, BoundedCapacityAppliesBackpressure) {
  NetworkModel net(2, 1.0, 0.0);
  ShipChannel ch(0, 1, /*capacity=*/2, &net);

  constexpr int kBatches = 32;
  std::atomic<int> pushed{0};
  std::thread producer([&] {
    for (int i = 0; i < kBatches; ++i) {
      ASSERT_TRUE(ch.Push(MakeBatch(i, 1)));
      pushed.fetch_add(1);
    }
    ch.CloseProducer();
  });

  // Give the producer a chance to run ahead; it must stall at the bound.
  while (pushed.load() < 2) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_LE(pushed.load(), 2 + 1);  // capacity batches queued + one blocked

  RowBatch out;
  int popped = 0;
  while (ch.Pop(&out)) {
    EXPECT_EQ(out.rows[0][0].int64(), popped);
    ++popped;
  }
  producer.join();

  EXPECT_EQ(popped, kBatches);
  ChannelStats s = ch.stats();
  EXPECT_EQ(s.batches, kBatches);
  EXPECT_LE(s.peak_in_flight, 2);
  EXPECT_GE(s.peak_in_flight, 1);
}

// Abort releases a producer blocked on a full channel and fails the
// consumer side, so errors propagate across fragments without deadlock.
TEST(ShipChannelTest, AbortReleasesBlockedProducer) {
  NetworkModel net(2, 1.0, 0.0);
  ShipChannel ch(0, 1, /*capacity=*/1, &net);

  std::atomic<bool> push_failed{false};
  std::thread producer([&] {
    ASSERT_TRUE(ch.Push(MakeBatch(0, 1)));
    // Second push blocks on the full channel until Abort.
    push_failed.store(!ch.Push(MakeBatch(1, 1)));
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ch.Abort();
  producer.join();

  EXPECT_TRUE(push_failed.load());
  RowBatch out;
  EXPECT_FALSE(ch.Pop(&out));
  EXPECT_FALSE(ch.Push(MakeBatch(2, 1)));
}

// Concurrent producer/consumer stress: every row arrives exactly once, in
// order, at several capacities.
TEST(ShipChannelTest, ThreadedStressPreservesOrder) {
  NetworkModel net(2, 0.0, 0.0);
  for (size_t capacity : {size_t{1}, size_t{4}, size_t{0}}) {
    ShipChannel ch(0, 1, capacity, &net);
    constexpr int kBatches = 200;

    std::thread producer([&] {
      for (int i = 0; i < kBatches; ++i) {
        ASSERT_TRUE(ch.Push(MakeBatch(i * 3, 3)));
      }
      ch.CloseProducer();
    });

    std::vector<int64_t> seen;
    RowBatch out;
    while (ch.Pop(&out)) {
      for (const Row& r : out.rows) seen.push_back(r[0].int64());
    }
    producer.join();

    ASSERT_EQ(seen.size(), static_cast<size_t>(kBatches * 3));
    for (size_t i = 0; i < seen.size(); ++i) {
      EXPECT_EQ(seen[i], static_cast<int64_t>(i));
    }
    EXPECT_EQ(ch.stats().rows, kBatches * 3);
  }
}

}  // namespace
}  // namespace cgq
