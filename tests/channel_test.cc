#include "exec/channel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "net/network_model.h"

namespace cgq {
namespace {

RowBatch MakeBatch(int64_t first, int n) {
  RowBatch b;
  b.layout = RowLayout({AttrId{1}});
  for (int i = 0; i < n; ++i) {
    b.rows.push_back({Value::Int64(first + i)});
  }
  return b;
}

TEST(ShipChannelTest, FifoOrderAndStats) {
  NetworkModel net(2, /*alpha_ms=*/10.0, /*beta_ms_per_byte=*/0.5);
  ShipChannel ch(0, 1, /*capacity=*/0, &net);

  double bytes = 0;
  for (int i = 0; i < 3; ++i) {
    RowBatch b = MakeBatch(i * 10, 4);
    bytes += b.ByteSize();
    ASSERT_TRUE(ch.Push(std::move(b)));
  }
  ch.CloseProducer();

  RowBatch out;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(ch.Pop(&out));
    ASSERT_EQ(out.NumRows(), 4u);
    EXPECT_EQ(out.rows[0][0].int64(), i * 10);
  }
  EXPECT_FALSE(ch.Pop(&out));  // end-of-stream
  EXPECT_FALSE(ch.Pop(&out));  // stays closed

  ChannelStats s = ch.stats();
  EXPECT_EQ(s.from, 0);
  EXPECT_EQ(s.to, 1);
  EXPECT_EQ(s.batches, 3);
  EXPECT_EQ(s.rows, 12);
  EXPECT_EQ(s.bytes, bytes);
  EXPECT_EQ(s.peak_in_flight, 3);
}

// The channel charges alpha once per edge plus beta per byte, so the total
// equals the row interpreter's one-message charge for the same volume.
TEST(ShipChannelTest, NetworkChargeMatchesSingleMessage) {
  NetworkModel net = NetworkModel::DefaultGeo(5);
  ShipChannel ch(1, 3, 0, &net);

  double bytes = 0;
  for (int i = 0; i < 5; ++i) {
    RowBatch b = MakeBatch(i, 7);
    bytes += b.ByteSize();
    ASSERT_TRUE(ch.Push(std::move(b)));
  }
  ch.CloseProducer();

  EXPECT_NEAR(ch.stats().network_ms, net.Cost(1, 3, bytes), 1e-9);
}

// An edge that carries no batches still pays the start-up latency: the row
// interpreter ships one (empty) message per SHIP edge.
TEST(ShipChannelTest, EmptyEdgePaysStartupLatency) {
  NetworkModel net(3, 25.0, 0.125);
  ShipChannel ch(2, 0, 4, &net);
  ch.CloseProducer();

  RowBatch out;
  EXPECT_FALSE(ch.Pop(&out));
  ChannelStats s = ch.stats();
  EXPECT_EQ(s.batches, 0);
  EXPECT_EQ(s.rows, 0);
  EXPECT_EQ(s.bytes, 0);
  EXPECT_EQ(s.network_ms, net.Cost(2, 0, 0));
}

TEST(ShipChannelTest, IntraSiteTransferIsFree) {
  NetworkModel net(2, 10.0, 0.5);
  ShipChannel ch(1, 1, 0, &net);
  ASSERT_TRUE(ch.Push(MakeBatch(0, 8)));
  ch.CloseProducer();
  EXPECT_EQ(ch.stats().network_ms, 0.0);
}

// With capacity 2 the producer cannot run more than 2 batches ahead of the
// consumer, and peak_in_flight records exactly that bound.
TEST(ShipChannelTest, BoundedCapacityAppliesBackpressure) {
  NetworkModel net(2, 1.0, 0.0);
  ShipChannel ch(0, 1, /*capacity=*/2, &net);

  constexpr int kBatches = 32;
  std::atomic<int> pushed{0};
  std::thread producer([&] {
    for (int i = 0; i < kBatches; ++i) {
      ASSERT_TRUE(ch.Push(MakeBatch(i, 1)));
      pushed.fetch_add(1);
    }
    ch.CloseProducer();
  });

  // Give the producer a chance to run ahead; it must stall at the bound.
  while (pushed.load() < 2) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_LE(pushed.load(), 2 + 1);  // capacity batches queued + one blocked

  RowBatch out;
  int popped = 0;
  while (ch.Pop(&out)) {
    EXPECT_EQ(out.rows[0][0].int64(), popped);
    ++popped;
  }
  producer.join();

  EXPECT_EQ(popped, kBatches);
  ChannelStats s = ch.stats();
  EXPECT_EQ(s.batches, kBatches);
  EXPECT_LE(s.peak_in_flight, 2);
  EXPECT_GE(s.peak_in_flight, 1);
}

// Abort releases a producer blocked on a full channel and fails the
// consumer side, so errors propagate across fragments without deadlock.
TEST(ShipChannelTest, AbortReleasesBlockedProducer) {
  NetworkModel net(2, 1.0, 0.0);
  ShipChannel ch(0, 1, /*capacity=*/1, &net);

  std::atomic<bool> push_failed{false};
  std::thread producer([&] {
    ASSERT_TRUE(ch.Push(MakeBatch(0, 1)));
    // Second push blocks on the full channel until Abort.
    push_failed.store(!ch.Push(MakeBatch(1, 1)));
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ch.Abort();
  producer.join();

  EXPECT_TRUE(push_failed.load());
  RowBatch out;
  EXPECT_FALSE(ch.Pop(&out));
  EXPECT_FALSE(ch.Push(MakeBatch(2, 1)));
}

// Concurrent producer/consumer stress: every row arrives exactly once, in
// order, at several capacities.
TEST(ShipChannelTest, ThreadedStressPreservesOrder) {
  NetworkModel net(2, 0.0, 0.0);
  for (size_t capacity : {size_t{1}, size_t{4}, size_t{0}}) {
    ShipChannel ch(0, 1, capacity, &net);
    constexpr int kBatches = 200;

    std::thread producer([&] {
      for (int i = 0; i < kBatches; ++i) {
        ASSERT_TRUE(ch.Push(MakeBatch(i * 3, 3)));
      }
      ch.CloseProducer();
    });

    std::vector<int64_t> seen;
    RowBatch out;
    while (ch.Pop(&out)) {
      for (const Row& r : out.rows) seen.push_back(r[0].int64());
    }
    producer.join();

    ASSERT_EQ(seen.size(), static_cast<size_t>(kBatches * 3));
    for (size_t i = 0; i < seen.size(); ++i) {
      EXPECT_EQ(seen[i], static_cast<int64_t>(i));
    }
    EXPECT_EQ(ch.stats().rows, kBatches * 3);
  }
}

// Regression for a latent shutdown race: a producer blocked in a
// backpressured Send() while the channel is closed underneath it must wake
// up and fail with a structured status instead of sleeping forever (or
// silently "delivering" into a closed channel). Run under TSan to check
// the wakeup ordering.
TEST(ShipChannelTest, CloseDuringBlockedSendWakesSenderWithError) {
  NetworkModel net(2, 1.0, 0.0);
  ShipChannel ch(0, 1, /*capacity=*/1, &net);

  ASSERT_TRUE(ch.Send(MakeBatch(0, 1)).ok());

  std::atomic<bool> sender_started{false};
  Status blocked_status;
  std::thread producer([&] {
    sender_started.store(true);
    // Blocks on the full channel until CloseProducer() below.
    blocked_status = ch.Send(MakeBatch(1, 1));
  });

  while (!sender_started.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ch.CloseProducer();
  producer.join();

  EXPECT_FALSE(blocked_status.ok());
  EXPECT_FALSE(ch.abort_status().ok());
  // The failed handoff aborts the channel; nothing is delivered.
  RowBatch out;
  EXPECT_FALSE(ch.Pop(&out));
}

// Abort(status) carries the aborting fragment's error to both sides, so a
// sibling that raced into Send/Recv reports the original failure instead
// of a generic secondary error.
TEST(ShipChannelTest, AbortStatusPropagatesToBothSides) {
  NetworkModel net(2, 1.0, 0.0);
  ShipChannel ch(0, 1, 0, &net);
  ch.Abort(Status::Unavailable("site 1 went down"));

  Status send = ch.Send(MakeBatch(0, 1));
  ASSERT_FALSE(send.ok());
  EXPECT_TRUE(send.IsUnavailable());
  EXPECT_NE(send.message().find("site 1 went down"), std::string::npos);

  RowBatch out;
  auto recv = ch.Recv(&out);
  ASSERT_FALSE(recv.ok());
  EXPECT_TRUE(recv.status().IsUnavailable());
}

// A lossy link drops batches; Send retries them (re-paying the start-up
// latency) until delivery. The deterministic per-edge stream makes the
// retry schedule a pure function of the fault seed.
TEST(ShipChannelTest, LossyLinkRetriesAreDeterministicAndAccounted) {
  auto run = [](uint64_t seed) {
    NetworkModel net(2, /*alpha_ms=*/10.0, /*beta_ms_per_byte=*/0.5);
    LinkFault fault;
    fault.drop_probability = 0.4;
    net.SetLinkFault(0, 1, fault);
    RetryPolicy retry;
    retry.max_retries = 50;  // ample: p=0.4 cannot lose 50 in a row here
    retry.fault_seed = seed;
    ShipChannel ch(0, 1, 0, &net, retry);
    for (int i = 0; i < 20; ++i) {
      EXPECT_TRUE(ch.Send(MakeBatch(i, 2)).ok());
    }
    ch.CloseProducer();
    RowBatch out;
    int rows = 0;
    while (ch.Pop(&out)) rows += static_cast<int>(out.NumRows());
    EXPECT_EQ(rows, 40);
    return ch.stats();
  };

  ChannelStats a = run(7);
  ChannelStats b = run(7);
  ChannelStats c = run(8);
  EXPECT_EQ(a.send_retries, b.send_retries);
  EXPECT_EQ(a.dropped_batches, b.dropped_batches);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.backoff_ms, b.backoff_ms);
  // A different seed yields a different schedule; the accumulated jitter
  // is a fine-grained fingerprint of the stream (total retry counts can
  // coincide).
  EXPECT_NE(a.backoff_ms, c.backoff_ms);

  // Accounting includes reattempts: every transmission (delivered or
  // dropped) is charged, and each retry re-pays alpha.
  EXPECT_GT(a.send_retries, 0);
  EXPECT_EQ(a.dropped_batches, a.send_retries);  // all retries succeeded
  EXPECT_EQ(a.batches, 20 + a.dropped_batches);
  EXPECT_GT(a.backoff_ms, 0.0);

  NetworkModel clean(2, 10.0, 0.5);
  ShipChannel base(0, 1, 0, &clean);
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(base.Push(MakeBatch(i, 2)));
  base.CloseProducer();
  EXPECT_GT(a.bytes, base.stats().bytes);
  EXPECT_GT(a.network_ms, base.stats().network_ms);
}

// When the link drops everything, bounded retries run out and the send
// fails with the typed transient-failure status — never a hang, never a
// silent partial result.
TEST(ShipChannelTest, ExhaustedRetriesFailUnavailable) {
  NetworkModel net(2, 1.0, 0.0);
  LinkFault fault;
  fault.drop_probability = 1.0;
  net.SetLinkFault(0, 1, fault);
  RetryPolicy retry;
  retry.max_retries = 3;
  ShipChannel ch(0, 1, 0, &net, retry);

  Status s = ch.Send(MakeBatch(0, 1));
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsUnavailable());
  ChannelStats stats = ch.stats();
  EXPECT_EQ(stats.dropped_batches, 4);  // first attempt + 3 retries
  EXPECT_EQ(stats.send_retries, 3);
  EXPECT_EQ(stats.batches, 4);  // every lost attempt was transmitted
}

// A hard link failure fails fast: no retries, no network charge (nothing
// was transmitted).
TEST(ShipChannelTest, DownLinkFailsFastWithoutCharge) {
  NetworkModel net(2, 10.0, 0.5);
  LinkFault fault;
  fault.down = true;
  net.SetLinkFault(0, 1, fault);
  ShipChannel ch(0, 1, 0, &net);

  Status s = ch.Send(MakeBatch(0, 4));
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsUnavailable());
  ChannelStats stats = ch.stats();
  EXPECT_EQ(stats.batches, 0);
  EXPECT_EQ(stats.bytes, 0);
  EXPECT_EQ(stats.send_retries, 0);
}

// Injected extra latency on a faulty-but-functional link raises the
// simulated network time of every attempt.
TEST(ShipChannelTest, ExtraLatencyIsCharged) {
  NetworkModel net(2, 10.0, 0.5);
  LinkFault fault;
  fault.extra_latency_ms = 100.0;
  net.SetLinkFault(0, 1, fault);
  ShipChannel ch(0, 1, 0, &net);
  RowBatch b = MakeBatch(0, 4);
  double bytes = b.ByteSize();
  ASSERT_TRUE(ch.Send(std::move(b)).ok());
  ch.CloseProducer();
  EXPECT_NEAR(ch.stats().network_ms, net.Cost(0, 1, bytes) + 100.0, 1e-9);
}

// A backpressured send that can't make progress within send_timeout_ms
// burns a retry per timeout and eventually fails Unavailable — the channel
// never deadlocks on a stuck consumer.
TEST(ShipChannelTest, SendTimeoutIsBoundedAndTyped) {
  NetworkModel net(2, 1.0, 0.0);
  RetryPolicy retry;
  retry.max_retries = 2;
  retry.send_timeout_ms = 5;
  ShipChannel ch(0, 1, /*capacity=*/1, &net, retry);

  ASSERT_TRUE(ch.Send(MakeBatch(0, 1)).ok());
  // Nobody consumes: the second send must give up on its own.
  Status s = ch.Send(MakeBatch(1, 1));
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsUnavailable());
  ChannelStats stats = ch.stats();
  EXPECT_EQ(stats.send_timeouts, 3);  // first attempt + 2 retries
  EXPECT_EQ(stats.batches, 1);        // timed-out waits transmit nothing
}

// Recv with a timeout on an idle channel reports Unavailable after
// exhausting its bounded waits.
TEST(ShipChannelTest, RecvTimeoutIsBoundedAndTyped) {
  NetworkModel net(2, 1.0, 0.0);
  RetryPolicy retry;
  retry.max_retries = 1;
  retry.recv_timeout_ms = 5;
  ShipChannel ch(0, 1, 0, &net, retry);

  RowBatch out;
  auto r = ch.Recv(&out);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable());
  EXPECT_EQ(ch.stats().recv_timeouts, 2);
}

// BeginReplay models an idempotent producer restart: the deterministic
// replay re-sends the whole stream, the channel suppresses the
// already-delivered prefix, and the consumer sees every row exactly once.
// Transmission stats keep the replayed traffic (a retransmission is a real
// transfer).
TEST(ShipChannelTest, ReplaySuppressesDeliveredPrefix) {
  NetworkModel net(2, 10.0, 0.5);
  ShipChannel ch(0, 1, 0, &net);

  // First incarnation: 3 batches x 2 rows; consumer takes one batch, then
  // the producer "dies" with two batches still queued.
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(ch.Send(MakeBatch(i * 2, 2)).ok());
  RowBatch out;
  ASSERT_TRUE(ch.Pop(&out));
  ASSERT_EQ(out.NumRows(), 2u);

  ch.BeginReplay();

  // Replay re-sends the identical stream, with different batching to show
  // suppression is by row count, not batch boundary.
  ASSERT_TRUE(ch.Send(MakeBatch(0, 3)).ok());  // rows 0,1 suppressed; 2 kept
  ASSERT_TRUE(ch.Send(MakeBatch(3, 3)).ok());
  ch.CloseProducer();

  std::vector<int64_t> seen;
  while (ch.Pop(&out)) {
    for (const Row& r : out.rows) seen.push_back(r[0].int64());
  }
  EXPECT_EQ(seen, (std::vector<int64_t>{2, 3, 4, 5}));

  ChannelStats stats = ch.stats();
  EXPECT_EQ(stats.replays, 1);
  // 3 original sends + 2 replay sends were all transmitted.
  EXPECT_EQ(stats.batches, 5);
  EXPECT_EQ(stats.rows, 12);
}

// Send() on a healthy link is Push() plus a status: identical charging.
TEST(ShipChannelTest, HealthySendMatchesPushAccounting) {
  NetworkModel net = NetworkModel::DefaultGeo(5);
  ShipChannel pushed(1, 3, 0, &net);
  ShipChannel sent(1, 3, 0, &net);
  for (int i = 0; i < 4; ++i) {
    RowBatch b = MakeBatch(i, 5);
    RowBatch c = b;
    ASSERT_TRUE(pushed.Push(std::move(b)));
    ASSERT_TRUE(sent.Send(std::move(c)).ok());
  }
  pushed.CloseProducer();
  sent.CloseProducer();
  EXPECT_EQ(sent.stats().bytes, pushed.stats().bytes);
  EXPECT_EQ(sent.stats().network_ms, pushed.stats().network_ms);
  EXPECT_EQ(sent.stats().batches, pushed.stats().batches);
  EXPECT_EQ(sent.stats().send_retries, 0);
}

}  // namespace
}  // namespace cgq
