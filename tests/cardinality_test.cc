#include <gtest/gtest.h>

#include "optimizer/cardinality.h"
#include "plan/binder.h"
#include "plan/builder.h"
#include "sql/parser.h"

namespace cgq {
namespace {

class CardinalityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.mutable_locations().AddLocation("x").ok());
    TableDef t;
    t.name = "t";
    t.schema = Schema({{"k", DataType::kInt64},
                       {"v", DataType::kInt64},
                       {"s", DataType::kString}});
    t.fragments = {TableFragment{0, 1.0}};
    t.stats.row_count = 10000;
    t.stats.columns["k"] = ColumnStats{10000, 1, 10000, 8};
    t.stats.columns["v"] = ColumnStats{100, 0, 99, 8};
    t.stats.columns["s"] = ColumnStats{50, {}, {}, 16};
    ASSERT_TRUE(catalog_.AddTable(t).ok());

    TableDef u;
    u.name = "u";
    u.schema = Schema({{"k", DataType::kInt64},
                       {"w", DataType::kInt64}});
    u.fragments = {TableFragment{0, 1.0}};
    u.stats.row_count = 1000;
    u.stats.columns["k"] = ColumnStats{1000, 1, 10000, 8};
    ASSERT_TRUE(catalog_.AddTable(u).ok());

    ctx_ = std::make_unique<PlannerContext>(&catalog_);
    estimator_ = std::make_unique<CardinalityEstimator>(ctx_.get());
  }

  // Builds a plan and returns the estimated rows of its root subtree.
  double RootRows(const std::string& sql) {
    auto ast = ParseQuery(sql);
    EXPECT_TRUE(ast.ok());
    ctx_ = std::make_unique<PlannerContext>(&catalog_);
    estimator_ = std::make_unique<CardinalityEstimator>(ctx_.get());
    auto bound = BindQuery(*ast, ctx_.get());
    EXPECT_TRUE(bound.ok()) << bound.status();
    auto plan = BuildLogicalPlan(*bound, ctx_.get());
    EXPECT_TRUE(plan.ok());
    return Estimate(*(*plan).root).rows;
  }

  CardEstimate Estimate(const PlanNode& node) {
    std::vector<CardEstimate> children;
    for (const auto& c : node.children()) children.push_back(Estimate(*c));
    return estimator_->EstimateOp(node, node.outputs, children);
  }

  double Selectivity(const std::string& pred) {
    auto ast = ParseQuery("SELECT t.k FROM t WHERE " + pred);
    EXPECT_TRUE(ast.ok());
    ctx_ = std::make_unique<PlannerContext>(&catalog_);
    estimator_ = std::make_unique<CardinalityEstimator>(ctx_.get());
    auto bound = BindQuery(*ast, ctx_.get());
    EXPECT_TRUE(bound.ok());
    return estimator_->Selectivity(*bound->where_conjuncts[0]);
  }

  Catalog catalog_;
  std::unique_ptr<PlannerContext> ctx_;
  std::unique_ptr<CardinalityEstimator> estimator_;
};

TEST_F(CardinalityTest, EqualitySelectivityIsInverseNdv) {
  EXPECT_NEAR(Selectivity("t.v = 5"), 1.0 / 100, 1e-9);
  EXPECT_NEAR(Selectivity("t.k = 5"), 1.0 / 10000, 1e-9);
}

TEST_F(CardinalityTest, RangeUsesMinMax) {
  // v uniform on [0, 99]: v < 25 selects ~25%.
  EXPECT_NEAR(Selectivity("t.v < 25"), 0.25, 0.02);
  EXPECT_NEAR(Selectivity("t.v >= 50"), 0.50, 0.02);
  // Out-of-range predicates clamp.
  EXPECT_LE(Selectivity("t.v < -5"), 0.01);
  EXPECT_GE(Selectivity("t.v < 1000"), 0.99);
}

TEST_F(CardinalityTest, InListSelectivity) {
  EXPECT_NEAR(Selectivity("t.v IN (1, 2, 3)"), 3.0 / 100, 1e-9);
}

TEST_F(CardinalityTest, BooleanCombinators) {
  double a = Selectivity("t.v = 5");
  EXPECT_NEAR(Selectivity("t.v = 5 OR t.v = 7"), a + a - a * a, 1e-9);
  EXPECT_NEAR(Selectivity("NOT t.v = 5"), 1 - a, 1e-9);
}

TEST_F(CardinalityTest, ScanUsesTableRows) {
  EXPECT_DOUBLE_EQ(RootRows("SELECT t.k FROM t"), 10000);
}

TEST_F(CardinalityTest, FkJoinKeepsFactSide) {
  // |t join u on k| ~ |t| * |u| / max(ndv) = 10000*1000/10000 = 1000.
  EXPECT_NEAR(RootRows("SELECT t.v FROM t, u WHERE t.k = u.k"), 1000, 1);
}

TEST_F(CardinalityTest, AggregateCappedByGroupNdv) {
  EXPECT_NEAR(RootRows("SELECT t.v, SUM(t.k) FROM t GROUP BY t.v"), 100, 1);
  EXPECT_NEAR(RootRows("SELECT SUM(t.k) FROM t"), 1, 0.01);
}

TEST_F(CardinalityTest, FilterReducesRows) {
  double rows = RootRows("SELECT t.k FROM t WHERE t.v = 5");
  EXPECT_NEAR(rows, 100, 1);  // 10000 / ndv(v)=100
}

TEST_F(CardinalityTest, RowBytesReflectColumnWidths) {
  auto ast = ParseQuery("SELECT t.s FROM t");
  ctx_ = std::make_unique<PlannerContext>(&catalog_);
  estimator_ = std::make_unique<CardinalityEstimator>(ctx_.get());
  auto bound = BindQuery(*ast, ctx_.get());
  auto plan = BuildLogicalPlan(*bound, ctx_.get());
  CardEstimate est = Estimate(*(*plan).root);
  EXPECT_DOUBLE_EQ(est.row_bytes, 16);  // s alone
}

}  // namespace
}  // namespace cgq
