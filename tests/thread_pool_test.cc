#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace cgq {
namespace {

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (size_t n : {0u, 1u, 7u, 100u, 1000u}) {
    std::vector<std::atomic<int>> counts(n);
    pool.ParallelFor(n, 4, [&](size_t i) { counts[i].fetch_add(1); });
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(counts[i].load(), 1) << "index " << i << " of " << n;
    }
  }
}

TEST(ThreadPoolTest, ResultSlotsNeedNoSynchronization) {
  // The evaluator's pattern: each task writes only its own slot, the
  // caller reads all slots after ParallelFor returns.
  ThreadPool pool(4);
  const size_t n = 500;
  std::vector<int64_t> out(n, -1);
  pool.ParallelFor(n, 4, [&](size_t i) {
    out[i] = static_cast<int64_t>(i) * static_cast<int64_t>(i);
  });
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], static_cast<int64_t>(i) * static_cast<int64_t>(i));
  }
}

TEST(ThreadPoolTest, WidthOneRunsInline) {
  ThreadPool pool(4);
  bool in_worker = true;
  pool.ParallelFor(3, 1, [&](size_t) { in_worker &= ThreadPool::InWorkerThread(); });
  // width <= 1 must not touch the pool at all.
  EXPECT_FALSE(in_worker);
}

TEST(ThreadPoolTest, NestedParallelForFallsBackInline) {
  // A task running on a pool thread that itself calls ParallelFor must not
  // deadlock waiting for the (occupied) workers; it runs inline instead.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(4, 2, [&](size_t) {
    pool.ParallelFor(8, 2, [&](size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 4 * 8);
}

TEST(ThreadPoolTest, InWorkerThreadDetection) {
  ThreadPool pool(2);
  EXPECT_FALSE(ThreadPool::InWorkerThread());
  std::atomic<int> seen_in_worker{0};
  // Width > n keeps the caller participating too; only pool threads set
  // the flag.
  pool.ParallelFor(64, 3, [&](size_t) {
    if (ThreadPool::InWorkerThread()) seen_in_worker.fetch_add(1);
  });
  EXPECT_FALSE(ThreadPool::InWorkerThread());
  // Not asserting a minimum: on a loaded machine the caller may claim all
  // work before the helpers wake. The invariant is coverage, not balance.
  EXPECT_GE(seen_in_worker.load(), 0);
}

TEST(ThreadPoolTest, SharedSingletonIsStable) {
  ThreadPool* a = ThreadPool::Shared();
  ThreadPool* b = ThreadPool::Shared();
  EXPECT_EQ(a, b);
  EXPECT_GE(a->num_threads(), 2u);
}

TEST(ThreadPoolTest, ManySmallBatches) {
  // Exercises the wake/sleep path repeatedly — the shape AR4 prewarm and
  // per-policy fanout produce.
  ThreadPool pool(4);
  int64_t total = 0;
  for (int batch = 0; batch < 200; ++batch) {
    std::vector<int64_t> out(17, 0);
    pool.ParallelFor(out.size(), 4, [&](size_t i) { out[i] = 1; });
    total += std::accumulate(out.begin(), out.end(), int64_t{0});
  }
  EXPECT_EQ(total, 200 * 17);
}

}  // namespace
}  // namespace cgq
