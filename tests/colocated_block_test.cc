#include <gtest/gtest.h>

#include "core/engine.h"

namespace cgq {
namespace {

// Two tables stored at the SAME location form a single-database block when
// joined: Algorithm 1 evaluates the joined subquery attribute-wise against
// that location's policies (footnote 2 of §4 allows multi-table blocks).
class ColocatedBlockTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Catalog catalog;
    ASSERT_TRUE(catalog.mutable_locations().AddLocation("d1").ok());
    ASSERT_TRUE(catalog.mutable_locations().AddLocation("d2").ok());

    TableDef supplier;  // both at d1
    supplier.name = "supplier";
    supplier.schema = Schema({{"sk", DataType::kInt64},
                              {"sname", DataType::kString}});
    supplier.fragments = {TableFragment{0, 1.0}};
    supplier.stats.row_count = 20;
    ASSERT_TRUE(catalog.AddTable(supplier).ok());

    TableDef partsupp;
    partsupp.name = "partsupp";
    partsupp.schema = Schema({{"pk", DataType::kInt64},
                              {"sk", DataType::kInt64},
                              {"cost", DataType::kInt64}});
    partsupp.fragments = {TableFragment{0, 1.0}};
    partsupp.stats.row_count = 100;
    ASSERT_TRUE(catalog.AddTable(partsupp).ok());

    TableDef part;  // at d2
    part.name = "part";
    part.schema = Schema({{"pk", DataType::kInt64},
                          {"pname", DataType::kString}});
    part.fragments = {TableFragment{1, 1.0}};
    part.stats.row_count = 30;
    ASSERT_TRUE(catalog.AddTable(part).ok());

    engine_ = std::make_unique<Engine>(std::move(catalog),
                                       NetworkModel::DefaultGeo(2));
    engine_->store().Put(
        0, "supplier",
        {{Value::Int64(1), Value::String("acme")},
         {Value::Int64(2), Value::String("blob")}});
    engine_->store().Put(0, "partsupp",
                         {{Value::Int64(7), Value::Int64(1),
                           Value::Int64(10)},
                          {Value::Int64(7), Value::Int64(2),
                           Value::Int64(8)},
                          {Value::Int64(8), Value::Int64(1),
                           Value::Int64(5)}});
    engine_->store().Put(1, "part",
                         {{Value::Int64(7), Value::String("bolt")},
                          {Value::Int64(8), Value::String("nut")}});
  }

  std::unique_ptr<Engine> engine_;
};

TEST_F(ColocatedBlockTest, JoinedBlockShipsWhenBothTablesPermit) {
  // Each table individually permits its attributes; the join of the two
  // may then ship (intersection attribute-wise).
  ASSERT_TRUE(
      engine_->AddPolicy("d1", "ship sk, sname from supplier to d2").ok());
  ASSERT_TRUE(
      engine_->AddPolicy("d1", "ship pk, sk, cost from partsupp to d2").ok());
  auto r = engine_->Optimize(
      "SELECT p.pname, s.sname, ps.cost FROM part p, partsupp ps, "
      "supplier s WHERE p.pk = ps.pk AND ps.sk = s.sk");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->compliant);
  EXPECT_EQ(r->result_location, 1u);  // the block moved to d2
  auto rows = engine_->Run(
      "SELECT p.pname, s.sname, ps.cost FROM part p, partsupp ps, "
      "supplier s WHERE p.pk = ps.pk AND ps.sk = s.sk");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 3u);
}

TEST_F(ColocatedBlockTest, OneUnlicensedTableBlocksTheJoinedShip) {
  // supplier has no egress at all: the ps⋈s block cannot leave d1, and
  // part cannot reach d1 either -> reject.
  ASSERT_TRUE(
      engine_->AddPolicy("d1", "ship pk, sk, cost from partsupp to d2").ok());
  auto r = engine_->Optimize(
      "SELECT p.pname, s.sname FROM part p, partsupp ps, supplier s "
      "WHERE p.pk = ps.pk AND ps.sk = s.sk");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNonCompliant());

  // But a query not touching supplier still travels fine.
  auto ok = engine_->Optimize(
      "SELECT p.pname, ps.cost FROM part p, partsupp ps WHERE p.pk = ps.pk");
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_TRUE(ok->compliant);
}

TEST_F(ColocatedBlockTest, JoinPredicateDisclosureCounts) {
  // The join condition ps.sk = s.sk disclosed ps.sk; omitting sk from the
  // partsupp expression must block the joined ship even though sk is not
  // in the output.
  ASSERT_TRUE(
      engine_->AddPolicy("d1", "ship sk, sname from supplier to d2").ok());
  ASSERT_TRUE(
      engine_->AddPolicy("d1", "ship pk, cost from partsupp to d2").ok());
  auto r = engine_->Optimize(
      "SELECT p.pname, s.sname FROM part p, partsupp ps, supplier s "
      "WHERE p.pk = ps.pk AND ps.sk = s.sk");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNonCompliant());
}

}  // namespace
}  // namespace cgq
