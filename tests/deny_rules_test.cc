#include <gtest/gtest.h>

#include "core/deny_rules.h"
#include "core/engine.h"

namespace cgq {
namespace {

class DenyRulesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* l : {"n", "e", "a"}) {
      ASSERT_TRUE(catalog_.mutable_locations().AddLocation(l).ok());
    }
    TableDef t;
    t.name = "cust";
    t.schema = Schema({{"id", DataType::kInt64},
                       {"name", DataType::kString},
                       {"acctbal", DataType::kDouble}});
    t.fragments = {TableFragment{0, 1.0}};
    t.stats.row_count = 10;
    ASSERT_TRUE(catalog_.AddTable(t).ok());
  }
  Catalog catalog_;
};

TEST_F(DenyRulesTest, ParseBasics) {
  auto r = ParseDenyRule(catalog_, "deny acctbal from cust to a, e");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->table, "cust");
  EXPECT_EQ(r->attributes, (std::vector<std::string>{"acctbal"}));
  EXPECT_EQ(r->locations.Count(), 2u);
  EXPECT_FALSE(r->all_attributes);
  EXPECT_FALSE(r->all_locations);
}

TEST_F(DenyRulesTest, ParseWildcards) {
  auto r = ParseDenyRule(catalog_, "deny * from cust to *");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->all_attributes);
  EXPECT_TRUE(r->all_locations);
}

TEST_F(DenyRulesTest, ParseErrors) {
  EXPECT_FALSE(ParseDenyRule(catalog_, "deny from cust to *").ok());
  EXPECT_FALSE(ParseDenyRule(catalog_, "deny x from nosuch to *").ok());
  EXPECT_FALSE(ParseDenyRule(catalog_, "deny bogus from cust to *").ok());
  EXPECT_FALSE(ParseDenyRule(catalog_, "deny id from cust to mars").ok());
  EXPECT_FALSE(ParseDenyRule(catalog_, "allow id from cust to e").ok());
}

TEST_F(DenyRulesTest, ClosedWorldExpansion) {
  // Denying acctbal everywhere allows everything else everywhere.
  auto rules = ParseDenyRule(catalog_, "deny acctbal from cust to *");
  ASSERT_TRUE(rules.ok());
  auto expanded = ExpandDenyRules(catalog_, {*rules});
  ASSERT_TRUE(expanded.ok()) << expanded.status();
  ASSERT_EQ(expanded->size(), 1u);  // acctbal fully denied: no expression
  EXPECT_EQ((*expanded)[0].attributes,
            (std::vector<std::string>{"id", "name"}));
  EXPECT_EQ((*expanded)[0].to, catalog_.locations().All());
}

TEST_F(DenyRulesTest, PartialDenyYieldsTwoExpressions) {
  auto rule = ParseDenyRule(catalog_, "deny acctbal from cust to a");
  ASSERT_TRUE(rule.ok());
  auto expanded = ExpandDenyRules(catalog_, {*rule});
  ASSERT_TRUE(expanded.ok());
  ASSERT_EQ(expanded->size(), 2u);
  // One expression for {id,name} to all, one for {acctbal} to all-but-a.
  bool found_masked = false;
  for (const PolicyExpression& e : *expanded) {
    if (e.attributes == std::vector<std::string>{"acctbal"}) {
      found_masked = true;
      EXPECT_FALSE(e.to.Contains(2));  // a
      EXPECT_TRUE(e.to.Contains(0));
      EXPECT_TRUE(e.to.Contains(1));
    }
  }
  EXPECT_TRUE(found_masked);
}

TEST_F(DenyRulesTest, MultipleRulesIntersect) {
  auto r1 = ParseDenyRule(catalog_, "deny acctbal from cust to a");
  auto r2 = ParseDenyRule(catalog_, "deny acctbal, name from cust to e");
  ASSERT_TRUE(r1.ok() && r2.ok());
  auto expanded = ExpandDenyRules(catalog_, {*r1, *r2});
  ASSERT_TRUE(expanded.ok());
  // id -> {n,e,a}; name -> {n,a}; acctbal -> {n}.
  ASSERT_EQ(expanded->size(), 3u);
  for (const PolicyExpression& e : *expanded) {
    if (e.attributes == std::vector<std::string>{"id"}) {
      EXPECT_EQ(e.to.Count(), 3u);
    } else if (e.attributes == std::vector<std::string>{"name"}) {
      EXPECT_EQ(e.to.Count(), 2u);
      EXPECT_FALSE(e.to.Contains(1));
    } else {
      EXPECT_EQ(e.attributes, (std::vector<std::string>{"acctbal"}));
      EXPECT_EQ(e.to, LocationSet::Single(0));
    }
  }
}

TEST_F(DenyRulesTest, EndToEndThroughOptimizer) {
  TableDef orders;
  orders.name = "ord";
  orders.schema = Schema({{"id", DataType::kInt64},
                          {"total", DataType::kDouble}});
  orders.fragments = {TableFragment{1, 1.0}};
  orders.stats.row_count = 100;
  ASSERT_TRUE(catalog_.AddTable(orders).ok());

  Engine engine(std::move(catalog_), NetworkModel::DefaultGeo(3));
  // Positive baseline for orders, negative spec for cust.
  ASSERT_TRUE(engine.AddPolicy("e", "ship * from ord to *").ok());
  ASSERT_TRUE(AddDenyPolicies("n", {"deny acctbal from cust to *"},
                              &engine.policies())
                  .ok());

  // Joining on id and returning name is fine anywhere.
  auto ok = engine.Optimize(
      "SELECT c.name FROM cust c, ord o WHERE c.id = o.id");
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_TRUE(ok->compliant);

  // acctbal can only be used at its home site n; since ord may ship to n,
  // the query is still legal — but acctbal must not cross a border.
  auto acct = engine.Optimize(
      "SELECT c.acctbal FROM cust c, ord o WHERE c.id = o.id");
  ASSERT_TRUE(acct.ok()) << acct.status();
  EXPECT_TRUE(acct->compliant);
  EXPECT_EQ(acct->result_location, 0u);  // pinned to n
}

}  // namespace
}  // namespace cgq
