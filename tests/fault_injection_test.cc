// Fault-injection harness for the executors: injected link faults
// (drops, latency, hard failures) and failpoint-driven failures must
// either be absorbed by bounded retries — reproducing the fault-free
// result byte for byte — or abort the query with the structured
// kUnavailable status. Never a hang, never a partial result.

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "core/engine.h"
#include "exec/executor.h"
#include "net/network_model.h"
#include "tpch/tpch.h"

namespace cgq {
namespace {

// Shared fixture state: TPC-H data is generated once for the whole suite.
// The network model is per-suite mutable (tests install link faults and
// must clear them before returning).
struct SharedTpch {
  SharedTpch() {
    config.scale_factor = 0.002;
    catalog = std::make_unique<Catalog>(*tpch::BuildCatalog(config));
    net = std::make_unique<NetworkModel>(NetworkModel::DefaultGeo(5));
    store = std::make_unique<TableStore>();
    CGQ_CHECK(tpch::GenerateData(*catalog, config, store.get()).ok());
  }
  tpch::TpchConfig config;
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<NetworkModel> net;
  std::unique_ptr<TableStore> store;
};

SharedTpch& Shared() {
  static SharedTpch* s = new SharedTpch();
  return *s;
}

// Full-precision serialization: recovered runs must reproduce the
// fault-free result byte for byte, order included.
std::vector<std::string> ExactRows(const QueryResult& r) {
  std::vector<std::string> rows;
  rows.reserve(r.rows.size());
  for (const Row& row : r.rows) {
    std::string s;
    for (const Value& v : row) {
      if (v.is_null()) {
        s += "NULL|";
      } else if (v.is_double()) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g|", v.dbl());
        s += buf;
      } else {
        s += v.ToString() + "|";
      }
    }
    rows.push_back(std::move(s));
  }
  return rows;
}

Result<OptimizedQuery> OptimizeTpch(const SharedTpch& shared, int qnum,
                                    const char* policy_set) {
  PolicyCatalog policies(shared.catalog.get());
  CGQ_RETURN_NOT_OK(tpch::InstallPolicySet(policy_set, &policies));
  QueryOptimizer optimizer(shared.catalog.get(), &policies,
                           shared.net.get(), OptimizerOptions());
  CGQ_ASSIGN_OR_RETURN(std::string sql, tpch::Query(qnum));
  return optimizer.Optimize(sql);
}

ExecutorOptions FragmentOptions(int batch, int threads,
                                const RetryPolicy& retry) {
  ExecutorOptions o;
  o.mode = ExecMode::kFragment;
  o.batch_size = batch;
  o.threads = threads;
  o.retry = retry;
  return o;
}

// All cross-site edges of a plan, from a fault-free row-backend run.
std::vector<std::pair<LocationId, LocationId>> CrossSiteEdges(
    const ExecMetrics& metrics) {
  std::set<std::pair<LocationId, LocationId>> edges;
  for (const ChannelStats& e : metrics.edges) {
    if (e.from != e.to) edges.emplace(e.from, e.to);
  }
  return {edges.begin(), edges.end()};
}

// Failpoints are process-global; leave no site armed behind.
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Failpoints::DisarmAll();
    Shared().net->ClearLinkFaults();
  }
  void TearDown() override {
    Failpoints::DisarmAll();
    Shared().net->ClearLinkFaults();
  }
};

// The core contract, swept over the full 12-query TPC-H workload: with a
// lossy fault on each ship edge in turn, bounded retries absorb the drops
// and both backends reproduce the fault-free rows byte for byte — while
// the traffic accounting shows the reattempted transmissions.
TEST_F(FaultInjectionTest, PerEdgeDropsRecoverOnEveryTpchQuery) {
  SharedTpch& shared = Shared();
  std::vector<int> queries = tpch::QueryNumbers();
  for (int q : tpch::ExtendedQueryNumbers()) queries.push_back(q);
  ASSERT_GE(queries.size(), 12u);

  RetryPolicy retry;
  retry.max_retries = 25;  // p=0.3: 26 consecutive drops is impossible here
  retry.fault_seed = 20260807;

  int64_t total_retries = 0;
  for (int qnum : queries) {
    auto q = OptimizeTpch(shared, qnum, "CR");
    ASSERT_TRUE(q.ok()) << "Q" << qnum << ": " << q.status();

    Executor clean_exec(shared.store.get(), shared.net.get());
    auto clean = clean_exec.Execute(*q);
    ASSERT_TRUE(clean.ok()) << clean.status();
    const std::vector<std::string> expected = ExactRows(*clean);

    for (auto [from, to] : CrossSiteEdges(clean->metrics)) {
      SCOPED_TRACE("Q" + std::to_string(qnum) + " edge l" +
                   std::to_string(from) + "->l" + std::to_string(to));
      LinkFault fault;
      fault.drop_probability = 0.3;
      shared.net->SetLinkFault(from, to, fault);

      ExecutorOptions row_opts;
      row_opts.retry = retry;
      Executor row_exec(shared.store.get(), shared.net.get(), row_opts);
      auto row = row_exec.Execute(*q);
      ASSERT_TRUE(row.ok()) << row.status();
      EXPECT_EQ(ExactRows(*row), expected);
      // Reattempts are real traffic: the faulted run never ships less
      // than the clean one, and every drop shows in the counters.
      EXPECT_GE(row->metrics.rows_shipped, clean->metrics.rows_shipped);
      EXPECT_GE(row->metrics.bytes_shipped, clean->metrics.bytes_shipped);
      EXPECT_EQ(row->metrics.send_retries, row->metrics.dropped_batches);
      if (row->metrics.dropped_batches > 0) {
        EXPECT_GT(row->metrics.bytes_shipped, clean->metrics.bytes_shipped);
      }
      total_retries += row->metrics.send_retries;

      Executor frag_exec(shared.store.get(), shared.net.get(),
                         FragmentOptions(7, 4, retry));
      auto frag = frag_exec.Execute(*q);
      ASSERT_TRUE(frag.ok()) << frag.status();
      EXPECT_EQ(ExactRows(*frag), expected);
      EXPECT_GE(frag->metrics.rows_shipped, clean->metrics.rows_shipped);
      total_retries += frag->metrics.send_retries;

      shared.net->ClearLinkFaults();
    }
  }
  // The sweep exercised actual recovery, not just healthy edges.
  EXPECT_GT(total_retries, 0);
}

// A hard link failure cannot be retried away: both backends abort with
// the typed transient-failure status and return no partial result.
TEST_F(FaultInjectionTest, DownLinkAbortsBothBackendsTyped) {
  SharedTpch& shared = Shared();
  auto q = OptimizeTpch(shared, 5, "CR");
  ASSERT_TRUE(q.ok()) << q.status();

  Executor clean_exec(shared.store.get(), shared.net.get());
  auto clean = clean_exec.Execute(*q);
  ASSERT_TRUE(clean.ok()) << clean.status();
  auto edges = CrossSiteEdges(clean->metrics);
  ASSERT_FALSE(edges.empty());

  LinkFault fault;
  fault.down = true;
  shared.net->SetLinkFault(edges[0].first, edges[0].second, fault);

  Executor row_exec(shared.store.get(), shared.net.get());
  auto row = row_exec.Execute(*q);
  ASSERT_FALSE(row.ok());
  EXPECT_TRUE(row.status().IsUnavailable()) << row.status();

  for (int threads : {1, 4}) {
    Executor frag_exec(shared.store.get(), shared.net.get(),
                       FragmentOptions(7, threads, RetryPolicy()));
    auto frag = frag_exec.Execute(*q);
    ASSERT_FALSE(frag.ok()) << "threads=" << threads;
    EXPECT_TRUE(frag.status().IsUnavailable()) << frag.status();
  }
}

// The fragment.start failpoint kills a source fragment on its first
// attempt; the executor restarts it at the same site and the query
// completes with the fault-free result.
TEST_F(FaultInjectionTest, FragmentStartFailureRestartsAndRecovers) {
  SharedTpch& shared = Shared();
  auto q = OptimizeTpch(shared, 3, "CR");
  ASSERT_TRUE(q.ok()) << q.status();

  Executor clean_exec(shared.store.get(), shared.net.get(),
                      FragmentOptions(7, 1, RetryPolicy()));
  auto clean = clean_exec.Execute(*q);
  ASSERT_TRUE(clean.ok()) << clean.status();

  Failpoints::ArmOnce("fragment.start");
  auto faulted = clean_exec.Execute(*q);
  Failpoints::DisarmAll();
  ASSERT_TRUE(faulted.ok()) << faulted.status();

  EXPECT_EQ(ExactRows(*faulted), ExactRows(*clean));
  EXPECT_EQ(faulted->metrics.fragment_restarts, 1);
  // Recovery never re-places: every fragment re-ran at its assigned site.
  ASSERT_EQ(faulted->metrics.fragments.size(),
            clean->metrics.fragments.size());
  for (size_t i = 0; i < clean->metrics.fragments.size(); ++i) {
    EXPECT_EQ(faulted->metrics.fragments[i].site,
              clean->metrics.fragments[i].site);
  }
}

// When the fragment keeps dying, bounded restarts run out and the query
// aborts with kUnavailable — a typed failure, not a hang or wrong answer.
TEST_F(FaultInjectionTest, PersistentFragmentFailureAbortsTyped) {
  SharedTpch& shared = Shared();
  auto q = OptimizeTpch(shared, 3, "CR");
  ASSERT_TRUE(q.ok()) << q.status();

  RetryPolicy retry;
  retry.max_retries = 2;
  Failpoints::ArmEveryN("fragment.start", 1);  // every attempt dies
  Executor exec(shared.store.get(), shared.net.get(),
                FragmentOptions(7, 1, retry));
  auto r = exec.Execute(*q);
  Failpoints::DisarmAll();

  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable()) << r.status();
}

// The channel.send failpoint loses exactly one batch on the wire; the
// send-level retry redelivers it and the reattempt shows in the stats.
TEST_F(FaultInjectionTest, ChannelSendFailpointIsRetried) {
  SharedTpch& shared = Shared();
  auto q = OptimizeTpch(shared, 3, "CR");
  ASSERT_TRUE(q.ok()) << q.status();

  Executor exec(shared.store.get(), shared.net.get(),
                FragmentOptions(7, 1, RetryPolicy()));
  auto clean = exec.Execute(*q);
  ASSERT_TRUE(clean.ok()) << clean.status();

  Failpoints::ArmOnce("channel.send");
  auto faulted = exec.Execute(*q);
  Failpoints::DisarmAll();
  ASSERT_TRUE(faulted.ok()) << faulted.status();

  EXPECT_EQ(ExactRows(*faulted), ExactRows(*clean));
  EXPECT_EQ(faulted->metrics.send_retries, 1);
  EXPECT_EQ(faulted->metrics.dropped_batches, 1);
  EXPECT_GE(faulted->metrics.rows_shipped, clean->metrics.rows_shipped);
  EXPECT_GT(faulted->metrics.backoff_ms, 0.0);
}

// The channel.recv failpoint simulates one timed-out receive; the bounded
// recv retry re-waits and the run completes untouched.
TEST_F(FaultInjectionTest, ChannelRecvFailpointIsRetried) {
  SharedTpch& shared = Shared();
  auto q = OptimizeTpch(shared, 3, "CR");
  ASSERT_TRUE(q.ok()) << q.status();

  Executor exec(shared.store.get(), shared.net.get(),
                FragmentOptions(7, 1, RetryPolicy()));
  auto clean = exec.Execute(*q);
  ASSERT_TRUE(clean.ok()) << clean.status();

  Failpoints::ArmOnce("channel.recv");
  auto faulted = exec.Execute(*q);
  Failpoints::DisarmAll();
  ASSERT_TRUE(faulted.ok()) << faulted.status();

  EXPECT_EQ(ExactRows(*faulted), ExactRows(*clean));
  EXPECT_EQ(faulted->metrics.recv_timeouts, 1);
}

// Seeded randomized soak: ~200 executions across fault profile x batch
// size x thread count x seed. Every run either reproduces the fault-free
// rows byte for byte or aborts with kUnavailable, and repeating a
// configuration repeats its outcome exactly (the fault schedule is a pure
// function of the seed).
TEST_F(FaultInjectionTest, SeededSoakIsDeterministic) {
  SharedTpch& shared = Shared();

  struct Profile {
    double drop;
    double latency_ms;
    int max_retries;
  };
  // "mild" always recovers; "harsh" (p=0.55, 2 retries) aborts some runs.
  const std::vector<Profile> profiles = {{0.15, 3.0, 25}, {0.55, 0.0, 2}};

  int runs = 0;
  int aborted = 0;
  for (int qnum : {3, 5}) {
    auto q = OptimizeTpch(shared, qnum, "CR");
    ASSERT_TRUE(q.ok()) << q.status();
    Executor clean_exec(shared.store.get(), shared.net.get());
    auto clean = clean_exec.Execute(*q);
    ASSERT_TRUE(clean.ok()) << clean.status();
    const std::vector<std::string> expected = ExactRows(*clean);

    for (const Profile& p : profiles) {
      shared.net->ApplyLossyProfile(p.drop, p.latency_ms);
      for (uint64_t seed = 1; seed <= 4; ++seed) {
        for (int batch : {1, 7, 1024}) {
          for (int threads : {1, 4}) {
            SCOPED_TRACE("Q" + std::to_string(qnum) + " drop=" +
                         std::to_string(p.drop) + " seed=" +
                         std::to_string(seed) + " batch=" +
                         std::to_string(batch) + " threads=" +
                         std::to_string(threads));
            RetryPolicy retry;
            retry.max_retries = p.max_retries;
            retry.fault_seed = seed;
            Executor exec(shared.store.get(), shared.net.get(),
                          FragmentOptions(batch, threads, retry));
            auto first = exec.Execute(*q);
            auto second = exec.Execute(*q);
            runs += 2;

            ASSERT_EQ(first.ok(), second.ok());
            if (first.ok()) {
              EXPECT_EQ(ExactRows(*first), expected);
              EXPECT_EQ(ExactRows(*second), expected);
              // Healthy-outcome accounting is seed-deterministic too.
              EXPECT_EQ(first->metrics.send_retries,
                        second->metrics.send_retries);
              EXPECT_EQ(first->metrics.dropped_batches,
                        second->metrics.dropped_batches);
              EXPECT_EQ(first->metrics.bytes_shipped,
                        second->metrics.bytes_shipped);
            } else {
              EXPECT_TRUE(first.status().IsUnavailable())
                  << first.status();
              EXPECT_TRUE(second.status().IsUnavailable())
                  << second.status();
              ++aborted;
            }
          }
        }
      }
      shared.net->ClearLinkFaults();
    }
  }
  EXPECT_EQ(runs, 192);
  // The harsh profile produced real aborts; the mild one never did (its
  // retry budget cannot be exhausted at p=0.15).
  EXPECT_GT(aborted, 0);
}

// With faults installed but retries sufficient, the engine-level surface
// (Run + footer metrics) reports recovery without changing the answer.
TEST_F(FaultInjectionTest, EngineLevelFaultsSurfaceInMetrics) {
  tpch::TpchConfig config;
  config.scale_factor = 0.002;
  Engine engine(*tpch::BuildCatalog(config), NetworkModel::DefaultGeo(5));
  ASSERT_TRUE(tpch::InstallPolicySet("CR", &engine.policies()).ok());
  ASSERT_TRUE(
      tpch::GenerateData(engine.catalog(), config, &engine.store()).ok());

  const std::string sql = *tpch::Query(3);
  auto clean = engine.Run(sql);
  ASSERT_TRUE(clean.ok()) << clean.status();

  RetryPolicy retry;
  retry.max_retries = 25;
  retry.fault_seed = 7;
  engine.set_retry_policy(retry);
  engine.set_exec_mode(ExecMode::kFragment);
  engine.mutable_net().ApplyLossyProfile(/*drop_probability=*/0.3,
                                         /*extra_latency_ms=*/5.0);
  auto faulted = engine.Run(sql);
  ASSERT_TRUE(faulted.ok()) << faulted.status();

  EXPECT_EQ(ExactRows(*faulted), ExactRows(*clean));
  EXPECT_GT(faulted->metrics.send_retries, 0);
  std::string footer =
      FormatExecMetrics(faulted->metrics, &engine.catalog().locations());
  EXPECT_NE(footer.find("recovery:"), std::string::npos);
  EXPECT_NE(footer.find("send retr"), std::string::npos);

  engine.mutable_net().ClearLinkFaults();
  auto healthy = engine.Run(sql);
  ASSERT_TRUE(healthy.ok()) << healthy.status();
  EXPECT_EQ(healthy->metrics.send_retries, 0);
}

}  // namespace
}  // namespace cgq
