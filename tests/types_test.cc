#include <gtest/gtest.h>

#include "types/date.h"
#include "types/schema.h"
#include "types/value.h"

namespace cgq {
namespace {

TEST(ValueTest, NullBasics) {
  Value v = Value::Null();
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToString(), "NULL");
  EXPECT_FALSE(v.Equals(Value::Int64(0)));
}

TEST(ValueTest, Int64) {
  Value v = Value::Int64(42);
  EXPECT_TRUE(v.is_int64());
  EXPECT_EQ(v.int64(), 42);
  EXPECT_EQ(v.ToString(), "42");
}

TEST(ValueTest, DoubleAndNumericCompare) {
  EXPECT_EQ(Value::Int64(2).Compare(Value::Double(2.0)), 0);
  EXPECT_LT(Value::Int64(1).Compare(Value::Double(1.5)), 0);
  EXPECT_GT(Value::Double(2.5).Compare(Value::Int64(2)), 0);
}

TEST(ValueTest, StringCompare) {
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_EQ(Value::String("x").Compare(Value::String("x")), 0);
  EXPECT_EQ(Value::String("q").ToString(), "'q'");
}

TEST(ValueTest, Equals) {
  EXPECT_TRUE(Value::Int64(3).Equals(Value::Double(3.0)));
  EXPECT_FALSE(Value::Int64(3).Equals(Value::String("3")));
  EXPECT_FALSE(Value::Null().Equals(Value::Null()));
  EXPECT_TRUE(Value::Null().StructurallyEquals(Value::Null()));
}

TEST(ValueTest, DateIsInt64) {
  Value d = Value::Date(10000);
  EXPECT_TRUE(d.is_int64());
  EXPECT_EQ(d.int64(), 10000);
}

TEST(ValueTest, ByteSize) {
  EXPECT_EQ(Value::Int64(1).ByteSize(), 8u);
  EXPECT_EQ(Value::Null().ByteSize(), 1u);
  EXPECT_EQ(Value::String("abcd").ByteSize(), 8u);  // 4 chars + 4 len
}

TEST(ValueTest, RowHashAndEquality) {
  Row a = {Value::Int64(1), Value::String("x"), Value::Null()};
  Row b = {Value::Int64(1), Value::String("x"), Value::Null()};
  Row c = {Value::Int64(1), Value::String("y"), Value::Null()};
  EXPECT_TRUE(RowsStructurallyEqual(a, b));
  EXPECT_FALSE(RowsStructurallyEqual(a, c));
  EXPECT_EQ(HashRow(a), HashRow(b));
}

TEST(SchemaTest, IndexOfCaseInsensitive) {
  Schema s({{"CustKey", DataType::kInt64}, {"name", DataType::kString}});
  EXPECT_EQ(s.IndexOf("custkey"), 0u);
  EXPECT_EQ(s.IndexOf("NAME"), 1u);
  EXPECT_FALSE(s.IndexOf("missing").has_value());
}

TEST(SchemaTest, ToString) {
  Schema s({{"a", DataType::kInt64}, {"b", DataType::kDouble}});
  EXPECT_EQ(s.ToString(), "a:INT64, b:DOUBLE");
}

TEST(DateTest, EpochRoundTrip) {
  EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0);
  int y, m, d;
  CivilFromDays(0, &y, &m, &d);
  EXPECT_EQ(y, 1970);
  EXPECT_EQ(m, 1);
  EXPECT_EQ(d, 1);
}

TEST(DateTest, KnownDates) {
  // 1995-01-01 is 9131 days after epoch.
  EXPECT_EQ(DaysFromCivil(1995, 1, 1), 9131);
  EXPECT_EQ(DaysFromCivil(1969, 12, 31), -1);
}

TEST(DateTest, ParseFormatRoundTrip) {
  auto r = ParseDate("1998-12-01");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(FormatDate(*r), "1998-12-01");
}

TEST(DateTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseDate("not-a-date").ok());
  EXPECT_FALSE(ParseDate("1998-13-01").ok());
}

TEST(DateTest, LeapYear) {
  int64_t feb29 = DaysFromCivil(2000, 2, 29);
  int y, m, d;
  CivilFromDays(feb29, &y, &m, &d);
  EXPECT_EQ(m, 2);
  EXPECT_EQ(d, 29);
}

TEST(DateTest, OrderingMatchesCalendar) {
  EXPECT_LT(DaysFromCivil(1994, 12, 31), DaysFromCivil(1995, 1, 1));
  EXPECT_LT(DaysFromCivil(1995, 1, 1), DaysFromCivil(1995, 1, 2));
}

}  // namespace
}  // namespace cgq
