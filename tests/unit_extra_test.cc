#include <gtest/gtest.h>

#include "exec/csv.h"
#include "expr/eval.h"
#include "expr/expr.h"
#include "types/date.h"

namespace cgq {
namespace {

// --- Expr structural helpers -------------------------------------------------

TEST(ExprExtraTest, EqualsAndHashAgree) {
  ExprPtr a = Expr::Binary(
      ExprOp::kGt, Expr::BoundColumn(5, "t", "x", "t", DataType::kInt64),
      Expr::Literal(Value::Int64(10)));
  ExprPtr b = Expr::Binary(
      ExprOp::kGt, Expr::BoundColumn(5, "t", "x", "t", DataType::kInt64),
      Expr::Literal(Value::Int64(10)));
  ExprPtr c = Expr::Binary(
      ExprOp::kGt, Expr::BoundColumn(5, "t", "x", "t", DataType::kInt64),
      Expr::Literal(Value::Int64(11)));
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_EQ(a->Hash(), b->Hash());
  EXPECT_FALSE(a->Equals(*c));
}

TEST(ExprExtraTest, BoundAndUnboundColumnsDiffer) {
  ExprPtr bound = Expr::BoundColumn(5, "t", "x", "t", DataType::kInt64);
  ExprPtr unbound = Expr::Column("t", "x");
  EXPECT_FALSE(bound->Equals(*unbound));
  EXPECT_TRUE(bound->is_bound());
  EXPECT_FALSE(unbound->is_bound());
}

TEST(ExprExtraTest, SubstituteReplacesOnlyMappedIds) {
  ExprPtr x = Expr::BoundColumn(1, "t", "x", "t", DataType::kInt64);
  ExprPtr y = Expr::BoundColumn(2, "t", "y", "t", DataType::kInt64);
  ExprPtr sum = Expr::Binary(ExprOp::kAdd, x, y);
  ExprPtr replacement = Expr::Literal(Value::Int64(42));
  ExprPtr out = Expr::Substitute(sum, {{1, replacement}});
  EXPECT_EQ(out->child(0)->op(), ExprOp::kLiteral);
  EXPECT_EQ(out->child(1)->attr_id(), 2u);
  // No mapping hit: the original tree is returned unchanged (same node).
  ExprPtr same = Expr::Substitute(sum, {{9, replacement}});
  EXPECT_EQ(same.get(), sum.get());
}

TEST(ExprExtraTest, MakeConjunction) {
  EXPECT_TRUE(Expr::MakeConjunction({})->IsLiteralTrue());
  ExprPtr single = Expr::Literal(Value::Int64(7));
  EXPECT_EQ(Expr::MakeConjunction({single}).get(), single.get());
  ExprPtr two = Expr::MakeConjunction({single, single});
  EXPECT_EQ(two->op(), ExprOp::kAnd);
}

TEST(ExprExtraTest, ToStringParenthesizesNesting) {
  ExprPtr e = Expr::Binary(
      ExprOp::kMul, Expr::BoundColumn(1, "l", "p", "l", DataType::kDouble),
      Expr::Binary(ExprOp::kSub, Expr::Literal(Value::Int64(1)),
                   Expr::BoundColumn(2, "l", "d", "l", DataType::kDouble)));
  EXPECT_EQ(e->ToString(), "l.p * (1 - l.d)");
}

TEST(ExprExtraTest, CollectBaseAttrsSkipsSynthetic) {
  ExprPtr synth =
      Expr::BoundColumn(kFirstSyntheticAttr + 3, "", "partial", "",
                        DataType::kInt64);
  ExprPtr base = Expr::BoundColumn(1, "t", "x", "t", DataType::kInt64);
  ExprPtr sum = Expr::Binary(ExprOp::kAdd, synth, base);
  std::vector<BaseAttr> attrs;
  sum->CollectBaseAttrs(&attrs);
  ASSERT_EQ(attrs.size(), 1u);
  EXPECT_EQ(attrs[0].ToString(), "t.x");
}

// --- RowLayout ---------------------------------------------------------------

TEST(RowLayoutTest, PositionLookups) {
  RowLayout layout({10, 20, 30});
  EXPECT_EQ(layout.PositionOf(20), 1u);
  EXPECT_EQ(layout.PositionOf(99), RowLayout::kNotFound);
  EXPECT_TRUE(layout.Contains(30));
  EXPECT_FALSE(layout.Contains(31));
  EXPECT_EQ(layout.size(), 3u);
}

// --- Date edge cases ----------------------------------------------------------

TEST(DateExtraTest, PreGregorianAndFarFuture) {
  int y, m, d;
  CivilFromDays(DaysFromCivil(1582, 10, 4), &y, &m, &d);
  EXPECT_EQ(y, 1582);
  CivilFromDays(DaysFromCivil(2400, 2, 29), &y, &m, &d);  // leap century
  EXPECT_EQ(m, 2);
  EXPECT_EQ(d, 29);
}

TEST(DateExtraTest, RoundTripSweep) {
  for (int64_t days = -1000; days <= 40000; days += 377) {
    int y, m, d;
    CivilFromDays(days, &y, &m, &d);
    EXPECT_EQ(DaysFromCivil(y, m, d), days);
  }
}

// --- CSV corner cases ----------------------------------------------------------

class CsvExtraTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.mutable_locations().AddLocation("x").ok());
    TableDef t;
    t.name = "t";
    t.schema = Schema({{"a", DataType::kInt64},
                       {"s", DataType::kString}});
    t.fragments = {TableFragment{0, 1.0}};
    ASSERT_TRUE(catalog_.AddTable(t).ok());
  }
  Catalog catalog_;
};

TEST_F(CsvExtraTest, CrLfLineEndings) {
  TableStore store;
  auto n = LoadCsv(catalog_, "t", 0, "1,foo\r\n2,bar\r\n", &store);
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, 2u);
  auto rows = store.Get(0, "t");
  EXPECT_EQ((**rows)[0][1].str(), "foo");  // no trailing \r
}

TEST_F(CsvExtraTest, BlankLinesSkipped) {
  TableStore store;
  auto n = LoadCsv(catalog_, "t", 0, "1,a\n\n\n2,b\n", &store);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);
}

TEST_F(CsvExtraTest, TrailingNewlineOptional) {
  TableStore store;
  auto n = LoadCsv(catalog_, "t", 0, "1,a\n2,b", &store);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);
}

TEST_F(CsvExtraTest, NegativeAndSpacedNumbers) {
  TableStore store;
  EXPECT_TRUE(LoadCsv(catalog_, "t", 0, "-5,x\n", &store).ok());
  EXPECT_FALSE(LoadCsv(catalog_, "t", 0, "1 2,x\n", &store).ok());
}

}  // namespace
}  // namespace cgq
