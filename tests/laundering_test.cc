#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "core/compliance_checker.h"
#include "core/engine.h"
#include "exec/executor.h"
#include "service/plan_cache.h"

namespace cgq {
namespace {

// Attempts to launder data through relays, renames and wrappers must all
// be caught: a SHIP chain confers no rights beyond the origin's policies.
class LaunderingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Catalog catalog;
    for (const char* l : {"n", "e", "a"}) {
      ASSERT_TRUE(catalog.mutable_locations().AddLocation(l).ok());
    }
    TableDef t;
    t.name = "cust";
    t.schema = Schema({{"id", DataType::kInt64},
                       {"name", DataType::kString}});
    t.fragments = {TableFragment{0, 1.0}};
    t.stats.row_count = 10;
    ASSERT_TRUE(catalog.AddTable(t).ok());
    engine_ = std::make_unique<Engine>(std::move(catalog),
                                       NetworkModel::DefaultGeo(3));
    // cust may go to e, but never to a.
    ASSERT_TRUE(engine_->AddPolicy("n", "ship * from cust to e").ok());
  }

  PlanNodePtr Scan() {
    auto scan = std::make_shared<PlanNode>(PlanKind::kScan);
    scan->table = "cust";
    scan->alias = "cust";
    scan->scan_location = 0;
    scan->location = 0;
    scan->outputs = {{0, "id", DataType::kInt64},
                     {1, "name", DataType::kString}};
    return scan;
  }

  PlanNodePtr Ship(PlanNodePtr child, LocationId to) {
    auto ship = std::make_shared<PlanNode>(PlanKind::kShip);
    ship->ship_from = child->location;
    ship->ship_to = to;
    ship->location = to;
    ship->outputs = child->outputs;
    ship->children().push_back(std::move(child));
    return ship;
  }

  bool Check(const PlanNodePtr& plan) {
    PolicyEvaluator evaluator(&engine_->catalog(), &engine_->policies());
    return CheckCompliance(*plan, evaluator,
                           engine_->catalog().locations())
        .compliant;
  }

  std::unique_ptr<Engine> engine_;
};

TEST_F(LaunderingTest, DirectShipToForbiddenSiteFlagged) {
  EXPECT_FALSE(Check(Ship(Scan(), 2)));
  EXPECT_TRUE(Check(Ship(Scan(), 1)));
}

TEST_F(LaunderingTest, RelayThroughAllowedSiteFlagged) {
  // n -> e (legal) -> a (illegal): the relay must not launder.
  EXPECT_FALSE(Check(Ship(Ship(Scan(), 1), 2)));
}

TEST_F(LaunderingTest, ProjectionAtRelaySiteDoesNotHelp) {
  // Renaming/narrowing at e grants nothing new: the policy of n still
  // governs the cells.
  PlanNodePtr shipped = Ship(Scan(), 1);
  auto project = std::make_shared<PlanNode>(PlanKind::kProject);
  project->project_ids = {1};
  project->project_names = {"alias_name"};
  project->location = 1;
  project->outputs = {{1, "alias_name", DataType::kString}};
  project->children().push_back(shipped);
  EXPECT_FALSE(Check(Ship(project, 2)));
}

TEST_F(LaunderingTest, OptimizerNeverRoutesThroughRelay) {
  // End-to-end: no compliant plan can deliver cust data at a.
  OptimizerOptions opts;
  opts.required_result = LocationSet::Single(2);
  auto r = engine_->Optimize("SELECT name FROM cust", opts);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNonCompliant());
}

// ---------------------------------------------------------------------
// Compliance under recovery: laundering must not become possible just
// because a fragment failed and was retried. The executor re-checks the
// execution/shipping traits on every (re)attempt, and recovery never
// re-places a fragment.

// A compliant located plan for the fixture: scan cust at n, ship to e,
// with the traits the optimizer would annotate (cust may run at n and be
// shipped to e, never to a).
class RecoveryComplianceTest : public LaunderingTest {
 protected:
  void SetUp() override {
    LaunderingTest::SetUp();
    Failpoints::DisarmAll();
    std::vector<Row> rows;
    for (int64_t i = 0; i < 10; ++i) {
      rows.push_back({Value::Int64(i),
                      Value::String("c" + std::to_string(i))});
    }
    engine_->store().Put(0, "cust", std::move(rows));
  }
  void TearDown() override {
    Failpoints::DisarmAll();
    engine_->mutable_net().ClearLinkFaults();
  }

  PlanNodePtr AnnotatedPlan() {
    PlanNodePtr scan = Scan();
    scan->exec_trait = LocationSet::Single(0);
    LocationSet allowed = LocationSet::Single(0);
    allowed.Add(1);  // cust may stay at n or go to e; a is off-limits
    scan->ship_trait = allowed;
    PlanNodePtr ship = Ship(std::move(scan), 1);
    ship->exec_trait = LocationSet::Single(1);
    ship->ship_trait = allowed;
    return ship;
  }

  Result<QueryResult> Execute(const PlanNodePtr& plan,
                              const RetryPolicy& retry) {
    ExecutorOptions opts;
    opts.mode = ExecMode::kFragment;
    opts.batch_size = 2;
    opts.threads = 1;
    opts.retry = retry;
    Executor exec(&engine_->store(), &engine_->net(), opts);
    return exec.ExecutePlan(*plan);
  }
};

// A restarted fragment re-runs at its assigned compliant site — with a
// lossy link and a fragment.start failure, the run recovers, and every
// fragment (including the restarted one) stays where the located plan
// put it.
TEST_F(RecoveryComplianceTest, RestartedFragmentStaysAtCompliantSite) {
  PlanNodePtr plan = AnnotatedPlan();
  LinkFault fault;
  fault.drop_probability = 0.3;
  engine_->mutable_net().SetLinkFault(0, 1, fault);
  Failpoints::ArmOnce("fragment.start");

  RetryPolicy retry;
  retry.max_retries = 25;
  retry.fault_seed = 11;
  auto r = Execute(plan, retry);
  ASSERT_TRUE(r.ok()) << r.status();

  EXPECT_EQ(r->rows.size(), 10u);
  EXPECT_EQ(r->metrics.fragment_restarts, 1);
  // The producer fragment re-ran at n (site 0) and its retried ships all
  // targeted e (site 1): no edge outside the annotated traits appears.
  for (const FragmentMetrics& f : r->metrics.fragments) {
    EXPECT_TRUE(f.site == 0 || f.site == 1);
  }
  for (const ChannelStats& e : r->metrics.edges) {
    EXPECT_EQ(e.from, 0);
    EXPECT_EQ(e.to, 1);
    EXPECT_NE(e.to, 2);  // never the forbidden site, retries included
  }
}

// Tampering the execution trait so the fragment's site is no longer legal
// turns every attempt (first or restarted) into a typed compliance
// violation — recovery cannot be used to run data at a forbidden site.
TEST_F(RecoveryComplianceTest, ExecutionOutsideTraitIsRejected) {
  PlanNodePtr plan = AnnotatedPlan();
  plan->child(0)->exec_trait = LocationSet::Single(2);  // excludes n
  auto r = Execute(plan, RetryPolicy());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("compliance violation"),
            std::string::npos)
      << r.status();
  EXPECT_NE(r.status().message().find("execution trait"),
            std::string::npos);
}

// Same for the shipping trait: a ship edge whose destination lies outside
// the trait is refused before any batch moves, so retries can never
// deliver data to a site the policies exclude.
TEST_F(RecoveryComplianceTest, ShipOutsideTraitIsRejected) {
  PlanNodePtr plan = AnnotatedPlan();
  plan->ship_trait = LocationSet::Single(0);  // e no longer allowed
  auto r = Execute(plan, RetryPolicy());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("shipping trait"), std::string::npos)
      << r.status();
}

std::vector<std::string> RenderedRows(const QueryResult& r) {
  std::vector<std::string> out;
  out.reserve(r.rows.size());
  for (const Row& row : r.rows) {
    std::string s;
    for (const Value& v : row) s += v.ToString() + "|";
    out.push_back(std::move(s));
  }
  return out;
}

// A cached plan is an expiring compliance proof (Theorem 1 covers only
// the policy set it was optimized under): after the policy it depends on
// is dropped, the cache must never serve it — the query re-optimizes and
// is rejected, exactly as if it had never been cached.
TEST_F(RecoveryComplianceTest, CachedPlanNeverServedAfterPolicyDrop) {
  PlanCache cache;
  engine_->set_plan_cache(&cache);
  OptimizerOptions opts = engine_->default_options();
  opts.required_result = LocationSet::Single(1);  // deliver at e
  const std::string sql = "SELECT name FROM cust";

  auto cold = engine_->Run(sql, opts);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_FALSE(cold->opt_stats.cache_hit);

  auto warm = engine_->Run(sql, opts);
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_TRUE(warm->opt_stats.cache_hit);
  EXPECT_EQ(RenderedRows(*warm), RenderedRows(*cold));

  // Drop the only policy granting cust any movement. The cached plan
  // ships cust n -> e, which is now laundering.
  ASSERT_EQ(engine_->policies().For(0).size(), 1u);
  int64_t id = engine_->policies().For(0)[0].id;
  ASSERT_TRUE(engine_->policies().RemovePolicy(id).ok());

  auto after = engine_->Run(sql, opts);
  ASSERT_FALSE(after.ok());
  EXPECT_TRUE(after.status().IsNonCompliant()) << after.status();
  EXPECT_GE(cache.stats().invalidations, 1);

  // Re-granting restores service (a fresh optimization, not the stale
  // entry: the erase above is permanent).
  ASSERT_TRUE(engine_->AddPolicy("n", "ship * from cust to e").ok());
  auto regranted = engine_->Run(sql, opts);
  ASSERT_TRUE(regranted.ok()) << regranted.status();
  EXPECT_FALSE(regranted->opt_stats.cache_hit);
  EXPECT_EQ(RenderedRows(*regranted), RenderedRows(*cold));
  engine_->set_plan_cache(nullptr);
}

// The parameterized variant of the same laundering attempt: a cached
// template is rebound to fresh constants on every hit, and the
// compliance re-check runs on the *bound* plan — so after the policy it
// depends on is dropped, no constant can ever ride the stale entry.
TEST_F(RecoveryComplianceTest, ParameterizedHitNeverServedAfterPolicyDrop) {
  PlanCache cache;
  engine_->set_plan_cache(&cache);
  OptimizerOptions opts = engine_->default_options();
  opts.required_result = LocationSet::Single(1);  // deliver at e

  auto cold = engine_->Run("SELECT name FROM cust WHERE id < 3", opts);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_FALSE(cold->opt_stats.cache_hit);

  // Same template, different constant: a parameterized hit.
  auto warm = engine_->Run("SELECT name FROM cust WHERE id < 7", opts);
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_TRUE(warm->opt_stats.cache_hit);
  EXPECT_TRUE(warm->opt_stats.cache_param_hit);
  EXPECT_EQ(warm->rows.size(), 7u);  // the new constant, not the cached 3

  ASSERT_EQ(engine_->policies().For(0).size(), 1u);
  ASSERT_TRUE(
      engine_->policies().RemovePolicy(engine_->policies().For(0)[0].id)
          .ok());

  // A third constant must not be served from the (now laundering) entry.
  auto after = engine_->Run("SELECT name FROM cust WHERE id < 9", opts);
  ASSERT_FALSE(after.ok());
  EXPECT_TRUE(after.status().IsNonCompliant()) << after.status();
  EXPECT_GE(cache.stats().invalidations, 1);
  engine_->set_plan_cache(nullptr);
}

// Tenants with different visibility (required-result sets) never share a
// parameterized entry: the cache key covers the plan-shaping options, so
// a tenant whose delivery site is off-limits for cust re-optimizes and is
// rejected — the other tenant's cached proof is not transferable.
TEST_F(RecoveryComplianceTest, ParameterizedHitDoesNotCrossTenantVisibility) {
  PlanCache cache;
  engine_->set_plan_cache(&cache);
  OptimizerOptions tenant_e = engine_->default_options();
  tenant_e.required_result = LocationSet::Single(1);  // e: allowed
  OptimizerOptions tenant_a = engine_->default_options();
  tenant_a.required_result = LocationSet::Single(2);  // a: forbidden

  auto cold = engine_->Run("SELECT name FROM cust WHERE id < 3", tenant_e);
  ASSERT_TRUE(cold.ok()) << cold.status();
  auto warm = engine_->Run("SELECT name FROM cust WHERE id < 5", tenant_e);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->opt_stats.cache_param_hit);

  // Same template, same shape — but the other tenant's visibility. The
  // warm entry must not be consulted (different key), and the fresh
  // optimization correctly rejects the laundering attempt.
  PlanCacheStats before = cache.stats();
  auto other = engine_->Run("SELECT name FROM cust WHERE id < 5", tenant_a);
  ASSERT_FALSE(other.ok());
  EXPECT_TRUE(other.status().IsNonCompliant()) << other.status();
  PlanCacheStats after = cache.stats();
  EXPECT_EQ(after.hits, before.hits);  // never even a candidate
  engine_->set_plan_cache(nullptr);
}

// The hierarchical index merges a policy subsumed by a wider one. Removing
// the absorber must resurrect the donor with its exact original force: it
// still blocks everything it blocked alone (no under-blocking — the wider
// grant must not survive its removal) and still grants what it granted
// alone (no over-blocking through the merge path).
TEST_F(LaunderingTest, MergedPolicyStillBlocksAfterDonorRemoval) {
  Catalog catalog;
  for (const char* l : {"n", "e", "a"}) {
    ASSERT_TRUE(catalog.mutable_locations().AddLocation(l).ok());
  }
  TableDef t;
  t.name = "cust";
  t.schema =
      Schema({{"id", DataType::kInt64}, {"name", DataType::kString}});
  t.fragments = {TableFragment{0, 1.0}};
  t.stats.row_count = 10;
  ASSERT_TRUE(catalog.AddTable(t).ok());
  Engine engine(std::move(catalog), NetworkModel::DefaultGeo(3));
  ASSERT_TRUE(
      engine.set_policy_index_mode(PolicyIndexMode::kHierarchical).ok());

  // Narrow donor first, wide absorber second: the index merges the donor
  // under the `ship *` policy.
  ASSERT_TRUE(engine.AddPolicy("n", "ship id from cust to e").ok());
  int64_t donor_id = engine.policies().For(0)[0].id;
  ASSERT_TRUE(engine.AddPolicy("n", "ship * from cust to e").ok());
  ASSERT_EQ(engine.policies().For(0).size(), 1u);
  ASSERT_EQ(engine.policies().Absorbed(0).size(), 1u);
  ASSERT_EQ(engine.policies().Absorbed(0)[0].expr.id, donor_id);
  int64_t absorber_id = engine.policies().For(0)[0].id;

  // While merged, the wide grant rules: name may go to e.
  OptimizerOptions to_e;
  to_e.required_result = LocationSet::Single(1);
  EXPECT_TRUE(engine.Optimize("SELECT name FROM cust", to_e).ok());

  // Remove the absorber. The donor resurrects — and ONLY the donor.
  ASSERT_TRUE(engine.policies().RemovePolicy(absorber_id).ok());
  ASSERT_EQ(engine.policies().For(0).size(), 1u);
  EXPECT_EQ(engine.policies().For(0)[0].id, donor_id);
  EXPECT_TRUE(engine.policies().Absorbed(0).empty());

  // Exactly the donor's solo behavior: id->e legal, name->e and id->a are
  // laundering.
  EXPECT_TRUE(engine.Optimize("SELECT id FROM cust", to_e).ok());
  auto name_to_e = engine.Optimize("SELECT name FROM cust", to_e);
  ASSERT_FALSE(name_to_e.ok());
  EXPECT_TRUE(name_to_e.status().IsNonCompliant());
  OptimizerOptions to_a;
  to_a.required_result = LocationSet::Single(2);
  auto id_to_a = engine.Optimize("SELECT id FROM cust", to_a);
  ASSERT_FALSE(id_to_a.ok());
  EXPECT_TRUE(id_to_a.status().IsNonCompliant());
}

TEST_F(LaunderingTest, AggregationAtRelaySiteUsesRelayPolicies) {
  // Aggregating at e produces a new single-database block... of n's data?
  // No: the block's source is still n (the scan), so only n's policies
  // apply, and they do not allow a.
  PlanNodePtr shipped = Ship(Scan(), 1);
  auto agg = std::make_shared<PlanNode>(PlanKind::kAggregate);
  agg->group_ids = {0};
  agg->location = 1;
  agg->children().push_back(shipped);
  agg->outputs = {{0, "id", DataType::kInt64}};
  EXPECT_FALSE(Check(Ship(agg, 2)));
}

}  // namespace
}  // namespace cgq
