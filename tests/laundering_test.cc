#include <gtest/gtest.h>

#include "core/compliance_checker.h"
#include "core/engine.h"

namespace cgq {
namespace {

// Attempts to launder data through relays, renames and wrappers must all
// be caught: a SHIP chain confers no rights beyond the origin's policies.
class LaunderingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Catalog catalog;
    for (const char* l : {"n", "e", "a"}) {
      ASSERT_TRUE(catalog.mutable_locations().AddLocation(l).ok());
    }
    TableDef t;
    t.name = "cust";
    t.schema = Schema({{"id", DataType::kInt64},
                       {"name", DataType::kString}});
    t.fragments = {TableFragment{0, 1.0}};
    t.stats.row_count = 10;
    ASSERT_TRUE(catalog.AddTable(t).ok());
    engine_ = std::make_unique<Engine>(std::move(catalog),
                                       NetworkModel::DefaultGeo(3));
    // cust may go to e, but never to a.
    ASSERT_TRUE(engine_->AddPolicy("n", "ship * from cust to e").ok());
  }

  PlanNodePtr Scan() {
    auto scan = std::make_shared<PlanNode>(PlanKind::kScan);
    scan->table = "cust";
    scan->alias = "cust";
    scan->scan_location = 0;
    scan->location = 0;
    scan->outputs = {{0, "id", DataType::kInt64},
                     {1, "name", DataType::kString}};
    return scan;
  }

  PlanNodePtr Ship(PlanNodePtr child, LocationId to) {
    auto ship = std::make_shared<PlanNode>(PlanKind::kShip);
    ship->ship_from = child->location;
    ship->ship_to = to;
    ship->location = to;
    ship->outputs = child->outputs;
    ship->children().push_back(std::move(child));
    return ship;
  }

  bool Check(const PlanNodePtr& plan) {
    PolicyEvaluator evaluator(&engine_->catalog(), &engine_->policies());
    return CheckCompliance(*plan, evaluator,
                           engine_->catalog().locations())
        .compliant;
  }

  std::unique_ptr<Engine> engine_;
};

TEST_F(LaunderingTest, DirectShipToForbiddenSiteFlagged) {
  EXPECT_FALSE(Check(Ship(Scan(), 2)));
  EXPECT_TRUE(Check(Ship(Scan(), 1)));
}

TEST_F(LaunderingTest, RelayThroughAllowedSiteFlagged) {
  // n -> e (legal) -> a (illegal): the relay must not launder.
  EXPECT_FALSE(Check(Ship(Ship(Scan(), 1), 2)));
}

TEST_F(LaunderingTest, ProjectionAtRelaySiteDoesNotHelp) {
  // Renaming/narrowing at e grants nothing new: the policy of n still
  // governs the cells.
  PlanNodePtr shipped = Ship(Scan(), 1);
  auto project = std::make_shared<PlanNode>(PlanKind::kProject);
  project->project_ids = {1};
  project->project_names = {"alias_name"};
  project->location = 1;
  project->outputs = {{1, "alias_name", DataType::kString}};
  project->children().push_back(shipped);
  EXPECT_FALSE(Check(Ship(project, 2)));
}

TEST_F(LaunderingTest, OptimizerNeverRoutesThroughRelay) {
  // End-to-end: no compliant plan can deliver cust data at a.
  OptimizerOptions opts;
  opts.required_result = LocationSet::Single(2);
  auto r = engine_->Optimize("SELECT name FROM cust", opts);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNonCompliant());
}

TEST_F(LaunderingTest, AggregationAtRelaySiteUsesRelayPolicies) {
  // Aggregating at e produces a new single-database block... of n's data?
  // No: the block's source is still n (the scan), so only n's policies
  // apply, and they do not allow a.
  PlanNodePtr shipped = Ship(Scan(), 1);
  auto agg = std::make_shared<PlanNode>(PlanKind::kAggregate);
  agg->group_ids = {0};
  agg->location = 1;
  agg->children().push_back(shipped);
  agg->outputs = {{0, "id", DataType::kInt64}};
  EXPECT_FALSE(Check(Ship(agg, 2)));
}

}  // namespace
}  // namespace cgq
