#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/engine.h"
#include "exec/executor.h"
#include "net/network_model.h"
#include "tpch/tpch.h"
#include "workload/query_generator.h"

namespace cgq {
namespace {

// Shared fixture state: generating TPC-H data once keeps the sweep fast.
struct SharedTpch {
  SharedTpch() {
    config.scale_factor = 0.002;
    catalog = std::make_unique<Catalog>(*tpch::BuildCatalog(config));
    net = std::make_unique<NetworkModel>(NetworkModel::DefaultGeo(5));
    store = std::make_unique<TableStore>();
    CGQ_CHECK(tpch::GenerateData(*catalog, config, store.get()).ok());
  }
  tpch::TpchConfig config;
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<NetworkModel> net;
  std::unique_ptr<TableStore> store;
};

SharedTpch& Shared() {
  static SharedTpch* s = new SharedTpch();
  return *s;
}

// FNV-1a over the result's column names and rows, the same canonical text
// the benchmarks hash: order-sensitive, type-sensitive (int64 1 and
// double 1.0 print differently), NULL-tagged.
uint64_t Digest(const QueryResult& r) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](const std::string& s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ull;
    }
  };
  for (const std::string& name : r.column_names) mix(name + ";");
  for (const Row& row : r.rows) {
    for (const Value& v : row) {
      if (v.is_null()) {
        mix("NULL|");
      } else if (v.is_double()) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g|", v.dbl());
        mix(buf);
      } else {
        mix(v.ToString() + "|");
      }
    }
    mix("\n");
  }
  return h;
}

Result<OptimizedQuery> Plan(const std::string& sql) {
  SharedTpch& shared = Shared();
  PolicyCatalog policies(shared.catalog.get());
  OptimizerOptions opts;
  opts.compliant = false;  // plan shape only; policies are orthogonal here
  QueryOptimizer optimizer(shared.catalog.get(), &policies, shared.net.get(),
                           opts);
  return optimizer.Optimize(sql);
}

Result<QueryResult> RunQuery(const OptimizedQuery& q, ExecMode mode,
                        int batch_size, int threads) {
  SharedTpch& shared = Shared();
  ExecutorOptions opts;
  opts.mode = mode;
  opts.batch_size = batch_size;
  opts.threads = threads;
  Executor executor(shared.store.get(), shared.net.get(), opts);
  return executor.Execute(q);
}

// The validation contract (DESIGN.md §12): identical digest (row order,
// value types, NULLs) and identical ship accounting, for every
// configuration of the vectorized backend.
void ExpectEquivalent(const OptimizedQuery& q, const std::string& label) {
  auto row = RunQuery(q, ExecMode::kRow, 1024, 1);
  ASSERT_TRUE(row.ok()) << label << ": " << row.status();
  const uint64_t row_digest = Digest(*row);
  for (int batch_size : {1, 7, 1024}) {
    for (int threads : {1, 4}) {
      auto vec = RunQuery(q, ExecMode::kVector, batch_size, threads);
      ASSERT_TRUE(vec.ok()) << label << ": " << vec.status();
      EXPECT_EQ(Digest(*vec), row_digest)
          << label << " batch=" << batch_size << " threads=" << threads;
      EXPECT_EQ(vec->metrics.ships, row->metrics.ships) << label;
      EXPECT_EQ(vec->metrics.rows_shipped, row->metrics.rows_shipped)
          << label;
      EXPECT_EQ(vec->metrics.bytes_shipped, row->metrics.bytes_shipped)
          << label;
    }
  }
}

// --- 12 TPC-H queries (core + extended) -------------------------------------

class VectorTpchEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(VectorTpchEquivalence, MatchesRowBackend) {
  const int q = GetParam();
  auto plan = Plan(*tpch::Query(q));
  ASSERT_TRUE(plan.ok()) << "Q" << q << ": " << plan.status();
  ExpectEquivalent(*plan, "Q" + std::to_string(q));
}

std::vector<int> AllTpchQueries() {
  std::vector<int> out = tpch::QueryNumbers();
  for (int q : tpch::ExtendedQueryNumbers()) out.push_back(q);
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllQueries, VectorTpchEquivalence,
                         ::testing::ValuesIn(AllTpchQueries()),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Q" + std::to_string(info.param);
                         });

// --- 12 generated ad-hoc queries --------------------------------------------

TEST(VectorAdhocEquivalence, MatchesRowBackend) {
  SharedTpch& shared = Shared();
  WorkloadProperties props = TpchWorkloadProperties();
  QueryGeneratorConfig qconfig;
  qconfig.seed = 20260809;
  AdhocQueryGenerator qgen(shared.catalog.get(), &props, qconfig);

  int verified = 0;
  for (int attempt = 0; attempt < 60 && verified < 12; ++attempt) {
    std::string sql = qgen.Next();
    auto plan = Plan(sql);
    if (!plan.ok()) continue;  // generator may exceed supported SQL
    ExpectEquivalent(*plan, sql);
    ++verified;
  }
  EXPECT_EQ(verified, 12) << "generator yielded too few plannable queries";
}

// --- NULL semantics ----------------------------------------------------------

// A small two-site engine whose data is riddled with NULLs: NULL filter
// keys, NULL join keys (must not match), NULL group keys (must group
// together), and one all-NULL column.
class VectorNullSemanticsTest : public ::testing::Test {
 protected:
  static std::unique_ptr<Engine> MakeEngine() {
    Catalog catalog;
    (void)*catalog.mutable_locations().AddLocation("s1");
    (void)*catalog.mutable_locations().AddLocation("s2");
    TableDef events;
    events.name = "events";
    events.schema = Schema({{"id", DataType::kInt64},
                            {"kind", DataType::kString},
                            {"amount", DataType::kInt64},
                            {"ghost", DataType::kInt64}});
    events.fragments = {TableFragment{0, 1.0}};
    events.stats.row_count = 200;
    (void)catalog.AddTable(events);
    TableDef kinds;
    kinds.name = "kinds";
    kinds.schema = Schema({{"kind", DataType::kString},
                           {"weight", DataType::kInt64}});
    kinds.fragments = {TableFragment{1, 1.0}};
    kinds.stats.row_count = 4;
    (void)catalog.AddTable(kinds);

    auto engine = std::make_unique<Engine>(std::move(catalog),
                                           NetworkModel::DefaultGeo(2));
    (void)engine->AddPolicy("s1", "ship * from events to *");
    (void)engine->AddPolicy("s2", "ship * from kinds to *");
    const char* pool[] = {"click", "view", "buy"};
    for (int64_t i = 0; i < 200; ++i) {
      engine->store().Append(
          0, "events",
          {Value::Int64(i),
           i % 7 == 0 ? Value::Null() : Value::String(pool[i % 3]),
           i % 5 == 0 ? Value::Null() : Value::Int64(i % 97),
           Value::Null()});
    }
    engine->store().Put(1, "kinds",
                        {{Value::String("click"), Value::Int64(1)},
                         {Value::String("view"), Value::Int64(2)},
                         {Value::Null(), Value::Int64(99)},
                         {Value::String("buy"), Value::Int64(5)}});
    return engine;
  }

  void ExpectAgree(const char* sql) {
    auto engine = MakeEngine();
    engine->set_exec_mode(ExecMode::kRow);
    auto row = engine->Run(sql);
    ASSERT_TRUE(row.ok()) << sql << ": " << row.status();
    for (int batch_size : {1, 7, 1024}) {
      engine->set_exec_mode(ExecMode::kVector);
      engine->default_exec_options().batch_size = batch_size;
      auto vec = engine->Run(sql);
      ASSERT_TRUE(vec.ok()) << sql << ": " << vec.status();
      EXPECT_EQ(Digest(*vec), Digest(*row))
          << sql << " batch=" << batch_size;
    }
  }
};

TEST_F(VectorNullSemanticsTest, FilterDropsNullPredicates) {
  ExpectAgree("SELECT id, amount FROM events WHERE amount > 50");
}

TEST_F(VectorNullSemanticsTest, NullJoinKeysNeverMatch) {
  ExpectAgree(
      "SELECT e.id, k.weight FROM events e, kinds k "
      "WHERE e.kind = k.kind AND e.amount < 30");
}

TEST_F(VectorNullSemanticsTest, NullGroupKeysFormOneGroup) {
  ExpectAgree(
      "SELECT kind, COUNT(*) AS n, SUM(amount) AS total FROM events "
      "GROUP BY kind");
}

TEST_F(VectorNullSemanticsTest, AllNullColumnSurvivesProjectAndAggregate) {
  ExpectAgree("SELECT ghost, id FROM events WHERE id < 10");
  ExpectAgree("SELECT COUNT(*) AS n, SUM(ghost) AS s FROM events");
}

TEST_F(VectorNullSemanticsTest, DisjunctionUsesKleeneLogic) {
  ExpectAgree(
      "SELECT id FROM events WHERE amount > 90 OR kind = 'click'");
}

// --- Randomized digest soak --------------------------------------------------

TEST(VectorDigestSoak, RandomSeedsAgreeWithRowBackend) {
  SharedTpch& shared = Shared();
  WorkloadProperties props = TpchWorkloadProperties();
  int verified = 0;
  for (uint64_t seed = 1; seed <= 40 && verified < 20; ++seed) {
    QueryGeneratorConfig qconfig;
    qconfig.seed = seed * 7919 + 1;
    AdhocQueryGenerator qgen(shared.catalog.get(), &props, qconfig);
    std::string sql = qgen.Next();
    auto plan = Plan(sql);
    if (!plan.ok()) continue;
    auto row = RunQuery(*plan, ExecMode::kRow, 1024, 1);
    auto vec = RunQuery(*plan, ExecMode::kVector, 1024, 1);
    ASSERT_TRUE(row.ok()) << sql;
    ASSERT_TRUE(vec.ok()) << sql;
    EXPECT_EQ(Digest(*vec), Digest(*row)) << "seed " << seed << ": " << sql;
    ++verified;
  }
  EXPECT_GE(verified, 10) << "soak exercised too few queries";
}

}  // namespace
}  // namespace cgq
