#include "service/plan_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"

namespace cgq {
namespace {

// Three sites; cust lives at n, ord at e — two tables at two locations so
// fine-grained invalidation has unrelated dependencies to leave alone.
class PlanCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Catalog catalog;
    for (const char* l : {"n", "e", "a"}) {
      ASSERT_TRUE(catalog.mutable_locations().AddLocation(l).ok());
    }
    TableDef cust;
    cust.name = "cust";
    cust.schema = Schema({{"id", DataType::kInt64},
                          {"name", DataType::kString}});
    cust.fragments = {TableFragment{0, 1.0}};
    cust.stats.row_count = 100;
    ASSERT_TRUE(catalog.AddTable(cust).ok());
    TableDef ord;
    ord.name = "ord";
    ord.schema = Schema({{"oid", DataType::kInt64},
                         {"cid", DataType::kInt64}});
    ord.fragments = {TableFragment{1, 1.0}};
    ord.stats.row_count = 100;
    ASSERT_TRUE(catalog.AddTable(ord).ok());
    engine_ = std::make_unique<Engine>(std::move(catalog),
                                       NetworkModel::DefaultGeo(3));
    ASSERT_TRUE(engine_->AddPolicy("n", "ship * from cust to *").ok());
    ASSERT_TRUE(engine_->AddPolicy("e", "ship * from ord to *").ok());
  }

  OptimizedQuery MustOptimize(const std::string& sql) {
    auto r = engine_->Optimize(sql);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status();
    return std::move(*r);
  }

  PolicyCatalog& policies() { return engine_->policies(); }

  std::unique_ptr<Engine> engine_;
};

TEST_F(PlanCacheTest, KeyNormalizesWhitespaceAndCaseOutsideLiterals) {
  OptimizerOptions opts;
  auto a = PlanCache::ComputeKey("SELECT name FROM cust", opts);
  auto b = PlanCache::ComputeKey("  select   NAME \n FROM  cust ", opts);
  EXPECT_EQ(a, b);

  // String literals keep their case and spacing.
  auto c = PlanCache::ComputeKey("SELECT id FROM cust WHERE name = 'A B'",
                                 opts);
  auto d = PlanCache::ComputeKey("SELECT id FROM cust WHERE name = 'a b'",
                                 opts);
  EXPECT_FALSE(c == d);

  // Plan-shaping options split the key; throughput knobs do not.
  OptimizerOptions pinned = opts;
  pinned.required_result = LocationSet::Single(1);
  EXPECT_FALSE(a == PlanCache::ComputeKey("SELECT name FROM cust", pinned));
  OptimizerOptions threaded = opts;
  threaded.threads = 8;
  threaded.implication_cache = false;
  EXPECT_EQ(a, PlanCache::ComputeKey("SELECT name FROM cust", threaded));
}

TEST_F(PlanCacheTest, HitAfterInsertMissOtherwise) {
  PlanCache cache;
  OptimizerOptions opts = engine_->default_options();
  const std::string sql = "SELECT name FROM cust";
  PlanCache::Key key = PlanCache::ComputeKey(sql, opts);

  EXPECT_FALSE(cache.Lookup(key, policies()).has_value());
  cache.Insert(key, MustOptimize(sql), policies());
  auto hit = cache.Lookup(key, policies());
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->compliant);
  ASSERT_NE(hit->plan, nullptr);

  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST_F(PlanCacheTest, ServedPlansAreDeepCopies) {
  PlanCache cache;
  OptimizerOptions opts = engine_->default_options();
  const std::string sql = "SELECT name FROM cust";
  PlanCache::Key key = PlanCache::ComputeKey(sql, opts);
  cache.Insert(key, MustOptimize(sql), policies());

  auto first = cache.Lookup(key, policies());
  auto second = cache.Lookup(key, policies());
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(first->plan.get(), second->plan.get());
  // Mutating one served copy must not leak into the next hit.
  first->plan->table = "tampered";
  auto third = cache.Lookup(key, policies());
  ASSERT_TRUE(third.has_value());
  EXPECT_NE(third->plan->table, "tampered");
}

TEST_F(PlanCacheTest, UnrelatedPolicyChangeRevalidatesInsteadOfInvalidating) {
  PlanCache cache;
  OptimizerOptions opts = engine_->default_options();
  const std::string sql = "SELECT name FROM cust";
  PlanCache::Key key = PlanCache::ComputeKey(sql, opts);
  cache.Insert(key, MustOptimize(sql), policies());

  const uint64_t epoch_before = policies().epoch();
  // ord's policies change; cust's dependency fingerprint does not.
  ASSERT_TRUE(engine_->AddPolicy("e", "ship oid from ord to a").ok());
  ASSERT_GT(policies().epoch(), epoch_before);

  auto hit = cache.Lookup(key, policies());
  EXPECT_TRUE(hit.has_value());
  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.invalidations, 0);

  // The refreshed entry is fresh again: a second lookup takes the cheap
  // epoch-equality path (same observable result).
  EXPECT_TRUE(cache.Lookup(key, policies()).has_value());
}

TEST_F(PlanCacheTest, RelevantPolicyChangeInvalidates) {
  PlanCache cache;
  OptimizerOptions opts = engine_->default_options();
  const std::string sql = "SELECT name FROM cust";
  PlanCache::Key key = PlanCache::ComputeKey(sql, opts);
  cache.Insert(key, MustOptimize(sql), policies());

  // Dropping cust's policy changes the (n, cust) fingerprint.
  int64_t cust_policy = policies().For(0)[0].id;
  ASSERT_TRUE(policies().RemovePolicy(cust_policy).ok());

  EXPECT_FALSE(cache.Lookup(key, policies()).has_value());
  PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.invalidations, 1);
  EXPECT_EQ(stats.entries, 0u);
}

TEST_F(PlanCacheTest, RemovePolicyIsNotFoundForUnknownId) {
  EXPECT_TRUE(policies().RemovePolicy(123456).IsNotFound());
}

TEST_F(PlanCacheTest, ClearBumpsEpochAndInvalidates) {
  PlanCache cache;
  OptimizerOptions opts = engine_->default_options();
  const std::string sql = "SELECT name FROM cust";
  PlanCache::Key key = PlanCache::ComputeKey(sql, opts);
  cache.Insert(key, MustOptimize(sql), policies());

  const uint64_t before = policies().epoch();
  policies().Clear();
  EXPECT_GT(policies().epoch(), before);
  // Every dependency fingerprint changed (no policies govern cust now).
  EXPECT_FALSE(cache.Lookup(key, policies()).has_value());
}

TEST_F(PlanCacheTest, LruEvictsAtByteBudget) {
  // Size the budget from a real entry so the test is robust to plan-size
  // drift: room for about three entries, one shard so LRU order is global.
  OptimizerOptions opts = engine_->default_options();
  OptimizedQuery probe = MustOptimize("SELECT name FROM cust");
  const size_t entry_bytes =
      sizeof(void*) * 8 + PlanCache::EstimatePlanBytes(*probe.plan);

  PlanCacheOptions copts;
  copts.shards = 1;
  copts.max_bytes = entry_bytes * 4;
  PlanCache cache(copts);

  std::vector<PlanCache::Key> keys;
  for (int i = 0; i < 10; ++i) {
    std::string sql = "SELECT name FROM cust WHERE id > " + std::to_string(i);
    PlanCache::Key key = PlanCache::ComputeKey(sql, opts);
    keys.push_back(key);
    cache.Insert(key, MustOptimize(sql), policies());
  }

  PlanCacheStats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0);
  EXPECT_LT(stats.entries, 10u);
  EXPECT_LE(stats.bytes, copts.max_bytes);
  // The most recent insert survives; the oldest was evicted.
  EXPECT_TRUE(cache.Lookup(keys.back(), policies()).has_value());
  EXPECT_FALSE(cache.Lookup(keys.front(), policies()).has_value());
}

TEST_F(PlanCacheTest, ExplicitInvalidateErases) {
  PlanCache cache;
  OptimizerOptions opts = engine_->default_options();
  PlanCache::Key key = PlanCache::ComputeKey("SELECT name FROM cust", opts);
  cache.Insert(key, MustOptimize("SELECT name FROM cust"), policies());
  cache.Invalidate(key);
  EXPECT_FALSE(cache.Lookup(key, policies()).has_value());
  EXPECT_EQ(cache.stats().invalidations, 1);
}

// Threaded stress (meaningful under TSan): concurrent lookups, inserts,
// invalidations and clears on a shared cache, with policy mutations
// serialized against readers by a shared_mutex exactly as QueryService
// does it.
TEST_F(PlanCacheTest, ThreadedStress) {
  PlanCacheOptions copts;
  copts.shards = 4;
  copts.max_bytes = 1 << 16;  // small enough to force evictions
  PlanCache cache(copts);
  OptimizerOptions opts = engine_->default_options();

  std::vector<std::string> sqls;
  std::vector<OptimizedQuery> plans;
  std::vector<PlanCache::Key> keys;
  for (int i = 0; i < 8; ++i) {
    sqls.push_back("SELECT name FROM cust WHERE id > " + std::to_string(i));
    plans.push_back(MustOptimize(sqls.back()));
    keys.push_back(PlanCache::ComputeKey(sqls.back(), opts));
  }

  std::shared_mutex policy_mu;
  std::atomic<int64_t> hits{0};
  constexpr int kThreads = 8;
  constexpr int kIters = 300;
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        size_t k = static_cast<size_t>((t + i) % 8);
        std::shared_lock<std::shared_mutex> lock(policy_mu);
        if (i % 7 == 3) {
          cache.Insert(keys[k], plans[k], policies());
        } else if (i % 31 == 5) {
          cache.Invalidate(keys[k]);
        } else if (i % 97 == 11) {
          cache.Clear();
        } else {
          if (cache.Lookup(keys[k], policies()).has_value()) {
            hits.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  // One writer toggling an unrelated policy so epochs move during the run.
  threads.emplace_back([&] {
    for (int i = 0; i < 40; ++i) {
      std::unique_lock<std::shared_mutex> lock(policy_mu);
      ASSERT_TRUE(
          engine_->AddPolicy("e", "ship oid from ord to a").ok());
      int64_t id = policies().For(1).back().id;
      ASSERT_TRUE(policies().RemovePolicy(id).ok());
    }
  });
  for (std::thread& th : threads) th.join();

  PlanCacheStats stats = cache.stats();
  EXPECT_GT(hits.load(), 0);
  EXPECT_EQ(stats.hits, hits.load());
  // Cached entries still serve valid deep copies afterwards.
  cache.Insert(keys[0], plans[0], policies());
  auto hit = cache.Lookup(keys[0], policies());
  ASSERT_TRUE(hit.has_value());
  EXPECT_NE(hit->plan, nullptr);
}

}  // namespace
}  // namespace cgq
