#include <gtest/gtest.h>

#include "exec/executor.h"
#include "net/network_model.h"
#include "tpch/tpch.h"
#include "workload/query_generator.h"

namespace cgq {
namespace {

class TpchExtendedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_.scale_factor = 0.002;
    catalog_ = std::make_unique<Catalog>(*tpch::BuildCatalog(config_));
    policies_ = std::make_unique<PolicyCatalog>(catalog_.get());
    net_ = std::make_unique<NetworkModel>(NetworkModel::DefaultGeo(5));
  }

  Result<OptimizedQuery> Run(bool compliant, int query) {
    OptimizerOptions opts;
    opts.compliant = compliant;
    QueryOptimizer optimizer(catalog_.get(), policies_.get(), net_.get(),
                             opts);
    return optimizer.Optimize(*tpch::Query(query));
  }

  tpch::TpchConfig config_;
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<PolicyCatalog> policies_;
  std::unique_ptr<NetworkModel> net_;
};

TEST_F(TpchExtendedTest, ExtendedQueriesOptimizeUnderAllSets) {
  for (const char* set : {"T", "C", "CR", "CRA"}) {
    ASSERT_TRUE(tpch::InstallPolicySet(set, policies_.get()).ok());
    for (int q : tpch::ExtendedQueryNumbers()) {
      auto r = Run(true, q);
      ASSERT_TRUE(r.ok()) << set << "/Q" << q << ": " << r.status();
      EXPECT_TRUE(r->compliant) << set << "/Q" << q;
    }
  }
}

TEST_F(TpchExtendedTest, SingleTableQueriesStayLocal) {
  ASSERT_TRUE(tpch::InstallPolicySet("CRA", policies_.get()).ok());
  for (int q : {1, 6}) {
    auto r = Run(true, q);
    ASSERT_TRUE(r.ok()) << "Q" << q;
    // Q1/Q6 touch only lineitem: everything runs at l4.
    EXPECT_EQ(r->result_location, 3u) << "Q" << q;
  }
}

TEST_F(TpchExtendedTest, ExtendedQueriesExecute) {
  ASSERT_TRUE(tpch::InstallPolicySet("T", policies_.get()).ok());
  TableStore store;
  ASSERT_TRUE(tpch::GenerateData(*catalog_, config_, &store).ok());
  Executor executor(&store, net_.get());
  for (int q : tpch::ExtendedQueryNumbers()) {
    auto plan = Run(true, q);
    ASSERT_TRUE(plan.ok()) << "Q" << q;
    auto result = executor.Execute(*plan);
    ASSERT_TRUE(result.ok()) << "Q" << q << ": " << result.status();
    if (q == 1) {
      // Q1 groups by (returnflag, linestatus): 3 x 2 groups.
      EXPECT_EQ(result->rows.size(), 6u);
    }
    if (q == 6 || q == 14 || q == 19) {
      EXPECT_EQ(result->rows.size(), 1u);  // global aggregates
    }
  }
}

TEST_F(TpchExtendedTest, Q19DisjunctivePredicateIsHandled) {
  // Q19's OR-of-ANDs references both tables: it must survive parsing,
  // planning (as a join conjunct) and execution.
  ASSERT_TRUE(tpch::InstallPolicySet("T", policies_.get()).ok());
  auto r = Run(true, 19);
  ASSERT_TRUE(r.ok()) << r.status();
  std::string plan = PlanToString(*r->plan, nullptr);
  EXPECT_NE(plan.find("OR"), std::string::npos);
}

TEST_F(TpchExtendedTest, ResponseTimeObjectiveEndToEnd) {
  ASSERT_TRUE(tpch::InstallPolicySet("CR", policies_.get()).ok());
  for (int q : {3, 5, 9}) {
    OptimizerOptions total;
    OptimizerOptions response;
    response.response_time_objective = true;
    QueryOptimizer opt_total(catalog_.get(), policies_.get(), net_.get(),
                             total);
    QueryOptimizer opt_resp(catalog_.get(), policies_.get(), net_.get(),
                            response);
    auto a = opt_total.Optimize(*tpch::Query(q));
    auto b = opt_resp.Optimize(*tpch::Query(q));
    ASSERT_TRUE(a.ok() && b.ok()) << "Q" << q;
    EXPECT_TRUE(a->compliant && b->compliant) << "Q" << q;
    // Response time (max over parallel inputs) never exceeds total cost.
    EXPECT_LE(b->comm_cost_ms, a->comm_cost_ms + 1e-9) << "Q" << q;
  }
}

// Execution-level semantics fuzz: generated queries produce identical
// result multisets under the compliant and the traditional optimizer.
TEST_F(TpchExtendedTest, AdhocExecutionAgreement) {
  ASSERT_TRUE(tpch::InstallPolicySet("CRA", policies_.get()).ok());
  TableStore store;
  ASSERT_TRUE(tpch::GenerateData(*catalog_, config_, &store).ok());
  Executor executor(&store, net_.get());

  WorkloadProperties properties = TpchWorkloadProperties();
  QueryGeneratorConfig qconfig;
  qconfig.seed = 777;
  AdhocQueryGenerator qgen(catalog_.get(), &properties, qconfig);

  auto canon = [](const QueryResult& r) {
    std::vector<std::string> rows;
    for (const Row& row : r.rows) {
      std::string s;
      for (const Value& v : row) {
        if (v.is_double()) {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%.4f|", v.dbl());
          s += buf;
        } else {
          s += v.ToString() + "|";
        }
      }
      rows.push_back(std::move(s));
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  };

  int executed = 0;
  for (int i = 0; i < 25; ++i) {
    std::string sql = qgen.Next();
    auto c = Run(true, 3);  // warm placeholder; real optimize below
    OptimizerOptions copts;
    QueryOptimizer compliant(catalog_.get(), policies_.get(), net_.get(),
                             copts);
    OptimizerOptions topts;
    topts.compliant = false;
    QueryOptimizer traditional(catalog_.get(), policies_.get(), net_.get(),
                               topts);
    auto rc = compliant.Optimize(sql);
    auto rt = traditional.Optimize(sql);
    if (!rc.ok() || !rt.ok()) continue;
    auto ec = executor.Execute(*rc);
    auto et = executor.Execute(*rt);
    ASSERT_TRUE(ec.ok()) << sql << "\n" << ec.status();
    ASSERT_TRUE(et.ok()) << sql << "\n" << et.status();
    EXPECT_EQ(canon(*ec), canon(*et)) << sql;
    ++executed;
  }
  EXPECT_GT(executed, 10);
}

}  // namespace
}  // namespace cgq
