#include <gtest/gtest.h>

#include <algorithm>

#include "exec/executor.h"
#include "net/network_model.h"
#include "tpch/tpch.h"

namespace cgq {
namespace {

class TpchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_.scale_factor = 0.002;  // tiny: execution tests stay fast
    auto catalog = tpch::BuildCatalog(config_);
    ASSERT_TRUE(catalog.ok()) << catalog.status();
    catalog_ = std::make_unique<Catalog>(std::move(*catalog));
    policies_ = std::make_unique<PolicyCatalog>(catalog_.get());
    net_ = std::make_unique<NetworkModel>(NetworkModel::DefaultGeo(5));
  }

  Result<OptimizedQuery> Run(bool compliant, int query) {
    OptimizerOptions opts;
    opts.compliant = compliant;
    QueryOptimizer optimizer(catalog_.get(), policies_.get(), net_.get(),
                             opts);
    auto sql = tpch::Query(query);
    EXPECT_TRUE(sql.ok());
    return optimizer.Optimize(*sql);
  }

  tpch::TpchConfig config_;
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<PolicyCatalog> policies_;
  std::unique_ptr<NetworkModel> net_;
};

TEST_F(TpchTest, CatalogHasTableTwoPlacement) {
  // Table 2 of the paper.
  struct {
    const char* table;
    LocationId home;
  } expected[] = {{"customer", 0}, {"orders", 0},   {"supplier", 1},
                  {"partsupp", 1}, {"part", 2},     {"lineitem", 3},
                  {"nation", 4},   {"region", 4}};
  for (const auto& e : expected) {
    auto t = catalog_->GetTable(e.table);
    ASSERT_TRUE(t.ok()) << e.table;
    EXPECT_EQ((*t)->home(), e.home) << e.table;
  }
}

TEST_F(TpchTest, StatsScaleWithScaleFactor) {
  EXPECT_DOUBLE_EQ(tpch::RowsOf("lineitem", 10), 60012150);
  EXPECT_DOUBLE_EQ(tpch::RowsOf("customer", 1), 150000);
  EXPECT_DOUBLE_EQ(tpch::RowsOf("region", 10), 5);
}

TEST_F(TpchTest, AllQueriesParseAndBind) {
  ASSERT_TRUE(tpch::InstallUnrestrictedPolicies(policies_.get()).ok());
  for (int q : tpch::QueryNumbers()) {
    auto r = Run(true, q);
    EXPECT_TRUE(r.ok()) << "Q" << q << ": " << r.status();
  }
}

TEST_F(TpchTest, CompliantOptimizerSucceedsOnAllSetQueryVariants) {
  // The paper's effectiveness experiment (§7.2): 6 queries x 4 sets, the
  // compliance-based optimizer always finds a compliant plan.
  for (const char* set : {"T", "C", "CR", "CRA"}) {
    ASSERT_TRUE(tpch::InstallPolicySet(set, policies_.get()).ok()) << set;
    for (int q : tpch::QueryNumbers()) {
      auto r = Run(true, q);
      ASSERT_TRUE(r.ok()) << set << "/Q" << q << ": " << r.status();
      EXPECT_TRUE(r->compliant)
          << set << "/Q" << q << "\n"
          << PlanToString(*r->plan, &catalog_->locations());
    }
  }
}

TEST_F(TpchTest, TraditionalOptimizerProducesSomeNonCompliantPlans) {
  int non_compliant = 0, total = 0;
  for (const char* set : {"T", "C", "CR", "CRA"}) {
    ASSERT_TRUE(tpch::InstallPolicySet(set, policies_.get()).ok());
    for (int q : tpch::QueryNumbers()) {
      auto r = Run(false, q);
      ASSERT_TRUE(r.ok()) << set << "/Q" << q << ": " << r.status();
      ++total;
      non_compliant += r->compliant ? 0 : 1;
    }
  }
  // Fig 5(a): the baseline violates policies in a substantial fraction of
  // the 24 variants (paper: 8 of 24).
  EXPECT_GE(non_compliant, 4) << "of " << total;
  EXPECT_LT(non_compliant, total);
}

TEST_F(TpchTest, GeneratedDataMatchesCatalogCounts) {
  TableStore store;
  ASSERT_TRUE(tpch::GenerateData(*catalog_, config_, &store).ok());
  auto rows = store.Get(0, "customer");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)->size(),
            static_cast<size_t>(tpch::RowsOf("customer",
                                             config_.scale_factor)));
  auto region = store.Get(4, "region");
  ASSERT_TRUE(region.ok());
  EXPECT_EQ((*region)->size(), 5u);
  // Lineitem row count is stochastic (1-7 lines/order): sanity range.
  auto li = store.Get(3, "lineitem");
  ASSERT_TRUE(li.ok());
  double orders = tpch::RowsOf("orders", config_.scale_factor);
  EXPECT_GT((*li)->size(), orders);
  EXPECT_LT((*li)->size(), orders * 7 + 1);
}

TEST_F(TpchTest, GenerationIsDeterministic) {
  TableStore a, b;
  ASSERT_TRUE(tpch::GenerateData(*catalog_, config_, &a).ok());
  ASSERT_TRUE(tpch::GenerateData(*catalog_, config_, &b).ok());
  auto ra = a.Get(2, "part");
  auto rb = b.Get(2, "part");
  ASSERT_TRUE(ra.ok() && rb.ok());
  ASSERT_EQ((*ra)->size(), (*rb)->size());
  for (size_t i = 0; i < (*ra)->size(); ++i) {
    EXPECT_TRUE(RowsStructurallyEqual((**ra)[i], (**rb)[i]));
  }
}

// Semantics preservation: the compliant plan must return exactly the rows
// of the traditional plan (the paper's definition of a compliant QEP
// requires unchanged query semantics, §3.2).
TEST_F(TpchTest, CompliantAndTraditionalPlansAgreeOnResults) {
  TableStore store;
  ASSERT_TRUE(tpch::GenerateData(*catalog_, config_, &store).ok());
  Executor executor(&store, net_.get());

  for (const char* set : {"T", "CR", "CRA"}) {
    ASSERT_TRUE(tpch::InstallPolicySet(set, policies_.get()).ok());
    for (int q : {3, 5, 10}) {
      auto compliant = Run(true, q);
      ASSERT_TRUE(compliant.ok()) << set << "/Q" << q;
      auto baseline = Run(false, q);
      ASSERT_TRUE(baseline.ok()) << set << "/Q" << q;

      auto res_c = executor.Execute(*compliant);
      ASSERT_TRUE(res_c.ok()) << set << "/Q" << q << ": "
                              << res_c.status();
      auto res_b = executor.Execute(*baseline);
      ASSERT_TRUE(res_b.ok()) << set << "/Q" << q << ": "
                              << res_b.status();

      // Compare as multisets of stringified rows (double formatting is
      // stable since both paths compute identical arithmetic).
      auto canon = [](const QueryResult& r) {
        std::vector<std::string> rows;
        for (const Row& row : r.rows) {
          std::string s;
          for (const Value& v : row) {
            if (v.is_double()) {
              char buf[32];
              std::snprintf(buf, sizeof(buf), "%.4f|", v.dbl());
              s += buf;
            } else {
              s += v.ToString() + "|";
            }
          }
          rows.push_back(std::move(s));
        }
        std::sort(rows.begin(), rows.end());
        return rows;
      };
      EXPECT_EQ(canon(*res_c), canon(*res_b)) << set << "/Q" << q;
    }
  }
}

TEST_F(TpchTest, ExecutionChargesNetworkForShips) {
  TableStore store;
  ASSERT_TRUE(tpch::GenerateData(*catalog_, config_, &store).ok());
  Executor executor(&store, net_.get());
  ASSERT_TRUE(tpch::InstallPolicySet("T", policies_.get()).ok());
  auto q3 = Run(true, 3);
  ASSERT_TRUE(q3.ok()) << q3.status();
  auto res = executor.Execute(*q3);
  ASSERT_TRUE(res.ok()) << res.status();
  EXPECT_GT(res->metrics.ships, 0);
  EXPECT_GT(res->metrics.bytes_shipped, 0);
  EXPECT_GT(res->metrics.network_ms, 0);
  EXPECT_LE(res->rows.size(), 10u);  // LIMIT 10
}

TEST_F(TpchTest, PolicySetSizesMatchPaper) {
  EXPECT_EQ(tpch::PolicySet("T")->size(), 8u);
  EXPECT_EQ(tpch::PolicySet("C")->size(), 10u);
  EXPECT_EQ(tpch::PolicySet("CR")->size(), 10u);
  EXPECT_EQ(tpch::PolicySet("CRA")->size(), 10u);
  EXPECT_FALSE(tpch::PolicySet("bogus").ok());
}

}  // namespace
}  // namespace cgq
