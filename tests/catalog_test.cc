#include <gtest/gtest.h>

#include "catalog/catalog.h"

namespace cgq {
namespace {

TEST(LocationSetTest, BasicOps) {
  LocationSet s;
  EXPECT_TRUE(s.empty());
  s.Add(3);
  s.Add(0);
  EXPECT_TRUE(s.Contains(0));
  EXPECT_TRUE(s.Contains(3));
  EXPECT_FALSE(s.Contains(1));
  EXPECT_EQ(s.Count(), 2u);
  EXPECT_EQ(s.ToVector(), (std::vector<LocationId>{0, 3}));
  s.Remove(0);
  EXPECT_FALSE(s.Contains(0));
}

TEST(LocationSetTest, SetAlgebra) {
  LocationSet a = LocationSet::Single(1).Union(LocationSet::Single(2));
  LocationSet b = LocationSet::Single(2).Union(LocationSet::Single(3));
  EXPECT_EQ(a.Intersect(b), LocationSet::Single(2));
  EXPECT_EQ(a.Union(b).Count(), 3u);
  EXPECT_TRUE(LocationSet::Single(2).IsSubsetOf(a));
  EXPECT_FALSE(a.IsSubsetOf(b));
  EXPECT_TRUE(LocationSet().IsSubsetOf(a));
}

TEST(LocationSetTest, AllOf) {
  EXPECT_EQ(LocationSet::AllOf(5).Count(), 5u);
  EXPECT_EQ(LocationSet::AllOf(64).Count(), 64u);
  EXPECT_TRUE(LocationSet::AllOf(0).empty());
}

TEST(LocationCatalogTest, AddAndLookup) {
  LocationCatalog locs;
  auto id1 = locs.AddLocation("Europe");
  ASSERT_TRUE(id1.ok());
  EXPECT_EQ(*id1, 0u);
  auto id2 = locs.AddLocation("Asia");
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(*locs.GetId("europe"), 0u);  // case-insensitive
  EXPECT_EQ(locs.GetName(1), "Asia");
  EXPECT_FALSE(locs.GetId("mars").ok());
  EXPECT_TRUE(locs.AddLocation("EUROPE").status().code() ==
              StatusCode::kAlreadyExists);
}

TEST(LocationCatalogTest, SetToString) {
  LocationCatalog locs;
  (void)locs.AddLocation("n");
  (void)locs.AddLocation("e");
  LocationSet s;
  s.Add(0);
  s.Add(1);
  EXPECT_EQ(locs.SetToString(s), "{n, e}");
  EXPECT_EQ(locs.SetToString(LocationSet()), "{}");
}

class CatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_.mutable_locations().AddLocation("x").ok());
    ASSERT_TRUE(catalog_.mutable_locations().AddLocation("y").ok());
  }
  TableDef MakeTable(const std::string& name, LocationId home) {
    TableDef t;
    t.name = name;
    t.schema = Schema({{"a", DataType::kInt64}});
    t.fragments = {TableFragment{home, 1.0}};
    return t;
  }
  Catalog catalog_;
};

TEST_F(CatalogTest, AddGetTable) {
  ASSERT_TRUE(catalog_.AddTable(MakeTable("Foo", 0)).ok());
  auto t = catalog_.GetTable("FOO");  // case-insensitive
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->name, "foo");
  EXPECT_EQ((*t)->home(), 0u);
  EXPECT_TRUE(catalog_.HasTable("foo"));
  EXPECT_FALSE(catalog_.HasTable("bar"));
  EXPECT_FALSE(catalog_.GetTable("bar").ok());
}

TEST_F(CatalogTest, RejectsInvalidTables) {
  EXPECT_TRUE(catalog_.AddTable(MakeTable("", 0)).IsInvalidArgument());
  TableDef no_fragments = MakeTable("t", 0);
  no_fragments.fragments.clear();
  EXPECT_TRUE(catalog_.AddTable(no_fragments).IsInvalidArgument());
  EXPECT_TRUE(catalog_.AddTable(MakeTable("t", 7)).IsInvalidArgument());
  ASSERT_TRUE(catalog_.AddTable(MakeTable("t", 0)).ok());
  EXPECT_EQ(catalog_.AddTable(MakeTable("T", 1)).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(CatalogTest, SetFragmentsAndLocations) {
  ASSERT_TRUE(catalog_.AddTable(MakeTable("t", 0)).ok());
  ASSERT_TRUE(catalog_
                  .SetFragments("t", {TableFragment{0, 0.5},
                                      TableFragment{1, 0.5}})
                  .ok());
  auto t = catalog_.GetTable("t");
  EXPECT_FALSE((*t)->IsSingleLocation());
  EXPECT_EQ((*t)->LocationsOf().Count(), 2u);
  EXPECT_FALSE(catalog_.SetFragments("nope", {TableFragment{0, 1}}).ok());
  EXPECT_FALSE(catalog_.SetFragments("t", {}).ok());
}

TEST_F(CatalogTest, SetStats) {
  ASSERT_TRUE(catalog_.AddTable(MakeTable("t", 0)).ok());
  TableStats stats;
  stats.row_count = 42;
  stats.columns["a"] = ColumnStats{10, 1, 100, 8};
  ASSERT_TRUE(catalog_.SetStats("t", stats).ok());
  auto t = catalog_.GetTable("t");
  EXPECT_DOUBLE_EQ((*t)->stats.row_count, 42);
  ASSERT_NE((*t)->stats.FindColumn("a"), nullptr);
  EXPECT_DOUBLE_EQ((*t)->stats.FindColumn("a")->distinct_count, 10);
  EXPECT_EQ((*t)->stats.FindColumn("zz"), nullptr);
}

TEST_F(CatalogTest, TableNamesSorted) {
  ASSERT_TRUE(catalog_.AddTable(MakeTable("zeta", 0)).ok());
  ASSERT_TRUE(catalog_.AddTable(MakeTable("alpha", 1)).ok());
  EXPECT_EQ(catalog_.TableNames(),
            (std::vector<std::string>{"alpha", "zeta"}));
}

}  // namespace
}  // namespace cgq
