#include <gtest/gtest.h>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/str_util.h"

namespace cgq {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad thing");
}

TEST(StatusTest, NonCompliantCode) {
  Status s = Status::NonCompliant("no compliant plan");
  EXPECT_TRUE(s.IsNonCompliant());
}

TEST(StatusTest, CopyIsCheapAndEqualCode) {
  Status s = Status::NotFound("x");
  Status t = s;
  EXPECT_EQ(t.code(), StatusCode::kNotFound);
  EXPECT_EQ(t.message(), "x");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fn = []() -> Status {
    CGQ_RETURN_NOT_OK(Status::OK());
    CGQ_RETURN_NOT_OK(Status::Internal("boom"));
    return Status::OK();
  };
  EXPECT_TRUE(fn().IsInternal());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto ok = []() -> Result<int> { return 7; };
  auto fail = []() -> Result<int> { return Status::NotFound("x"); };
  auto fn = [&](bool use_fail) -> Result<int> {
    CGQ_ASSIGN_OR_RETURN(int v, use_fail ? fail() : ok());
    return v + 1;
  };
  EXPECT_EQ(*fn(false), 8);
  EXPECT_TRUE(fn(true).status().IsNotFound());
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformSingleton) {
  Rng rng(7);
  EXPECT_EQ(rng.Uniform(3, 3), 3);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, SampleIndicesDistinct) {
  Rng rng(1);
  auto idx = rng.SampleIndices(10, 5);
  ASSERT_EQ(idx.size(), 5u);
  for (size_t i = 0; i < idx.size(); ++i) {
    EXPECT_LT(idx[i], 10u);
    for (size_t j = i + 1; j < idx.size(); ++j) EXPECT_NE(idx[i], idx[j]);
  }
}

TEST(RngTest, SampleIndicesCapped) {
  Rng rng(1);
  EXPECT_EQ(rng.SampleIndices(3, 10).size(), 3u);
}

TEST(StrUtilTest, ToLowerUpper) {
  EXPECT_EQ(ToLower("AbC_1"), "abc_1");
  EXPECT_EQ(ToUpper("AbC_1"), "ABC_1");
}

TEST(StrUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("Customer", "CUSTOMER"));
  EXPECT_FALSE(EqualsIgnoreCase("Customer", "Customers"));
}

TEST(StrUtilTest, Trim) {
  EXPECT_EQ(Trim("  a b  "), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StrUtilTest, SplitAndTrim) {
  auto parts = SplitAndTrim(" a, b ,c ", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StrUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StrUtilTest, LikeExact) {
  EXPECT_TRUE(LikeMatch("abc", "abc"));
  EXPECT_FALSE(LikeMatch("abc", "abd"));
}

TEST(StrUtilTest, LikePercent) {
  EXPECT_TRUE(LikeMatch("STANDARD COPPER BRUSHED", "%COPPER%"));
  EXPECT_TRUE(LikeMatch("Anna", "A%"));
  EXPECT_FALSE(LikeMatch("Bob", "A%"));
  EXPECT_TRUE(LikeMatch("", "%"));
}

TEST(StrUtilTest, LikeUnderscore) {
  EXPECT_TRUE(LikeMatch("cat", "c_t"));
  EXPECT_FALSE(LikeMatch("cart", "c_t"));
  EXPECT_TRUE(LikeMatch("cart", "c__t"));
}

TEST(StrUtilTest, LikeMixed) {
  EXPECT_TRUE(LikeMatch("PROMO BURNISHED COPPER", "PROMO%COPPER"));
  EXPECT_TRUE(LikeMatch("xay", "_a%"));
  EXPECT_FALSE(LikeMatch("ax", "_a%"));
}

}  // namespace
}  // namespace cgq
