#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/engine.h"

namespace cgq {
namespace {

// The same logical database, stored (a) at one site and (b) horizontally
// fragmented over three sites, must answer every query identically —
// fragmentation is purely physical.
class FragmentationEquivalenceTest : public ::testing::Test {
 protected:
  std::unique_ptr<Engine> MakeEngine(bool fragmented) {
    Catalog catalog;
    for (const char* l : {"s1", "s2", "s3"}) {
      (void)*catalog.mutable_locations().AddLocation(l);
    }
    TableDef events;
    events.name = "events";
    events.schema = Schema({{"id", DataType::kInt64},
                            {"kind", DataType::kString},
                            {"amount", DataType::kInt64}});
    if (fragmented) {
      events.fragments = {TableFragment{0, 0.34}, TableFragment{1, 0.33},
                          TableFragment{2, 0.33}};
    } else {
      events.fragments = {TableFragment{0, 1.0}};
    }
    events.stats.row_count = 90;
    (void)catalog.AddTable(events);

    TableDef kinds;
    kinds.name = "kinds";
    kinds.schema = Schema({{"kind", DataType::kString},
                           {"weight", DataType::kInt64}});
    kinds.fragments = {TableFragment{1, 1.0}};
    kinds.stats.row_count = 3;
    (void)catalog.AddTable(kinds);

    auto engine = std::make_unique<Engine>(std::move(catalog),
                                           NetworkModel::DefaultGeo(3));
    for (const char* l : {"s1", "s2", "s3"}) {
      (void)engine->AddPolicy(l, "ship * from events to *");
    }
    (void)engine->AddPolicy("s2", "ship * from kinds to *");

    // Deterministic rows, spread round-robin when fragmented.
    Rng rng(7);
    const char* kinds_pool[] = {"click", "view", "buy"};
    for (int64_t i = 0; i < 90; ++i) {
      Row row = {Value::Int64(i),
                 Value::String(kinds_pool[rng.Uniform(0, 2)]),
                 Value::Int64(rng.Uniform(1, 100))};
      LocationId loc = fragmented ? static_cast<LocationId>(i % 3) : 0;
      engine->store().Append(loc, "events", std::move(row));
    }
    engine->store().Put(1, "kinds",
                        {{Value::String("click"), Value::Int64(1)},
                         {Value::String("view"), Value::Int64(2)},
                         {Value::String("buy"), Value::Int64(5)}});
    return engine;
  }

  static std::vector<std::string> Canon(const QueryResult& r) {
    std::vector<std::string> rows;
    for (const Row& row : r.rows) {
      std::string s;
      for (const Value& v : row) s += v.ToString() + "|";
      rows.push_back(std::move(s));
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  }
};

TEST_F(FragmentationEquivalenceTest, QueriesAgree) {
  auto single = MakeEngine(false);
  auto fragmented = MakeEngine(true);
  const char* queries[] = {
      "SELECT id, amount FROM events WHERE amount > 50",
      "SELECT kind, COUNT(*) AS n, SUM(amount) AS total FROM events "
      "GROUP BY kind",
      "SELECT e.id, k.weight FROM events e, kinds k "
      "WHERE e.kind = k.kind AND e.amount < 20",
      "SELECT k.kind, SUM(e.amount * k.weight) AS wsum "
      "FROM events e, kinds k WHERE e.kind = k.kind GROUP BY k.kind",
      "SELECT DISTINCT kind FROM events",
      "SELECT MIN(amount) AS lo, MAX(amount) AS hi FROM events",
  };
  for (const char* q : queries) {
    auto a = single->Run(q);
    auto b = fragmented->Run(q);
    ASSERT_TRUE(a.ok()) << q << ": " << a.status();
    ASSERT_TRUE(b.ok()) << q << ": " << b.status();
    EXPECT_EQ(Canon(*a), Canon(*b)) << q;
  }
}

TEST_F(FragmentationEquivalenceTest, FragmentedPlansShipOrAggregatePerSite) {
  auto fragmented = MakeEngine(true);
  auto plan = fragmented->Optimize(
      "SELECT kind, SUM(amount) AS total FROM events GROUP BY kind");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->compliant);
  std::string text = PlanToString(*plan->plan, nullptr);
  EXPECT_NE(text.find("Union"), std::string::npos) << text;
}

}  // namespace
}  // namespace cgq
