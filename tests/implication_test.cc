#include <gtest/gtest.h>

#include "expr/implication.h"
#include "sql/parser.h"

namespace cgq {
namespace {

// Parses a WHERE-style predicate into conjuncts using the query parser.
std::vector<ExprPtr> Pred(const std::string& text) {
  auto r = ParseQuery("SELECT x FROM t WHERE " + text);
  EXPECT_TRUE(r.ok()) << r.status();
  return SplitConjuncts(r->where);
}

bool Implies(const std::string& premise, const std::string& conclusion) {
  return PredicateImplies(Pred(premise), Pred(conclusion));
}

TEST(ImplicationTest, TrivialAndIdentity) {
  EXPECT_TRUE(Implies("a > 5", "a > 5"));
  EXPECT_TRUE(PredicateImplies(Pred("a > 5"), {}));  // empty conclusion
}

struct RangeCase {
  const char* premise;
  const char* conclusion;
  bool expected;
};

class RangeImplication : public ::testing::TestWithParam<RangeCase> {};

TEST_P(RangeImplication, Holds) {
  const RangeCase& c = GetParam();
  EXPECT_EQ(Implies(c.premise, c.conclusion), c.expected)
      << c.premise << " => " << c.conclusion;
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, RangeImplication,
    ::testing::Values(
        // The paper's running example: B > 15 implies B > 10.
        RangeCase{"b > 15", "b > 10", true},
        RangeCase{"b > 10", "b > 15", false},
        RangeCase{"b > 10", "b > 10", true},
        RangeCase{"b >= 11", "b > 10", true},
        RangeCase{"b > 10", "b >= 10", true},
        RangeCase{"b >= 10", "b > 10", false},
        RangeCase{"b < 5", "b < 10", true},
        RangeCase{"b <= 10", "b < 10", false},
        RangeCase{"b = 7", "b > 5", true},
        RangeCase{"b = 7", "b < 5", false},
        RangeCase{"b = 7", "b <> 8", true},
        RangeCase{"b = 7", "b <> 7", false},
        RangeCase{"b > 5 AND b < 10", "b > 0", true},
        RangeCase{"b > 5 AND b < 10", "b <> 20", true},
        RangeCase{"b > 5", "c > 5", false},
        // Different columns are independent.
        RangeCase{"a = 1 AND b = 2", "a = 1", true},
        RangeCase{"a = 1 AND b = 2", "b = 2", true},
        RangeCase{"a = 1", "a = 1 AND b = 2", false}));

TEST(ImplicationTest, InLists) {
  EXPECT_TRUE(Implies("a IN (1, 2)", "a IN (1, 2, 3)"));
  EXPECT_FALSE(Implies("a IN (1, 2, 3)", "a IN (1, 2)"));
  EXPECT_TRUE(Implies("a = 2", "a IN (1, 2, 3)"));
  EXPECT_TRUE(Implies("a IN (6, 7)", "a > 5"));
  EXPECT_FALSE(Implies("a IN (4, 7)", "a > 5"));
}

TEST(ImplicationTest, Strings) {
  EXPECT_TRUE(Implies("s = 'abc'", "s = 'abc'"));
  EXPECT_FALSE(Implies("s = 'abc'", "s = 'abd'"));
  EXPECT_TRUE(Implies("s = 'commercial'", "s IN ('commercial', 'retail')"));
}

TEST(ImplicationTest, Like) {
  EXPECT_TRUE(Implies("s LIKE 'A%'", "s LIKE 'A%'"));
  EXPECT_FALSE(Implies("s LIKE 'A%'", "s LIKE 'B%'"));
  // Equality point matching the pattern.
  EXPECT_TRUE(Implies("s = 'Anna'", "s LIKE 'A%'"));
  EXPECT_FALSE(Implies("s = 'Bob'", "s LIKE 'A%'"));
}

TEST(ImplicationTest, OrConclusion) {
  // e4 from Table 3: size > 40 OR type LIKE '%COPPER%'.
  EXPECT_TRUE(Implies("size > 50", "size > 40 OR type LIKE '%COPPER%'"));
  EXPECT_TRUE(
      Implies("type LIKE '%COPPER%'", "size > 40 OR type LIKE '%COPPER%'"));
  EXPECT_FALSE(Implies("size > 30", "size > 40 OR type LIKE '%COPPER%'"));
}

TEST(ImplicationTest, OrPremise) {
  // Every branch of a premise disjunction implies the conclusion.
  EXPECT_TRUE(Implies("a = 1 OR a = 2", "a < 5"));
  EXPECT_FALSE(Implies("a = 1 OR a = 10", "a < 5"));
  EXPECT_TRUE(Implies("a > 10 OR a > 20", "a > 5"));
}

TEST(ImplicationTest, ContradictoryPremiseImpliesAnything) {
  EXPECT_TRUE(Implies("a > 10 AND a < 5", "b = 99"));
  EXPECT_TRUE(Implies("a = 1 AND a = 2", "b = 99"));
}

TEST(ImplicationTest, SoundButIncomplete) {
  // The paper's incompleteness example: A=5 ∧ B=3 does not prove A+B=8
  // under this test (arithmetic reasoning is out of scope).
  EXPECT_FALSE(Implies("a = 5 AND b = 3", "a + b = 8"));
}

TEST(ImplicationTest, StructuralJoinPredicate) {
  // Column-column atoms only match structurally.
  EXPECT_TRUE(Implies("a = b AND c > 1", "a = b"));
  EXPECT_FALSE(Implies("a = c", "a = b"));
}

TEST(ImplicationTest, BetweenDesugared) {
  EXPECT_TRUE(Implies("a BETWEEN 10 AND 20", "a >= 10"));
  EXPECT_TRUE(Implies("a BETWEEN 10 AND 20", "a <= 20"));
  EXPECT_TRUE(Implies("a BETWEEN 10 AND 20", "a > 5"));
  EXPECT_FALSE(Implies("a BETWEEN 10 AND 20", "a > 15"));
}

TEST(ImplicationTest, NumericFamiliesUnify) {
  EXPECT_TRUE(Implies("a > 5.5", "a > 5"));
  EXPECT_TRUE(Implies("a = 2", "a < 2.5"));
}

TEST(ImplicationTest, EmptyPremiseOnlyImpliesTrivial) {
  EXPECT_FALSE(PredicateImplies({}, Pred("a > 5")));
  EXPECT_TRUE(PredicateImplies({}, {}));
}

}  // namespace
}  // namespace cgq
