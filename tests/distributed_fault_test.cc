// Socket-fault recovery of the distributed backend: connection refusal,
// crash-before-ack, partial frame writes, recv timeouts and mid-stream
// resets must be absorbed by the bounded per-fragment restart machinery
// — reproducing the fault-free rows byte for byte and surfacing every
// reattempt in the recovery counters — while hard-down links abort with
// the typed kUnavailable status. The servers are in-process loopback
// threads; the failpoint names keep coordinator-side ("net.client.*")
// and server-side ("sited.*") faults distinct because the registry is
// process-wide.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "core/engine.h"
#include "exec/executor.h"
#include "net/cluster_client.h"
#include "net/network_model.h"
#include "net/server.h"
#include "tpch/tpch.h"

namespace cgq {
namespace {

// TPC-H data generated once, deployed once onto three loopback servers
// partitioning the five locations as {0,1} / {2,3} / {4}.
struct SharedCluster {
  SharedCluster() {
    config.scale_factor = 0.002;
    catalog = std::make_unique<Catalog>(*tpch::BuildCatalog(config));
    net = std::make_unique<NetworkModel>(NetworkModel::DefaultGeo(5));
    store = std::make_unique<TableStore>();
    CGQ_CHECK(tpch::GenerateData(*catalog, config, store.get()).ok());

    const std::vector<std::vector<LocationId>> hosting = {
        {0, 1}, {2, 3}, {4}};
    std::map<LocationId, net::Endpoint> endpoints;
    for (const auto& locations : hosting) {
      net::SiteServer::Options o;
      o.locations = locations;
      servers.push_back(std::make_unique<net::SiteServer>(o));
      CGQ_CHECK(servers.back()->Start().ok());
      for (LocationId loc : locations) {
        endpoints[loc] = {"127.0.0.1", servers.back()->port()};
      }
    }
    CGQ_CHECK(cluster.Connect(endpoints).ok());
    CGQ_CHECK(cluster.Deploy(*store).ok());
  }

  tpch::TpchConfig config;
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<NetworkModel> net;
  std::unique_ptr<TableStore> store;
  std::vector<std::unique_ptr<net::SiteServer>> servers;
  net::ClusterClient cluster;
};

SharedCluster& Shared() {
  static SharedCluster* s = new SharedCluster();
  return *s;
}

// Full-precision serialization: recovered runs must reproduce the
// fault-free result byte for byte, order included.
std::vector<std::string> ExactRows(const QueryResult& r) {
  std::vector<std::string> rows;
  rows.reserve(r.rows.size());
  for (const Row& row : r.rows) {
    std::string s;
    for (const Value& v : row) {
      if (v.is_null()) {
        s += "NULL|";
      } else if (v.is_double()) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g|", v.dbl());
        s += buf;
      } else {
        s += v.ToString() + "|";
      }
    }
    rows.push_back(std::move(s));
  }
  return rows;
}

Result<OptimizedQuery> OptimizeTpch(const SharedCluster& shared, int qnum,
                                    const char* policy_set) {
  PolicyCatalog policies(shared.catalog.get());
  CGQ_RETURN_NOT_OK(tpch::InstallPolicySet(policy_set, &policies));
  QueryOptimizer optimizer(shared.catalog.get(), &policies,
                           shared.net.get(), OptimizerOptions());
  CGQ_ASSIGN_OR_RETURN(std::string sql, tpch::Query(qnum));
  return optimizer.Optimize(sql);
}

ExecutorOptions DistributedOptions(SharedCluster& shared,
                                   const RetryPolicy& retry) {
  ExecutorOptions o;
  o.mode = ExecMode::kDistributed;
  o.threads = 1;
  o.retry = retry;
  o.cluster = &shared.cluster;
  return o;
}

// Failpoints are process-global; leave no site armed behind.
class DistributedFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Failpoints::DisarmAll();
    Shared().net->ClearLinkFaults();
  }
  void TearDown() override {
    Failpoints::DisarmAll();
    Shared().net->ClearLinkFaults();
  }

  // Optimizes Q3/CR and runs it fault-free over loopback, caching the
  // expected rows each recovery test must reproduce exactly.
  void PrepareCleanRun() {
    SharedCluster& shared = Shared();
    auto q = OptimizeTpch(shared, 3, "CR");
    ASSERT_TRUE(q.ok()) << q.status();
    query_ = std::make_unique<OptimizedQuery>(std::move(*q));
    Executor exec(shared.store.get(), shared.net.get(),
                  DistributedOptions(shared, RetryPolicy()));
    auto clean = exec.Execute(*query_);
    ASSERT_TRUE(clean.ok()) << clean.status();
    expected_ = ExactRows(*clean);
    clean_restarts_ = clean->metrics.fragment_restarts;
    EXPECT_EQ(clean_restarts_, 0);
  }

  // Arms `site` once, reruns the prepared query, and requires byte-exact
  // recovery with exactly one fragment restart on the counters.
  void ExpectOneRestartRecovery(const char* site) {
    SharedCluster& shared = Shared();
    Failpoints::ArmOnce(site);
    Executor exec(shared.store.get(), shared.net.get(),
                  DistributedOptions(shared, RetryPolicy()));
    auto r = exec.Execute(*query_);
    Failpoints::DisarmAll();
    ASSERT_TRUE(r.ok()) << site << ": " << r.status();
    EXPECT_EQ(ExactRows(*r), expected_) << site;
    EXPECT_EQ(r->metrics.fragment_restarts, 1) << site;
  }

  std::unique_ptr<OptimizedQuery> query_;
  std::vector<std::string> expected_;
  int64_t clean_restarts_ = 0;
};

// The coordinator's dial is refused once; the fresh-connection-per-
// attempt design maps that onto one fragment restart.
TEST_F(DistributedFaultTest, ConnectionRefusedOnceRecovers) {
  PrepareCleanRun();
  ExpectOneRestartRecovery("net.client.connect");
}

// The server "dies" after receiving StartFragment but before the ack:
// the coordinator sees the connection drop and restarts the attempt.
TEST_F(DistributedFaultTest, CrashBeforeAckRecovers) {
  PrepareCleanRun();
  ExpectOneRestartRecovery("sited.crash_before_ack");
}

// Half a frame reaches the wire before the connection breaks; the
// server never sees a complete frame and the attempt is replayed on a
// fresh connection.
TEST_F(DistributedFaultTest, PartialFrameWriteRecovers) {
  PrepareCleanRun();
  ExpectOneRestartRecovery("net.client.partial_write");
}

// A receive that times out is indistinguishable from a dead server:
// same typed kUnavailable, same restart, same bytes.
TEST_F(DistributedFaultTest, RecvTimeoutRecovers) {
  PrepareCleanRun();
  ExpectOneRestartRecovery("net.client.recv");
}

// The connection resets inside the output stream, after StartAck: the
// restart replays the fragment's output from scratch (BeginReplay /
// result truncation), still byte-identical.
TEST_F(DistributedFaultTest, MidStreamResetRecovers) {
  PrepareCleanRun();
  ExpectOneRestartRecovery("net.client.recv.stream");
}

// The server refuses the TCP accept once (the listener hiccups); the
// coordinator's handshake on that dial fails and the attempt restarts.
TEST_F(DistributedFaultTest, AcceptFailureRecovers) {
  PrepareCleanRun();
  ExpectOneRestartRecovery("sited.accept");
}

// A host that refuses every dial cannot be retried away: bounded
// restarts run out and the query aborts with the typed kUnavailable —
// no hang, no partial result.
TEST_F(DistributedFaultTest, HardDownHostAbortsTyped) {
  PrepareCleanRun();
  SharedCluster& shared = Shared();
  RetryPolicy retry;
  retry.max_retries = 2;
  Failpoints::ArmEveryN("net.client.connect", 1);  // every dial refused
  Executor exec(shared.store.get(), shared.net.get(),
                DistributedOptions(shared, retry));
  auto r = exec.Execute(*query_);
  Failpoints::DisarmAll();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable()) << r.status();
  EXPECT_NE(r.status().message().find("injected failure"),
            std::string::npos)
      << r.status();
}

// Modeled link faults live in the coordinator-side ShipChannels, which
// the distributed backend shares with the in-process runtimes: under
// the same lossy link and the same deterministic fault seed, recovery
// counters and (reattempt-inclusive) traffic accounting agree exactly
// with ExecMode::kFragment, and the rows stay byte-identical.
TEST_F(DistributedFaultTest, LossyLinkCountersMatchInProcessBackend) {
  PrepareCleanRun();
  SharedCluster& shared = Shared();

  // Fault the first cross-site edge of the clean plan.
  Executor probe(shared.store.get(), shared.net.get(),
                 DistributedOptions(shared, RetryPolicy()));
  auto clean = probe.Execute(*query_);
  ASSERT_TRUE(clean.ok()) << clean.status();
  LocationId from = 0, to = 0;
  bool found = false;
  for (const ChannelStats& e : clean->metrics.edges) {
    if (e.from != e.to) {
      from = e.from;
      to = e.to;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found) << "Q3/CR has no cross-site edge";

  RetryPolicy retry;
  retry.max_retries = 25;
  retry.fault_seed = 20260807;
  LinkFault fault;
  fault.drop_probability = 0.3;
  shared.net->SetLinkFault(from, to, fault);

  ExecutorOptions fopt;
  fopt.mode = ExecMode::kFragment;
  fopt.threads = 1;
  fopt.retry = retry;
  Executor frag(shared.store.get(), shared.net.get(), fopt);
  auto a = frag.Execute(*query_);
  ASSERT_TRUE(a.ok()) << a.status();

  Executor dist(shared.store.get(), shared.net.get(),
                DistributedOptions(shared, retry));
  auto b = dist.Execute(*query_);
  ASSERT_TRUE(b.ok()) << b.status();
  shared.net->ClearLinkFaults();

  EXPECT_EQ(ExactRows(*a), expected_);
  EXPECT_EQ(ExactRows(*b), expected_);
  EXPECT_GT(a->metrics.send_retries, 0);
  EXPECT_EQ(b->metrics.send_retries, a->metrics.send_retries);
  EXPECT_EQ(b->metrics.dropped_batches, a->metrics.dropped_batches);
  EXPECT_EQ(b->metrics.rows_shipped, a->metrics.rows_shipped);
  EXPECT_EQ(b->metrics.bytes_shipped, a->metrics.bytes_shipped);
}

}  // namespace
}  // namespace cgq
