#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/engine.h"
#include "plan/param_binding.h"
#include "service/plan_cache.h"
#include "sql/param_normalizer.h"
#include "tpch/tpch.h"

namespace cgq {
namespace {

std::vector<std::string> RenderedRows(const QueryResult& r) {
  std::vector<std::string> out;
  out.reserve(r.rows.size());
  for (const Row& row : r.rows) {
    std::string s;
    for (const Value& v : row) s += v.ToString() + "|";
    out.push_back(std::move(s));
  }
  return out;
}

/// One flat digest of a result: column names + every rendered cell, so
/// "byte-identical to the uncached run" is a single string comparison.
std::string Digest(const QueryResult& r) {
  std::string d;
  for (const std::string& c : r.column_names) d += c + ";";
  d += "#";
  for (const std::string& row : RenderedRows(r)) d += row + "\n";
  return d;
}

class ParamCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_.scale_factor = 0.002;
    auto catalog = tpch::BuildCatalog(config_);
    ASSERT_TRUE(catalog.ok()) << catalog.status();
    engine_ = std::make_unique<Engine>(std::move(*catalog),
                                       NetworkModel::DefaultGeo(5));
    ASSERT_TRUE(
        tpch::InstallUnrestrictedPolicies(&engine_->policies()).ok());
    ASSERT_TRUE(
        tpch::GenerateData(engine_->catalog(), config_, &engine_->store())
            .ok());
  }

  tpch::TpchConfig config_;
  std::unique_ptr<Engine> engine_;
};

// ---------------------------------------------------------------------
// Normalizer unit behavior.

TEST_F(ParamCacheTest, NormalizerExtractsTypedPlaceholders) {
  ParameterizedSql p = ParameterizeSql(
      "SELECT name FROM customer "
      "WHERE acctbal > 100.5 AND nationkey = 7 AND mktsegment = 'BUILDING'");
  ASSERT_TRUE(p.parameterized);
  ASSERT_EQ(p.params.size(), 3u);
  EXPECT_DOUBLE_EQ(p.params[0].dbl(), 100.5);
  EXPECT_EQ(p.params[1].int64(), 7);
  EXPECT_EQ(p.params[2].str(), "BUILDING");
  EXPECT_NE(p.skeleton.find("?f"), std::string::npos);
  EXPECT_NE(p.skeleton.find("?i"), std::string::npos);
  EXPECT_NE(p.skeleton.find("?s"), std::string::npos);
  // No literal text survives in the skeleton.
  EXPECT_EQ(p.skeleton.find("100.5"), std::string::npos);
  EXPECT_EQ(p.skeleton.find("BUILDING"), std::string::npos);
}

TEST_F(ParamCacheTest, SameTemplateDifferentLiteralsShareASkeleton) {
  ParameterizedSql a = ParameterizeSql(
      "SELECT count(*) FROM orders WHERE totalprice < 1000.0 "
      "AND orderdate >= date '1994-01-01'");
  ParameterizedSql b = ParameterizeSql(
      "select COUNT(*) from orders where totalprice < 99.25 "
      "and orderdate >= date '1997-06-30'");
  ASSERT_TRUE(a.parameterized);
  ASSERT_TRUE(b.parameterized);
  EXPECT_EQ(a.skeleton, b.skeleton);
  ASSERT_EQ(a.params.size(), 2u);
  ASSERT_EQ(b.params.size(), 2u);
  EXPECT_TRUE(a.params[1].is_int64());  // dates are day counts
  EXPECT_FALSE(a.params[1].StructurallyEquals(b.params[1]));
}

TEST_F(ParamCacheTest, NegativeLiteralFoldsIntoOneParameter) {
  ParameterizedSql p = ParameterizeSql(
      "SELECT count(*) FROM nation WHERE regionkey > -2");
  ASSERT_TRUE(p.parameterized);
  ASSERT_EQ(p.params.size(), 1u);
  EXPECT_EQ(p.params[0].int64(), -2);
  // `a - 2` (binary minus) must NOT fold: the 2 is its own parameter.
  ParameterizedSql q = ParameterizeSql(
      "SELECT count(*) FROM nation WHERE nationkey - 2 > regionkey");
  ASSERT_EQ(q.params.size(), 1u);
  EXPECT_EQ(q.params[0].int64(), 2);
  EXPECT_NE(p.skeleton, q.skeleton);
}

TEST_F(ParamCacheTest, LimitCountStaysInTheSkeleton) {
  ParameterizedSql a =
      ParameterizeSql("SELECT name FROM nation WHERE regionkey = 1 LIMIT 5");
  ParameterizedSql b =
      ParameterizeSql("SELECT name FROM nation WHERE regionkey = 1 LIMIT 9");
  ASSERT_TRUE(a.parameterized);
  // LIMIT shapes the plan; different counts must not share a fingerprint.
  EXPECT_NE(a.skeleton, b.skeleton);
  ASSERT_EQ(a.params.size(), 1u);  // only the WHERE constant
  EXPECT_EQ(a.params[0].int64(), 1);
}

TEST_F(ParamCacheTest, UnlexableTextDegradesToExactMatch) {
  ParameterizedSql p = ParameterizeSql("SELECT ' unterminated");
  EXPECT_FALSE(p.parameterized);
  EXPECT_TRUE(p.params.empty());
  EXPECT_EQ(p.skeleton, "SELECT ' unterminated");
}

// ---------------------------------------------------------------------
// Plan-slot binding utilities. The dialect has no NULL literal keyword,
// so NULL parameters can only reach the binder through internal plans;
// they must round-trip without being conflated with real values.

TEST_F(ParamCacheTest, NullValuesBindAndCompareSafely) {
  auto node = std::make_shared<PlanNode>(PlanKind::kScan);
  node->conjuncts.push_back(Expr::ParamLiteral(Value::Null(), 0));
  EXPECT_TRUE(PlanParamsBindable(*node, {Value::Null()}));
  // NULL != 0 structurally: a plan holding NULL cannot claim the slot of
  // an extracted integer.
  EXPECT_FALSE(PlanParamsBindable(*node, {Value::Int64(0)}));
  BindPlanParams(node.get(), {Value::Int64(42)});
  ASSERT_EQ(node->conjuncts.size(), 1u);
  EXPECT_EQ(node->conjuncts[0]->literal().int64(), 42);
  EXPECT_EQ(node->conjuncts[0]->param_ordinal(), 0);
}

TEST_F(ParamCacheTest, UntaggedOrMissingSlotsAreNotBindable) {
  auto node = std::make_shared<PlanNode>(PlanKind::kScan);
  node->conjuncts.push_back(Expr::ParamLiteral(Value::Int64(5), 0));
  // A parameter the plan no longer contains (folded away): not bindable.
  EXPECT_FALSE(PlanParamsBindable(
      *node, {Value::Int64(5), Value::Int64(6)}));
  // A slot whose value diverged from the extracted text (e.g. the parser
  // folded `- (5)` while the normalizer saw `5`): not bindable.
  EXPECT_FALSE(PlanParamsBindable(*node, {Value::Int64(-5)}));
  // Untagged literals are invisible: a plan with only plain literals
  // binds iff no parameters were extracted.
  auto plain = std::make_shared<PlanNode>(PlanKind::kScan);
  plain->conjuncts.push_back(Expr::Literal(Value::Int64(5)));
  EXPECT_TRUE(PlanParamsBindable(*plain, {}));
  EXPECT_FALSE(PlanParamsBindable(*plain, {Value::Int64(5)}));
}

// ---------------------------------------------------------------------
// End-to-end: cached results must be byte-identical to uncached runs.

TEST_F(ParamCacheTest, RandomizedRoundTripMatchesUncachedDigests) {
  std::mt19937 rng(20260809);
  std::uniform_int_distribution<int> region(0, 4);
  std::uniform_int_distribution<int> key(1, 200);
  std::uniform_real_distribution<double> bal(-500.0, 5000.0);
  const std::vector<std::string> segments = {
      "BUILDING", "AUTOMOBILE", "MACHINERY", "HOUSEHOLD", "FURNITURE"};

  std::vector<std::string> sqls;
  for (int i = 0; i < 12; ++i) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "SELECT count(*) AS n FROM nation WHERE regionkey = %d",
                  region(rng));
    sqls.push_back(buf);
    std::snprintf(buf, sizeof(buf),
                  "SELECT name, acctbal FROM customer WHERE acctbal > %.2f "
                  "AND mktsegment = '%s'",
                  bal(rng), segments[static_cast<size_t>(rng() % 5)].c_str());
    sqls.push_back(buf);
    std::snprintf(buf, sizeof(buf),
                  "SELECT count(*) AS n FROM orders WHERE custkey < %d "
                  "AND totalprice > %.2f",
                  key(rng), bal(rng));
    sqls.push_back(buf);
    std::snprintf(buf, sizeof(buf),
                  "SELECT name FROM supplier WHERE nationkey IN (%d, %d, %d)",
                  region(rng), region(rng) + 5, region(rng) + 10);
    sqls.push_back(buf);
  }

  // Uncached baseline digests.
  std::vector<std::string> baseline;
  for (const std::string& sql : sqls) {
    auto r = engine_->Run(sql);
    ASSERT_TRUE(r.ok()) << sql << ": " << r.status();
    baseline.push_back(Digest(*r));
  }

  // Cached run: every repeat of a template after its first instance must
  // be a parameterized hit, and every digest must match the uncached run.
  PlanCache cache;
  engine_->set_plan_cache(&cache);
  for (size_t i = 0; i < sqls.size(); ++i) {
    auto r = engine_->Run(sqls[i]);
    ASSERT_TRUE(r.ok()) << sqls[i] << ": " << r.status();
    EXPECT_EQ(Digest(*r), baseline[i]) << sqls[i];
    if (i >= 4) {  // past the first instance of each of the 4 templates
      EXPECT_TRUE(r->opt_stats.cache_hit) << sqls[i];
    }
  }
  PlanCacheStats cs = cache.stats();
  EXPECT_EQ(cs.hits, static_cast<int64_t>(sqls.size()) - 4);
  // Randomly repeated literals surface as exact hits; everything else
  // must have been served by rebinding, not re-optimization.
  EXPECT_EQ(cs.exact_hits + cs.param_hits, cs.hits);
  EXPECT_GT(cs.param_hits, 0);
  engine_->set_plan_cache(nullptr);
}

TEST_F(ParamCacheTest, HitRateAtLeast90PercentOnTemplateWorkload) {
  PlanCache cache;
  engine_->set_plan_cache(&cache);
  std::mt19937 rng(7);
  const int kQueries = 60;
  for (int i = 0; i < kQueries; ++i) {
    char buf[160];
    switch (i % 3) {
      case 0:
        std::snprintf(
            buf, sizeof(buf),
            "SELECT count(*) AS n FROM nation WHERE regionkey = %d",
            static_cast<int>(rng() % 5));
        break;
      case 1:
        std::snprintf(
            buf, sizeof(buf),
            "SELECT count(*) AS n FROM orders WHERE totalprice > %d.50",
            static_cast<int>(rng() % 9000));
        break;
      default:
        std::snprintf(
            buf, sizeof(buf),
            "SELECT name FROM customer WHERE custkey = %d",
            static_cast<int>(rng() % 300));
        break;
    }
    auto r = engine_->Run(buf);
    ASSERT_TRUE(r.ok()) << buf << ": " << r.status();
  }
  PlanCacheStats cs = cache.stats();
  ASSERT_EQ(cs.hits + cs.misses, kQueries);
  EXPECT_GE(static_cast<double>(cs.hits) / kQueries, 0.90)
      << cs.hits << " hits / " << cs.misses << " misses";
  EXPECT_EQ(cs.misses, 3);  // one per template
  engine_->set_plan_cache(nullptr);
}

// The parser folds `- (5)` to the literal -5 while the normalizer (which
// does not build an expression tree) extracts +5: the insert-time
// bindability proof must catch the divergence and degrade the entry to
// exact-match-only — never serve a wrongly-bound plan.
TEST_F(ParamCacheTest, ParenthesizedNegationDegradesToExactOnly) {
  PlanCache cache;
  engine_->set_plan_cache(&cache);
  // The second conjunct is perfectly bindable; the diverging negation
  // slot must still poison the whole entry (all-or-nothing proof).
  const std::string q1 = "SELECT count(*) AS n FROM nation "
                         "WHERE regionkey > - (1) AND nationkey < 10";
  const std::string q2 = "SELECT count(*) AS n FROM nation "
                         "WHERE regionkey > - (3) AND nationkey < 5";

  auto cold = engine_->Run(q1);
  ASSERT_TRUE(cold.ok()) << cold.status();
  auto exact = engine_->Run(q1);  // same text: exact hit still works
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(exact->opt_stats.cache_hit);
  EXPECT_FALSE(exact->opt_stats.cache_param_hit);
  EXPECT_EQ(Digest(*exact), Digest(*cold));

  auto other = engine_->Run(q2);  // different constant: must NOT rebind
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(other->opt_stats.cache_hit);

  // Ground truth: q2's count differs from q1's (regionkeys 0..4), so a
  // mis-bound plan would have been observable.
  EXPECT_NE(RenderedRows(*other), RenderedRows(*cold));
  PlanCacheStats cs = cache.stats();
  EXPECT_EQ(cs.param_hits, 0);
  EXPECT_EQ(cs.exact_hits, 1);
  engine_->set_plan_cache(nullptr);
}

// Strings with embedded quotes round-trip through the skeleton without
// colliding: `'EU''x'` and `'EU'` are different parameters, same shape.
TEST_F(ParamCacheTest, QuotedStringsDoNotCollide) {
  ParameterizedSql a =
      ParameterizeSql("SELECT name FROM nation WHERE name = 'EU''x'");
  ParameterizedSql b =
      ParameterizeSql("SELECT name FROM nation WHERE name = 'EU'");
  ASSERT_TRUE(a.parameterized);
  ASSERT_TRUE(b.parameterized);
  EXPECT_EQ(a.skeleton, b.skeleton);
  ASSERT_EQ(a.params.size(), 1u);
  EXPECT_EQ(a.params[0].str(), "EU'x");
  EXPECT_EQ(b.params[0].str(), "EU");
}

}  // namespace
}  // namespace cgq
