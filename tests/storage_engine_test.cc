#include "storage/storage_engine.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "storage/block.h"
#include "storage/format.h"
#include "storage/manifest.h"
#include "storage/wal.h"
#include "types/value.h"

namespace cgq {
namespace storage {
namespace {

namespace fs = std::filesystem;

class StorageEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("cgq-storage-test-" +
             std::to_string(::testing::UnitTest::GetInstance()
                                ->random_seed()) +
             "-" +
             ::testing::UnitTest::GetInstance()
                 ->current_test_info()
                 ->name()))
               .string();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  static Row MakeRow(int64_t i) {
    return {Value::Int64(i), Value::String("row-" + std::to_string(i)),
            Value::Double(i * 0.5)};
  }
  static std::vector<Row> MakeRows(int64_t n, int64_t base = 0) {
    std::vector<Row> rows;
    rows.reserve(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) rows.push_back(MakeRow(base + i));
    return rows;
  }

  std::string dir_;
};

TEST_F(StorageEngineTest, BlockRoundTripColumnar) {
  std::vector<Row> rows = MakeRows(100);
  std::string bytes = EncodeBlockFile(rows).ValueOrDie();
  auto back = DecodeBlockFile(bytes, "test block");
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_TRUE(RowsStructurallyEqual((*back)[i], rows[i])) << i;
  }
}

TEST_F(StorageEngineTest, BlockRoundTripRagged) {
  // Non-uniform widths fall back to the row-major encoding.
  std::vector<Row> rows = {{Value::Int64(1)},
                           {Value::Int64(2), Value::String("x")},
                           {}};
  std::string bytes = EncodeBlockFile(rows).ValueOrDie();
  auto back = DecodeBlockFile(bytes, "ragged block");
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_TRUE(RowsStructurallyEqual((*back)[i], rows[i])) << i;
  }
}

TEST_F(StorageEngineTest, BlockChecksumMismatchIsDataLoss) {
  std::string bytes = EncodeBlockFile(MakeRows(10)).ValueOrDie();
  bytes[bytes.size() - 1] ^= 0x40;  // flip one payload bit
  auto back = DecodeBlockFile(bytes, "corrupt block");
  ASSERT_FALSE(back.ok());
  EXPECT_TRUE(back.status().IsDataLoss()) << back.status();
}

TEST_F(StorageEngineTest, ManifestRoundTrip) {
  Manifest m;
  m.version = 7;
  m.wal_version = 9;
  m.next_block_id = 42;
  m.fragments.push_back(
      ManifestFragment{2, "orders", {{1, 100}, {5, 23}}});
  m.fragments.push_back(ManifestFragment{3, "customer", {}});
  auto back = Manifest::Decode(m.Encode().ValueOrDie(), "test manifest");
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->version, 7u);
  EXPECT_EQ(back->wal_version, 9u);
  EXPECT_EQ(back->next_block_id, 42u);
  ASSERT_EQ(back->fragments.size(), 2u);
  EXPECT_EQ(back->fragments[0].table, "orders");
  ASSERT_EQ(back->fragments[0].blocks.size(), 2u);
  EXPECT_EQ(back->fragments[0].blocks[1].id, 5u);
  EXPECT_EQ(back->fragments[0].blocks[1].rows, 23u);
}

TEST_F(StorageEngineTest, PutAppendScanRoundTrip) {
  StorageEngine engine;
  ASSERT_TRUE(engine.Open(dir_).ok());
  ASSERT_TRUE(engine.Put(0, "t", MakeRows(50)).ok());
  ASSERT_TRUE(engine.Append(0, "t", MakeRows(25, 50)).ok());
  auto n = engine.FragmentRows(0, "t");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 75u);

  std::vector<Row> all;
  ASSERT_TRUE(engine.ReadAll(0, "t", &all).ok());
  ASSERT_EQ(all.size(), 75u);
  for (int64_t i = 0; i < 75; ++i) {
    EXPECT_TRUE(
        RowsStructurallyEqual(all[static_cast<size_t>(i)], MakeRow(i)))
        << i;
  }
}

TEST_F(StorageEngineTest, RecoveryAfterCleanClose) {
  {
    StorageEngine engine;
    ASSERT_TRUE(engine.Open(dir_).ok());
    ASSERT_TRUE(engine.Put(1, "a", MakeRows(30)).ok());
    ASSERT_TRUE(engine.Put(2, "b", MakeRows(10, 100)).ok());
    ASSERT_TRUE(engine.Checkpoint().ok());
    // Mutations after the checkpoint live only in the commit log.
    ASSERT_TRUE(engine.Append(1, "a", MakeRows(5, 30)).ok());
  }
  StorageEngine engine;
  ASSERT_TRUE(engine.Open(dir_).ok());
  EXPECT_GT(engine.recovery_replays(), 0);
  auto frags = engine.ListFragments();
  ASSERT_EQ(frags.size(), 2u);
  EXPECT_EQ(frags[0].table, "a");
  EXPECT_EQ(frags[0].rows, 35u);
  EXPECT_EQ(frags[1].rows, 10u);
  std::vector<Row> all;
  ASSERT_TRUE(engine.ReadAll(1, "a", &all).ok());
  ASSERT_EQ(all.size(), 35u);
  for (int64_t i = 0; i < 35; ++i) {
    EXPECT_TRUE(
        RowsStructurallyEqual(all[static_cast<size_t>(i)], MakeRow(i)));
  }
}

TEST_F(StorageEngineTest, PutReplacesAcrossRestart) {
  {
    StorageEngine engine;
    ASSERT_TRUE(engine.Open(dir_).ok());
    ASSERT_TRUE(engine.Put(0, "t", MakeRows(40)).ok());
    ASSERT_TRUE(engine.Checkpoint().ok());
    ASSERT_TRUE(engine.Put(0, "t", MakeRows(3, 1000)).ok());
  }
  StorageEngine engine;
  ASSERT_TRUE(engine.Open(dir_).ok());
  std::vector<Row> all;
  ASSERT_TRUE(engine.ReadAll(0, "t", &all).ok());
  ASSERT_EQ(all.size(), 3u);
  EXPECT_TRUE(RowsStructurallyEqual(all[0], MakeRow(1000)));
}

TEST_F(StorageEngineTest, SmallBlocksStreamThroughCursor) {
  StorageOptions options;
  options.block_target_bytes = 256;  // force many blocks
  StorageEngine engine;
  ASSERT_TRUE(engine.Open(dir_, options).ok());
  ASSERT_TRUE(engine.Put(0, "t", MakeRows(200)).ok());
  ASSERT_TRUE(engine.Checkpoint().ok());
  EXPECT_GT(engine.blocks_written(), 1);

  auto cursor = engine.Scan(0, "t");
  ASSERT_TRUE(cursor.ok()) << cursor.status();
  std::vector<Row> all, chunk;
  while (true) {
    auto more = cursor->Next(&chunk);
    ASSERT_TRUE(more.ok()) << more.status();
    if (!*more) break;
    for (Row& r : chunk) all.push_back(std::move(r));
  }
  EXPECT_GT(cursor->blocks_read(), 1);
  ASSERT_EQ(all.size(), 200u);
  for (int64_t i = 0; i < 200; ++i) {
    EXPECT_TRUE(
        RowsStructurallyEqual(all[static_cast<size_t>(i)], MakeRow(i)));
  }
}

TEST_F(StorageEngineTest, AutoCheckpointRotatesLog) {
  StorageOptions options;
  options.block_target_bytes = 512;
  options.wal_checkpoint_bytes = 2048;  // checkpoint after ~2KB of log
  StorageEngine engine;
  ASSERT_TRUE(engine.Open(dir_, options).ok());
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(engine.Append(0, "t", MakeRows(10, i * 10)).ok());
  }
  // At least one automatic checkpoint must have rotated the commit log.
  bool found_later_wal = false;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) == 0 && name != "wal-1.log") {
      found_later_wal = true;
    }
  }
  EXPECT_TRUE(found_later_wal);
  auto n = engine.FragmentRows(0, "t");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 200u);
}

TEST_F(StorageEngineTest, MissingCurrentOverLiveBlocksIsDataLoss) {
  {
    StorageEngine engine;
    ASSERT_TRUE(engine.Open(dir_).ok());
    ASSERT_TRUE(engine.Put(0, "t", MakeRows(10)).ok());
    ASSERT_TRUE(engine.Checkpoint().ok());
  }
  fs::remove(fs::path(dir_) / "CURRENT");
  StorageEngine engine;
  Status s = engine.Open(dir_);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsDataLoss()) << s;
}

TEST_F(StorageEngineTest, PartialFlushFailureKeepsFragmentConsistent) {
  StorageOptions options;
  options.block_target_bytes = 256;  // a flush cuts many blocks
  options.wal_checkpoint_bytes = 0;  // no automatic checkpoints
  StorageEngine engine;
  ASSERT_TRUE(engine.Open(dir_, options).ok());
  // The flush's second block write fails mid-way: the flushed prefix is
  // in blocks, the remainder must still be intact in the tail — and the
  // Put stays acknowledged (its rows are in the commit log).
  Failpoints::ArmEveryN("storage.flush", 2);
  ASSERT_TRUE(engine.Put(0, "t", MakeRows(200)).ok());
  Failpoints::DisarmAll();

  auto n = engine.FragmentRows(0, "t");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 200u);
  std::vector<Row> all;
  ASSERT_TRUE(engine.ReadAll(0, "t", &all).ok());
  ASSERT_EQ(all.size(), 200u);
  for (int64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        RowsStructurallyEqual(all[static_cast<size_t>(i)], MakeRow(i)))
        << i;
  }

  // A later successful checkpoint persists exactly these rows.
  ASSERT_TRUE(engine.Checkpoint().ok());
  StorageEngine reopened;
  ASSERT_TRUE(reopened.Open(dir_, options).ok());
  ASSERT_TRUE(reopened.ReadAll(0, "t", &all).ok());
  ASSERT_EQ(all.size(), 200u);
  for (int64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        RowsStructurallyEqual(all[static_cast<size_t>(i)], MakeRow(i)))
        << i;
  }
}

TEST_F(StorageEngineTest, InterruptedFreshInitIsRestartable) {
  // A kill between a fresh store's first manifest / commit-log writes
  // and the CURRENT pointer leaves only benign leftovers; Open must
  // restart the init instead of typing the empty store as data loss.
  std::error_code ec;
  fs::create_directories(dir_, ec);
  Manifest fresh;
  fresh.version = 1;
  fresh.wal_version = 1;
  std::ofstream(fs::path(dir_) / "MANIFEST-1", std::ios::binary)
      << fresh.Encode().ValueOrDie();
  std::ofstream(fs::path(dir_) / "wal-1.log", std::ios::binary);  // empty

  StorageEngine engine;
  Status s = engine.Open(dir_);
  ASSERT_TRUE(s.ok()) << s;
  ASSERT_TRUE(engine.Put(0, "t", MakeRows(5)).ok());
  auto n = engine.FragmentRows(0, "t");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 5u);
}

TEST_F(StorageEngineTest, MissingCurrentOverNonEmptyLogIsDataLoss) {
  {
    StorageEngine engine;
    ASSERT_TRUE(engine.Open(dir_).ok());
    // No checkpoint: the rows live only in the commit log.
    ASSERT_TRUE(engine.Put(0, "t", MakeRows(10)).ok());
  }
  fs::remove(fs::path(dir_) / "CURRENT");
  StorageEngine engine;
  Status s = engine.Open(dir_);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsDataLoss()) << s;
}

TEST_F(StorageEngineTest, ScanOfMissingFragmentIsNotFound) {
  StorageEngine engine;
  ASSERT_TRUE(engine.Open(dir_).ok());
  auto cursor = engine.Scan(0, "nope");
  ASSERT_FALSE(cursor.ok());
  EXPECT_TRUE(cursor.status().IsNotFound());
}

}  // namespace
}  // namespace storage
}  // namespace cgq
