#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/policy.h"
#include "core/policy_evaluator.h"
#include "plan/binder.h"
#include "plan/builder.h"
#include "plan/summary.h"
#include "sql/parser.h"

namespace cgq {
namespace {

class PolicyCatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* l : {"n", "e", "a"}) {
      ASSERT_TRUE(catalog_.mutable_locations().AddLocation(l).ok());
    }
    TableDef t;
    t.name = "cust";
    t.schema = Schema({{"id", DataType::kInt64},
                       {"name", DataType::kString},
                       {"bal", DataType::kDouble}});
    t.fragments = {TableFragment{0, 1.0}};
    t.stats.row_count = 10;
    ASSERT_TRUE(catalog_.AddTable(t).ok());
    policies_ = std::make_unique<PolicyCatalog>(&catalog_);
  }
  Catalog catalog_;
  std::unique_ptr<PolicyCatalog> policies_;
};

TEST_F(PolicyCatalogTest, ShipStarExpandsToAllColumns) {
  ASSERT_TRUE(policies_->AddPolicyText("n", "ship * from cust to e").ok());
  const auto& exprs = policies_->For(0);
  ASSERT_EQ(exprs.size(), 1u);
  EXPECT_EQ(exprs[0].attributes,
            (std::vector<std::string>{"id", "name", "bal"}));
  EXPECT_EQ(exprs[0].to, LocationSet::Single(1));
  EXPECT_FALSE(exprs[0].is_aggregate());
}

TEST_F(PolicyCatalogTest, ToStarExpandsToAllLocations) {
  ASSERT_TRUE(policies_->AddPolicyText("n", "ship id from cust to *").ok());
  EXPECT_EQ(policies_->For(0)[0].to, catalog_.locations().All());
}

TEST_F(PolicyCatalogTest, RejectsUnknownEntities) {
  EXPECT_FALSE(policies_->AddPolicyText("mars", "ship * from cust to *").ok());
  EXPECT_FALSE(policies_->AddPolicyText("n", "ship * from nosuch to *").ok());
  EXPECT_FALSE(
      policies_->AddPolicyText("n", "ship bogus from cust to *").ok());
  EXPECT_FALSE(
      policies_->AddPolicyText("n", "ship id from cust to mars").ok());
  EXPECT_FALSE(policies_
                   ->AddPolicyText(
                       "n", "ship bal as aggregates sum from cust to * "
                            "group by bogus")
                   .ok());
}

TEST_F(PolicyCatalogTest, GroupByRequiresAggregates) {
  EXPECT_FALSE(policies_
                   ->AddPolicyText("n",
                                   "ship id from cust to * group by name")
                   .ok());
}

TEST_F(PolicyCatalogTest, WherePredicateIsBoundToTable) {
  ASSERT_TRUE(policies_
                  ->AddPolicyText(
                      "n", "ship id from cust to e where bal > 100")
                  .ok());
  const PolicyExpression& e = policies_->For(0)[0];
  ASSERT_EQ(e.predicate.size(), 1u);
  std::vector<BaseAttr> bases;
  e.predicate[0]->CollectBaseAttrs(&bases);
  ASSERT_EQ(bases.size(), 1u);
  EXPECT_EQ(bases[0].table, "cust");
  EXPECT_EQ(bases[0].column, "bal");
}

TEST_F(PolicyCatalogTest, WhereRejectsForeignColumns) {
  EXPECT_FALSE(policies_
                   ->AddPolicyText(
                       "n", "ship id from cust to e where other.col = 1")
                   .ok());
}

TEST_F(PolicyCatalogTest, PerLocationIsolation) {
  ASSERT_TRUE(policies_->AddPolicyText("n", "ship id from cust to e").ok());
  ASSERT_TRUE(policies_->AddPolicyText("e", "ship name from cust to a").ok());
  EXPECT_EQ(policies_->For(0).size(), 1u);
  EXPECT_EQ(policies_->For(1).size(), 1u);
  EXPECT_TRUE(policies_->For(2).empty());
  EXPECT_EQ(policies_->TotalCount(), 2u);
  policies_->Clear();
  EXPECT_EQ(policies_->TotalCount(), 0u);
}

TEST_F(PolicyCatalogTest, RoundTripToString) {
  ASSERT_TRUE(policies_
                  ->AddPolicyText(
                      "n",
                      "ship bal as aggregates sum, avg from cust to e, a "
                      "where id > 5 group by name")
                  .ok());
  std::string text = policies_->For(0)[0].ToString(catalog_.locations());
  EXPECT_NE(text.find("as aggregates sum, avg"), std::string::npos);
  EXPECT_NE(text.find("group by name"), std::string::npos);
  EXPECT_NE(text.find("where"), std::string::npos);
  // The rendered text parses back.
  PolicyCatalog round(&catalog_);
  EXPECT_TRUE(round.AddPolicyText("n", text).ok()) << text;
}

TEST_F(PolicyCatalogTest, AccessorHelpers) {
  ASSERT_TRUE(policies_
                  ->AddPolicyText("n",
                                  "ship bal as aggregates sum from cust "
                                  "to * group by name")
                  .ok());
  const PolicyExpression& e = policies_->For(0)[0];
  EXPECT_TRUE(e.is_aggregate());
  EXPECT_TRUE(e.HasShipAttribute("bal"));
  EXPECT_FALSE(e.HasShipAttribute("name"));
  EXPECT_TRUE(e.HasGroupAttribute("name"));
  EXPECT_TRUE(e.AllowsAggFn(AggFn::kSum));
  EXPECT_FALSE(e.AllowsAggFn(AggFn::kAvg));
}

// Metamorphic battery for the hierarchical index (ISSUE 9): operations
// that reshape the index without changing the governed policy set — adding
// a subsumed policy, removing and re-adding an absorber, permuting bucket
// order — must leave every compliance decision (and, for the re-add, the
// evaluator's non-time counters) untouched.
class PolicyMetamorphicTest : public PolicyCatalogTest {
 protected:
  void SetUp() override {
    PolicyCatalogTest::SetUp();
    policies_ = std::make_unique<PolicyCatalog>(
        &catalog_, PolicyIndexMode::kHierarchical);
    for (const char* text :
         {"ship * from cust to e",
          "ship id from cust to e, a where bal > 100",
          "ship name from cust to a where bal > 100",
          "ship bal as aggregates sum from cust to a group by name"}) {
      ASSERT_TRUE(policies_->AddPolicyText("n", text).ok()) << text;
    }
  }

  // Spans the evaluator's cases: plain projection, selections whose
  // premise does / does not imply the policy predicates, aggregation with
  // allowed and disallowed grouping.
  static const std::vector<std::string>& Workload() {
    static const std::vector<std::string> queries = {
        "SELECT id FROM cust",
        "SELECT name FROM cust",
        "SELECT bal FROM cust",
        "SELECT id, name FROM cust WHERE bal > 100",
        "SELECT id FROM cust WHERE bal > 150",
        "SELECT id FROM cust WHERE bal > 50",
        "SELECT id FROM cust WHERE id < 5 AND bal > 120",
        "SELECT name, SUM(bal) FROM cust GROUP BY name",
        "SELECT id, SUM(bal) FROM cust GROUP BY id",
        "SELECT SUM(bal) FROM cust",
    };
    return queries;
  }

  LocationSet EvalWith(const PolicyEvaluator& evaluator,
                       const std::string& sql) {
    auto ast = ParseQuery(sql);
    EXPECT_TRUE(ast.ok()) << ast.status();
    if (!ast.ok()) return LocationSet();
    PlannerContext ctx(&catalog_);
    auto bound = BindQuery(*ast, &ctx);
    EXPECT_TRUE(bound.ok()) << bound.status();
    if (!bound.ok()) return LocationSet();
    auto plan = BuildLogicalPlan(*bound, &ctx);
    EXPECT_TRUE(plan.ok()) << plan.status();
    if (!plan.ok()) return LocationSet();
    QuerySummary summary = SummarizePlan(*plan->root);
    EXPECT_TRUE(summary.IsSingleDatabaseBlock());
    return evaluator.Evaluate(summary, 0);
  }

  // The full decision surface: legal ship set of every workload query.
  std::vector<uint64_t> Decisions() {
    PolicyEvaluator evaluator(&catalog_, policies_.get());
    std::vector<uint64_t> bits;
    for (const std::string& sql : Workload()) {
      bits.push_back(EvalWith(evaluator, sql).bits());
    }
    return bits;
  }

  // Evaluator counters over one cold pass of the workload (no shared
  // implication cache, so counts depend only on the catalog's contents).
  PolicyEvalStats WorkloadStats() {
    PolicyEvaluator evaluator(&catalog_, policies_.get());
    evaluator.set_implication_cache(nullptr);
    for (const std::string& sql : Workload()) EvalWith(evaluator, sql);
    return evaluator.stats();
  }
};

TEST_F(PolicyMetamorphicTest, SubsumedAddNeverChangesDecisions) {
  const std::vector<uint64_t> before = Decisions();
  const size_t absorbed_before = policies_->Stats().absorbed;
  // Both subsumed by the unconditional `ship * from cust to e`: narrower
  // attributes, subset target, (strictly stronger) predicate.
  ASSERT_TRUE(policies_->AddPolicyText("n", "ship id from cust to e").ok());
  ASSERT_TRUE(policies_
                  ->AddPolicyText(
                      "n", "ship id, name from cust to e where bal > 500")
                  .ok());
  EXPECT_EQ(policies_->Stats().absorbed, absorbed_before + 2);
  EXPECT_EQ(Decisions(), before);
}

TEST_F(PolicyMetamorphicTest, RemoveThenReAddRestoresEvaluatorStats) {
  // A donor the wide policy absorbs, so the remove also exercises
  // resurrection and the re-add re-absorption.
  ASSERT_TRUE(policies_->AddPolicyText("n", "ship id from cust to e").ok());
  ASSERT_EQ(policies_->Stats().absorbed, 1u);
  const std::vector<uint64_t> decisions = Decisions();
  const PolicyEvalStats before = WorkloadStats();

  int64_t wide_id = -1;
  for (const PolicyExpression& e : policies_->For(0)) {
    if (e.attributes.size() == 3 && e.predicate.empty() &&
        !e.is_aggregate()) {
      wide_id = e.id;
    }
  }
  ASSERT_NE(wide_id, -1);
  ASSERT_TRUE(policies_->RemovePolicy(wide_id).ok());
  EXPECT_EQ(policies_->Stats().absorbed, 0u);  // donor resurrected
  ASSERT_TRUE(policies_->AddPolicyText("n", "ship * from cust to e").ok());
  EXPECT_EQ(policies_->Stats().absorbed, 1u);  // donor re-absorbed

  EXPECT_EQ(Decisions(), decisions);
  const PolicyEvalStats after = WorkloadStats();
  EXPECT_EQ(before.evaluations, after.evaluations);
  EXPECT_EQ(before.candidates, after.candidates);
  EXPECT_EQ(before.expressions_matched, after.expressions_matched);
  EXPECT_EQ(before.implication_tests, after.implication_tests);
  EXPECT_EQ(before.implication_cache_hits, after.implication_cache_hits);
  EXPECT_EQ(before.implication_cache_misses, after.implication_cache_misses);
  EXPECT_EQ(before.prefilter_skips, after.prefilter_skips);
  EXPECT_EQ(before.eta, after.eta);
}

TEST_F(PolicyMetamorphicTest, BucketOrderNeverAffectsDecisions) {
  // Volume, so buckets hold several entries and permutation has teeth.
  for (int i = 0; i < 40; ++i) {
    const char* cols[] = {"id", "name", "bal", "id, name"};
    const char* tos[] = {"e", "a", "e, a"};
    std::string text = std::string("ship ") + cols[i % 4] + " from cust to " +
                       tos[i % 3] + " where bal > " + std::to_string(i * 10);
    ASSERT_TRUE(policies_->AddPolicyText("n", text).ok()) << text;
  }
  const std::vector<uint64_t> before = Decisions();
  for (uint64_t seed : {1, 7, 42}) {
    policies_->ShuffleBucketsForTest(seed);
    EXPECT_EQ(Decisions(), before) << "seed " << seed;
  }
}

}  // namespace
}  // namespace cgq
