#include <gtest/gtest.h>

#include "core/policy.h"

namespace cgq {
namespace {

class PolicyCatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* l : {"n", "e", "a"}) {
      ASSERT_TRUE(catalog_.mutable_locations().AddLocation(l).ok());
    }
    TableDef t;
    t.name = "cust";
    t.schema = Schema({{"id", DataType::kInt64},
                       {"name", DataType::kString},
                       {"bal", DataType::kDouble}});
    t.fragments = {TableFragment{0, 1.0}};
    t.stats.row_count = 10;
    ASSERT_TRUE(catalog_.AddTable(t).ok());
    policies_ = std::make_unique<PolicyCatalog>(&catalog_);
  }
  Catalog catalog_;
  std::unique_ptr<PolicyCatalog> policies_;
};

TEST_F(PolicyCatalogTest, ShipStarExpandsToAllColumns) {
  ASSERT_TRUE(policies_->AddPolicyText("n", "ship * from cust to e").ok());
  const auto& exprs = policies_->For(0);
  ASSERT_EQ(exprs.size(), 1u);
  EXPECT_EQ(exprs[0].attributes,
            (std::vector<std::string>{"id", "name", "bal"}));
  EXPECT_EQ(exprs[0].to, LocationSet::Single(1));
  EXPECT_FALSE(exprs[0].is_aggregate());
}

TEST_F(PolicyCatalogTest, ToStarExpandsToAllLocations) {
  ASSERT_TRUE(policies_->AddPolicyText("n", "ship id from cust to *").ok());
  EXPECT_EQ(policies_->For(0)[0].to, catalog_.locations().All());
}

TEST_F(PolicyCatalogTest, RejectsUnknownEntities) {
  EXPECT_FALSE(policies_->AddPolicyText("mars", "ship * from cust to *").ok());
  EXPECT_FALSE(policies_->AddPolicyText("n", "ship * from nosuch to *").ok());
  EXPECT_FALSE(
      policies_->AddPolicyText("n", "ship bogus from cust to *").ok());
  EXPECT_FALSE(
      policies_->AddPolicyText("n", "ship id from cust to mars").ok());
  EXPECT_FALSE(policies_
                   ->AddPolicyText(
                       "n", "ship bal as aggregates sum from cust to * "
                            "group by bogus")
                   .ok());
}

TEST_F(PolicyCatalogTest, GroupByRequiresAggregates) {
  EXPECT_FALSE(policies_
                   ->AddPolicyText("n",
                                   "ship id from cust to * group by name")
                   .ok());
}

TEST_F(PolicyCatalogTest, WherePredicateIsBoundToTable) {
  ASSERT_TRUE(policies_
                  ->AddPolicyText(
                      "n", "ship id from cust to e where bal > 100")
                  .ok());
  const PolicyExpression& e = policies_->For(0)[0];
  ASSERT_EQ(e.predicate.size(), 1u);
  std::vector<BaseAttr> bases;
  e.predicate[0]->CollectBaseAttrs(&bases);
  ASSERT_EQ(bases.size(), 1u);
  EXPECT_EQ(bases[0].table, "cust");
  EXPECT_EQ(bases[0].column, "bal");
}

TEST_F(PolicyCatalogTest, WhereRejectsForeignColumns) {
  EXPECT_FALSE(policies_
                   ->AddPolicyText(
                       "n", "ship id from cust to e where other.col = 1")
                   .ok());
}

TEST_F(PolicyCatalogTest, PerLocationIsolation) {
  ASSERT_TRUE(policies_->AddPolicyText("n", "ship id from cust to e").ok());
  ASSERT_TRUE(policies_->AddPolicyText("e", "ship name from cust to a").ok());
  EXPECT_EQ(policies_->For(0).size(), 1u);
  EXPECT_EQ(policies_->For(1).size(), 1u);
  EXPECT_TRUE(policies_->For(2).empty());
  EXPECT_EQ(policies_->TotalCount(), 2u);
  policies_->Clear();
  EXPECT_EQ(policies_->TotalCount(), 0u);
}

TEST_F(PolicyCatalogTest, RoundTripToString) {
  ASSERT_TRUE(policies_
                  ->AddPolicyText(
                      "n",
                      "ship bal as aggregates sum, avg from cust to e, a "
                      "where id > 5 group by name")
                  .ok());
  std::string text = policies_->For(0)[0].ToString(catalog_.locations());
  EXPECT_NE(text.find("as aggregates sum, avg"), std::string::npos);
  EXPECT_NE(text.find("group by name"), std::string::npos);
  EXPECT_NE(text.find("where"), std::string::npos);
  // The rendered text parses back.
  PolicyCatalog round(&catalog_);
  EXPECT_TRUE(round.AddPolicyText("n", text).ok()) << text;
}

TEST_F(PolicyCatalogTest, AccessorHelpers) {
  ASSERT_TRUE(policies_
                  ->AddPolicyText("n",
                                  "ship bal as aggregates sum from cust "
                                  "to * group by name")
                  .ok());
  const PolicyExpression& e = policies_->For(0)[0];
  EXPECT_TRUE(e.is_aggregate());
  EXPECT_TRUE(e.HasShipAttribute("bal"));
  EXPECT_FALSE(e.HasShipAttribute("name"));
  EXPECT_TRUE(e.HasGroupAttribute("name"));
  EXPECT_TRUE(e.AllowsAggFn(AggFn::kSum));
  EXPECT_FALSE(e.AllowsAggFn(AggFn::kAvg));
}

}  // namespace
}  // namespace cgq
