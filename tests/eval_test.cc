#include <gtest/gtest.h>

#include "expr/eval.h"
#include "sql/parser.h"

namespace cgq {
namespace {

// Evaluates `expr_sql` (parsed as a WHERE clause) against a row binding
// unbound columns a, b, s by name.
class EvalTest : public ::testing::Test {
 protected:
  // Layout with three attrs; we bind parser output (unbound refs) manually.
  Result<Value> Eval(const std::string& pred_sql, Value a, Value b,
                     Value s) {
    auto ast = ParseQuery("SELECT x FROM t WHERE " + pred_sql);
    if (!ast.ok()) return ast.status();
    ExprPtr bound = Bind(ast->where);
    Row row = {std::move(a), std::move(b), std::move(s)};
    return EvalExpr(*bound, row, layout_);
  }

  ExprPtr Bind(const ExprPtr& e) {
    if (e->op() == ExprOp::kColumnRef) {
      AttrId id = e->column() == "a" ? 0 : (e->column() == "b" ? 1 : 2);
      DataType t = id == 2 ? DataType::kString : DataType::kInt64;
      return Expr::BoundColumn(id, "t", e->column(), "t", t);
    }
    if (e->children().empty()) return e;
    std::vector<ExprPtr> kids;
    for (const ExprPtr& c : e->children()) kids.push_back(Bind(c));
    switch (e->op()) {
      case ExprOp::kNot:
        return Expr::Unary(ExprOp::kNot, kids[0]);
      case ExprOp::kIn:
        return Expr::InList(kids[0], e->in_list());
      default:
        return Expr::Binary(e->op(), kids[0], kids[1]);
    }
  }

  RowLayout layout_{std::vector<AttrId>{0, 1, 2}};
};

TEST_F(EvalTest, Comparisons) {
  EXPECT_EQ(Eval("a > 3", Value::Int64(5), Value::Null(), Value::Null())
                ->int64(),
            1);
  EXPECT_EQ(Eval("a > 3", Value::Int64(2), Value::Null(), Value::Null())
                ->int64(),
            0);
  EXPECT_EQ(
      Eval("a = b", Value::Int64(2), Value::Int64(2), Value::Null())->int64(),
      1);
}

TEST_F(EvalTest, NullComparisonsYieldNull) {
  EXPECT_TRUE(
      Eval("a > 3", Value::Null(), Value::Null(), Value::Null())->is_null());
  EXPECT_TRUE(
      Eval("a = b", Value::Int64(1), Value::Null(), Value::Null())->is_null());
}

TEST_F(EvalTest, KleeneAndOr) {
  // NULL AND FALSE = FALSE; NULL AND TRUE = NULL.
  EXPECT_EQ(Eval("a > 3 AND b > 3", Value::Null(), Value::Int64(1),
                 Value::Null())
                ->int64(),
            0);
  EXPECT_TRUE(Eval("a > 3 AND b > 3", Value::Null(), Value::Int64(5),
                   Value::Null())
                  ->is_null());
  // NULL OR TRUE = TRUE; NULL OR FALSE = NULL.
  EXPECT_EQ(Eval("a > 3 OR b > 3", Value::Null(), Value::Int64(5),
                 Value::Null())
                ->int64(),
            1);
  EXPECT_TRUE(Eval("a > 3 OR b > 3", Value::Null(), Value::Int64(1),
                   Value::Null())
                  ->is_null());
}

TEST_F(EvalTest, NotOfNull) {
  EXPECT_TRUE(
      Eval("NOT a > 3", Value::Null(), Value::Null(), Value::Null())
          ->is_null());
  EXPECT_EQ(Eval("NOT a > 3", Value::Int64(1), Value::Null(), Value::Null())
                ->int64(),
            1);
}

TEST_F(EvalTest, Arithmetic) {
  EXPECT_EQ(Eval("a + b = 7", Value::Int64(3), Value::Int64(4),
                 Value::Null())
                ->int64(),
            1);
  EXPECT_EQ(Eval("a * b = 12", Value::Int64(3), Value::Int64(4),
                 Value::Null())
                ->int64(),
            1);
  EXPECT_EQ(Eval("a - b = -1", Value::Int64(3), Value::Int64(4),
                 Value::Null())
                ->int64(),
            1);
}

TEST_F(EvalTest, DivisionByZeroIsNull) {
  EXPECT_TRUE(Eval("a / b > 0", Value::Int64(3), Value::Int64(0),
                   Value::Null())
                  ->is_null());
}

TEST_F(EvalTest, DivisionProducesDouble) {
  EXPECT_EQ(Eval("a / b = 1.5", Value::Int64(3), Value::Int64(2),
                 Value::Null())
                ->int64(),
            1);
}

TEST_F(EvalTest, LikeOnRow) {
  EXPECT_EQ(Eval("s LIKE 'A%'", Value::Null(), Value::Null(),
                 Value::String("Anna"))
                ->int64(),
            1);
  EXPECT_EQ(Eval("s NOT LIKE 'A%'", Value::Null(), Value::Null(),
                 Value::String("Anna"))
                ->int64(),
            0);
  EXPECT_TRUE(
      Eval("s LIKE 'A%'", Value::Null(), Value::Null(), Value::Null())
          ->is_null());
}

TEST_F(EvalTest, InList) {
  EXPECT_EQ(Eval("a IN (1, 2, 3)", Value::Int64(2), Value::Null(),
                 Value::Null())
                ->int64(),
            1);
  EXPECT_EQ(Eval("a IN (1, 2, 3)", Value::Int64(9), Value::Null(),
                 Value::Null())
                ->int64(),
            0);
  EXPECT_TRUE(Eval("a IN (1, 2, 3)", Value::Null(), Value::Null(),
                   Value::Null())
                  ->is_null());
}

TEST_F(EvalTest, PredicateHelperRejectsNull) {
  auto ast = ParseQuery("SELECT x FROM t WHERE a > 3");
  ExprPtr bound = Bind(ast->where);
  Row row = {Value::Null(), Value::Null(), Value::Null()};
  auto r = EvalPredicate(*bound, row, layout_);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);  // NULL predicate filters the row out
}

TEST(AggAccumulatorTest, SumIgnoresNulls) {
  AggAccumulator acc(AggFn::kSum);
  acc.Add(Value::Int64(2));
  acc.Add(Value::Null());
  acc.Add(Value::Int64(5));
  EXPECT_EQ(acc.Finish().int64(), 7);
}

TEST(AggAccumulatorTest, SumOfDoublesStaysDouble) {
  AggAccumulator acc(AggFn::kSum);
  acc.Add(Value::Double(1.5));
  acc.Add(Value::Int64(2));
  EXPECT_DOUBLE_EQ(acc.Finish().dbl(), 3.5);
}

TEST(AggAccumulatorTest, EmptySumIsNull) {
  AggAccumulator acc(AggFn::kSum);
  EXPECT_TRUE(acc.Finish().is_null());
}

TEST(AggAccumulatorTest, CountCountsNonNulls) {
  AggAccumulator acc(AggFn::kCount);
  acc.Add(Value::Int64(1));
  acc.Add(Value::Null());
  acc.Add(Value::String("x"));
  EXPECT_EQ(acc.Finish().int64(), 2);
}

TEST(AggAccumulatorTest, EmptyCountIsZero) {
  AggAccumulator acc(AggFn::kCount);
  EXPECT_EQ(acc.Finish().int64(), 0);
}

TEST(AggAccumulatorTest, Avg) {
  AggAccumulator acc(AggFn::kAvg);
  acc.Add(Value::Int64(2));
  acc.Add(Value::Int64(4));
  EXPECT_DOUBLE_EQ(acc.Finish().dbl(), 3.0);
}

TEST(AggAccumulatorTest, MinMax) {
  AggAccumulator mn(AggFn::kMin), mx(AggFn::kMax);
  for (int v : {5, 2, 9, 3}) {
    mn.Add(Value::Int64(v));
    mx.Add(Value::Int64(v));
  }
  EXPECT_EQ(mn.Finish().int64(), 2);
  EXPECT_EQ(mx.Finish().int64(), 9);
}

TEST(AggAccumulatorTest, MinMaxStrings) {
  AggAccumulator mn(AggFn::kMin);
  mn.Add(Value::String("pear"));
  mn.Add(Value::String("apple"));
  EXPECT_EQ(mn.Finish().str(), "apple");
}

}  // namespace
}  // namespace cgq
