// Disk-backed execution is byte-identical to in-memory execution: the
// full 24-cell TPC-H compliance workload ({T, CR} x 12 queries) runs on
// a StorageMode::kDisk store — small blocks, so scans genuinely stream
// block-by-block — through every backend (row, fragment, vector, and
// distributed over loopback servers started with a data_dir), and every
// cell must reproduce the in-memory row reference exactly: same rows,
// same order, same ship accounting. A disk-backed server restart must
// recover its fragments without re-deployment.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "exec/executor.h"
#include "exec/table_store.h"
#include "net/cluster_client.h"
#include "net/network_model.h"
#include "net/server.h"
#include "tpch/tpch.h"

namespace cgq {
namespace {

namespace fs = std::filesystem;

// TPC-H generated once; one in-memory reference store and one
// disk-backed twin under a temp dir with tiny blocks.
struct SharedStores {
  SharedStores() {
    config.scale_factor = 0.002;
    catalog = std::make_unique<Catalog>(*tpch::BuildCatalog(config));
    net = std::make_unique<NetworkModel>(NetworkModel::DefaultGeo(5));
    memory = std::make_unique<TableStore>();
    CGQ_CHECK(tpch::GenerateData(*catalog, config, memory.get()).ok());

    dir = (fs::temp_directory_path() / "cgq-storage-equivalence").string();
    std::error_code ec;
    fs::remove_all(dir, ec);
    disk = std::make_unique<TableStore>(*memory);
    storage::StorageOptions options;
    options.block_target_bytes = 8 * 1024;  // force multi-block fragments
    CGQ_CHECK(disk->EnableDiskStorage(dir, options).ok());
    CGQ_CHECK(disk->storage_mode() == StorageMode::kDisk);
  }

  tpch::TpchConfig config;
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<NetworkModel> net;
  std::unique_ptr<TableStore> memory;
  std::unique_ptr<TableStore> disk;
  std::string dir;
};

SharedStores& Shared() {
  static SharedStores* s = new SharedStores();
  return *s;
}

std::vector<std::string> ExactRows(const QueryResult& r) {
  std::vector<std::string> rows;
  rows.reserve(r.rows.size());
  for (const Row& row : r.rows) {
    std::string s;
    for (const Value& v : row) {
      if (v.is_null()) {
        s += "NULL|";
      } else if (v.is_double()) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g|", v.dbl());
        s += buf;
      } else {
        s += v.ToString() + "|";
      }
    }
    rows.push_back(std::move(s));
  }
  return rows;
}

Result<OptimizedQuery> OptimizeTpch(const SharedStores& shared, int qnum,
                                    const char* policy_set) {
  PolicyCatalog policies(shared.catalog.get());
  CGQ_RETURN_NOT_OK(tpch::InstallPolicySet(policy_set, &policies));
  QueryOptimizer optimizer(shared.catalog.get(), &policies,
                           shared.net.get(), OptimizerOptions());
  CGQ_ASSIGN_OR_RETURN(std::string sql, tpch::Query(qnum));
  return optimizer.Optimize(sql);
}

void ExpectSameAccounting(const ExecMetrics& a, const ExecMetrics& b) {
  EXPECT_EQ(a.ships, b.ships);
  EXPECT_EQ(a.rows_shipped, b.rows_shipped);
  EXPECT_EQ(a.bytes_shipped, b.bytes_shipped);
  EXPECT_EQ(a.rows_scanned, b.rows_scanned);
}

std::vector<int> AllQueries() {
  std::vector<int> queries = tpch::QueryNumbers();
  for (int q : tpch::ExtendedQueryNumbers()) queries.push_back(q);
  return queries;
}

// The tentpole acceptance gate for the three in-process backends: every
// cell, disk vs the in-memory row reference.
TEST(StorageEquivalenceTest, DiskMatchesMemoryOnFullWorkload) {
  SharedStores& shared = Shared();
  const struct {
    ExecMode mode;
    const char* name;
  } backends[] = {{ExecMode::kRow, "row"},
                  {ExecMode::kFragment, "fragment"},
                  {ExecMode::kVector, "vector"}};

  int cells = 0;
  int64_t total_blocks_read = 0;
  for (const char* policy_set : {"T", "CR"}) {
    for (int qnum : AllQueries()) {
      SCOPED_TRACE(std::string(policy_set) + " Q" + std::to_string(qnum));
      auto q = OptimizeTpch(shared, qnum, policy_set);
      ASSERT_TRUE(q.ok()) << q.status();

      Executor ref_exec(shared.memory.get(), shared.net.get());
      auto ref = ref_exec.Execute(*q);
      ASSERT_TRUE(ref.ok()) << ref.status();
      EXPECT_EQ(ref->metrics.storage_blocks_read, 0);

      for (const auto& backend : backends) {
        SCOPED_TRACE(backend.name);
        ExecutorOptions opts;
        opts.mode = backend.mode;
        Executor disk_exec(shared.disk.get(), shared.net.get(), opts);
        auto disk = disk_exec.Execute(*q);
        ASSERT_TRUE(disk.ok()) << disk.status();
        EXPECT_EQ(ExactRows(*disk), ExactRows(*ref));
        ExpectSameAccounting(disk->metrics, ref->metrics);
        total_blocks_read += disk->metrics.storage_blocks_read;
      }
      ++cells;
    }
  }
  EXPECT_EQ(cells, 24);
  // With 8KB blocks the workload cannot run without streaming blocks —
  // zero here would mean disk mode silently fell back to RAM.
  EXPECT_GT(total_blocks_read, 0);
}

// Distributed backend over disk-backed loopback servers, plus the
// restart contract: new server processes pointed at the same data dirs
// recover every fragment with no re-deployment, and the whole workload
// still matches the reference.
TEST(StorageEquivalenceTest, DiskBackedServersMatchAndSurviveRestart) {
  SharedStores& shared = Shared();
  const std::vector<std::vector<LocationId>> hosting = {{0, 1}, {2, 3}, {4}};
  std::vector<std::string> dirs;
  for (size_t i = 0; i < hosting.size(); ++i) {
    std::string d = (fs::temp_directory_path() /
                     ("cgq-storage-equivalence-srv" + std::to_string(i)))
                        .string();
    std::error_code ec;
    fs::remove_all(d, ec);
    dirs.push_back(d);
  }

  auto start_servers = [&](std::vector<std::unique_ptr<net::SiteServer>>*
                               servers,
                           std::map<LocationId, net::Endpoint>* endpoints) {
    for (size_t i = 0; i < hosting.size(); ++i) {
      net::SiteServer::Options o;
      o.locations = hosting[i];
      o.data_dir = dirs[i];
      servers->push_back(std::make_unique<net::SiteServer>(o));
      ASSERT_TRUE(servers->back()->Start().ok());
      for (LocationId loc : hosting[i]) {
        (*endpoints)[loc] = {"127.0.0.1", servers->back()->port()};
      }
    }
  };

  auto run_cells = [&](net::ClusterClient* cluster, const char* what) {
    for (const char* policy_set : {"T", "CR"}) {
      for (int qnum : AllQueries()) {
        SCOPED_TRACE(std::string(what) + " " + policy_set + " Q" +
                     std::to_string(qnum));
        auto q = OptimizeTpch(shared, qnum, policy_set);
        ASSERT_TRUE(q.ok()) << q.status();

        Executor ref_exec(shared.memory.get(), shared.net.get());
        auto ref = ref_exec.Execute(*q);
        ASSERT_TRUE(ref.ok()) << ref.status();

        ExecutorOptions opts;
        opts.mode = ExecMode::kDistributed;
        opts.cluster = cluster;
        Executor dist_exec(shared.memory.get(), shared.net.get(), opts);
        auto dist = dist_exec.Execute(*q);
        ASSERT_TRUE(dist.ok()) << dist.status();
        EXPECT_EQ(ExactRows(*dist), ExactRows(*ref));
        ExpectSameAccounting(dist->metrics, ref->metrics);
      }
    }
  };

  {
    std::vector<std::unique_ptr<net::SiteServer>> servers;
    std::map<LocationId, net::Endpoint> endpoints;
    start_servers(&servers, &endpoints);
    net::ClusterClient cluster;
    ASSERT_TRUE(cluster.Connect(endpoints).ok());
    ASSERT_TRUE(cluster.Deploy(*shared.memory).ok());
    run_cells(&cluster, "first-generation");
    for (auto& server : servers) server->Stop();
  }

  // Second generation: same dirs, fresh processes, NO Deploy.
  std::vector<std::unique_ptr<net::SiteServer>> servers;
  std::map<LocationId, net::Endpoint> endpoints;
  start_servers(&servers, &endpoints);
  net::ClusterClient cluster;
  ASSERT_TRUE(cluster.Connect(endpoints).ok());
  run_cells(&cluster, "post-restart");
  for (auto& server : servers) server->Stop();

  for (const std::string& d : dirs) {
    std::error_code ec;
    fs::remove_all(d, ec);
  }
}

// Round trip back to memory mode: DisableDiskStorage materializes every
// fragment and the store keeps answering identically.
TEST(StorageEquivalenceTest, DisableDiskStorageRoundTrips) {
  SharedStores& shared = Shared();
  TableStore store(*shared.memory);
  std::string dir =
      (fs::temp_directory_path() / "cgq-storage-equivalence-rt").string();
  std::error_code ec;
  fs::remove_all(dir, ec);
  ASSERT_TRUE(store.EnableDiskStorage(dir).ok());
  ASSERT_TRUE(store.DisableDiskStorage().ok());
  ASSERT_TRUE(store.storage_mode() == StorageMode::kMemory);

  auto q = OptimizeTpch(shared, tpch::QueryNumbers().front(), "CR");
  ASSERT_TRUE(q.ok()) << q.status();
  Executor ref_exec(shared.memory.get(), shared.net.get());
  auto ref = ref_exec.Execute(*q);
  ASSERT_TRUE(ref.ok()) << ref.status();
  Executor rt_exec(&store, shared.net.get());
  auto rt = rt_exec.Execute(*q);
  ASSERT_TRUE(rt.ok()) << rt.status();
  EXPECT_EQ(ExactRows(*rt), ExactRows(*ref));
  fs::remove_all(dir, ec);
}

}  // namespace
}  // namespace cgq
