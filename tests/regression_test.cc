#include <gtest/gtest.h>

#include <chrono>

#include "core/optimizer.h"
#include "net/network_model.h"
#include "plan/plan_dot.h"
#include "tpch/tpch.h"

namespace cgq {
namespace {

// Golden regression of the Fig 5(a) compliance matrix: the traditional
// optimizer's verdict per (set, query) as currently measured. A change
// here is not necessarily a bug, but it IS a behavior change of either
// the cost model, the curated policy sets or the checker — review before
// updating the table.
TEST(RegressionTest, Fig5aTraditionalVerdictMatrix) {
  tpch::TpchConfig config;
  config.scale_factor = 10;
  auto catalog = tpch::BuildCatalog(config);
  ASSERT_TRUE(catalog.ok());
  NetworkModel net = NetworkModel::DefaultGeo(5);
  PolicyCatalog policies(&*catalog);

  struct Expectation {
    const char* set;
    // Q2, Q3, Q5, Q8, Q9, Q10
    bool compliant[6];
  };
  const Expectation golden[] = {
      {"T", {false, true, false, false, false, true}},
      {"C", {false, true, true, false, false, true}},
      {"CR", {false, true, true, false, false, true}},
      {"CRA", {false, true, true, false, false, false}},
  };

  for (const Expectation& row : golden) {
    ASSERT_TRUE(tpch::InstallPolicySet(row.set, &policies).ok());
    OptimizerOptions opts;
    opts.compliant = false;
    QueryOptimizer optimizer(&*catalog, &policies, &net, opts);
    std::vector<int> queries = tpch::QueryNumbers();
    for (size_t i = 0; i < queries.size(); ++i) {
      auto r = optimizer.Optimize(*tpch::Query(queries[i]));
      ASSERT_TRUE(r.ok()) << row.set << "/Q" << queries[i];
      EXPECT_EQ(r->compliant, row.compliant[i])
          << row.set << "/Q" << queries[i];
    }
  }
}

// Guard against search-space regressions: a 10-relation chain join must
// stay within sane memo bounds and optimize in well under a second.
TEST(RegressionTest, TenRelationChainStaysBounded) {
  Catalog catalog;
  ASSERT_TRUE(catalog.mutable_locations().AddLocation("x").ok());
  ASSERT_TRUE(catalog.mutable_locations().AddLocation("y").ok());
  std::string from, where;
  for (int i = 0; i < 10; ++i) {
    TableDef t;
    t.name = "t" + std::to_string(i);
    t.schema = Schema({{"k", DataType::kInt64}, {"v", DataType::kInt64}});
    t.fragments = {TableFragment{static_cast<LocationId>(i % 2), 1.0}};
    t.stats.row_count = 100 + 50 * i;
    ASSERT_TRUE(catalog.AddTable(t).ok());
    if (i > 0) {
      from += ", ";
      if (i > 1) where += " AND ";
      where += "t" + std::to_string(i - 1) + ".k = t" +
               std::to_string(i) + ".k";
    }
    from += t.name;
  }
  PolicyCatalog policies(&catalog);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(policies
                    .AddPolicyText(i % 2 == 0 ? "x" : "y",
                                   "ship * from t" + std::to_string(i) +
                                       " to *")
                    .ok());
  }
  NetworkModel net = NetworkModel::DefaultGeo(2);
  QueryOptimizer optimizer(&catalog, &policies, &net, {});

  auto start = std::chrono::steady_clock::now();
  auto r = optimizer.Optimize("SELECT t0.v FROM " + from + " WHERE " + where);
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->compliant);
  EXPECT_LT(r->stats.memo_groups, 3000u);
  EXPECT_LT(ms, 2000.0) << "10-relation chain took " << ms << " ms";
}

TEST(RegressionTest, DotExportContainsStructure) {
  tpch::TpchConfig config;
  config.scale_factor = 1;
  auto catalog = tpch::BuildCatalog(config);
  PolicyCatalog policies(&*catalog);
  ASSERT_TRUE(tpch::InstallPolicySet("CR", &policies).ok());
  NetworkModel net = NetworkModel::DefaultGeo(5);
  QueryOptimizer optimizer(&*catalog, &policies, &net, {});
  auto r = optimizer.Optimize(*tpch::Query(3));
  ASSERT_TRUE(r.ok());
  std::string dot = PlanToDot(*r->plan, &catalog->locations());
  EXPECT_NE(dot.find("digraph plan"), std::string::npos);
  EXPECT_NE(dot.find("Scan[lineitem"), std::string::npos);
  EXPECT_NE(dot.find("->n"), std::string::npos);
  // Balanced braces, node count matches edges + 1 (a tree).
  size_t nodes = 0, edges = 0, pos = 0;
  while ((pos = dot.find("[shape=", pos)) != std::string::npos) {
    ++nodes;
    ++pos;
  }
  pos = 0;
  while ((pos = dot.find("->n", pos)) != std::string::npos) {
    ++edges;
    ++pos;
  }
  EXPECT_EQ(nodes, edges + 1);
}

}  // namespace
}  // namespace cgq
