#include <gtest/gtest.h>

#include "core/engine.h"
#include "sql/parser.h"

namespace cgq {
namespace {

// End-to-end tests of COUNT(*), SELECT DISTINCT and HAVING.
class SqlFeaturesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Catalog catalog;
    ASSERT_TRUE(catalog.mutable_locations().AddLocation("m").ok());
    ASSERT_TRUE(catalog.mutable_locations().AddLocation("w").ok());
    TableDef t;
    t.name = "sales";
    t.schema = Schema({{"region", DataType::kString},
                       {"amount", DataType::kInt64}});
    t.fragments = {TableFragment{0, 1.0}};
    t.stats.row_count = 6;
    ASSERT_TRUE(catalog.AddTable(t).ok());
    engine_ = std::make_unique<Engine>(std::move(catalog),
                                       NetworkModel::DefaultGeo(2));
    ASSERT_TRUE(engine_->AddPolicy("m", "ship * from sales to *").ok());
    engine_->store().Put(0, "sales",
                         {{Value::String("na"), Value::Int64(10)},
                          {Value::String("na"), Value::Int64(20)},
                          {Value::String("eu"), Value::Int64(5)},
                          {Value::String("eu"), Value::Int64(5)},
                          {Value::String("eu"), Value::Null()},
                          {Value::String("apac"), Value::Int64(50)}});
  }

  QueryResult Run(const std::string& sql) {
    auto r = engine_->Run(sql);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status();
    return r.ok() ? *r : QueryResult{};
  }

  std::unique_ptr<Engine> engine_;
};

TEST_F(SqlFeaturesTest, CountStarCountsRows) {
  QueryResult r = Run("SELECT COUNT(*) AS n FROM sales");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].int64(), 6);  // NULL amount still counts
}

TEST_F(SqlFeaturesTest, CountStarPerGroup) {
  QueryResult r = Run(
      "SELECT region, COUNT(*) AS n FROM sales GROUP BY region "
      "ORDER BY region");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0].str(), "apac");
  EXPECT_EQ(r.rows[0][1].int64(), 1);
  EXPECT_EQ(r.rows[1][1].int64(), 3);  // eu
  EXPECT_EQ(r.rows[2][1].int64(), 2);  // na
}

TEST_F(SqlFeaturesTest, CountStarVersusCountColumn) {
  QueryResult r = Run(
      "SELECT COUNT(*) AS rows_n, COUNT(amount) AS vals_n FROM sales");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].int64(), 6);
  EXPECT_EQ(r.rows[0][1].int64(), 5);  // NULL skipped
}

TEST_F(SqlFeaturesTest, Distinct) {
  QueryResult r = Run("SELECT DISTINCT region FROM sales ORDER BY region");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0].str(), "apac");
  EXPECT_EQ(r.rows[1][0].str(), "eu");
  EXPECT_EQ(r.rows[2][0].str(), "na");
}

TEST_F(SqlFeaturesTest, DistinctMultipleColumns) {
  QueryResult r = Run("SELECT DISTINCT region, amount FROM sales");
  EXPECT_EQ(r.rows.size(), 5u);  // (eu,5) deduplicated
}

TEST_F(SqlFeaturesTest, DistinctWithAggregateRejected) {
  auto r = engine_->Run("SELECT DISTINCT SUM(amount) FROM sales");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnsupported());
}

TEST_F(SqlFeaturesTest, HavingFiltersGroups) {
  QueryResult r = Run(
      "SELECT region, SUM(amount) AS total FROM sales "
      "GROUP BY region HAVING total > 15 ORDER BY region");
  ASSERT_EQ(r.rows.size(), 2u);  // na=30, apac=50; eu=10 filtered
  EXPECT_EQ(r.rows[0][0].str(), "apac");
  EXPECT_EQ(r.rows[1][0].str(), "na");
}

TEST_F(SqlFeaturesTest, HavingOnCountStar) {
  QueryResult r = Run(
      "SELECT region, COUNT(*) AS n FROM sales GROUP BY region "
      "HAVING n >= 2 ORDER BY region");
  ASSERT_EQ(r.rows.size(), 2u);  // eu (3), na (2)
}

TEST_F(SqlFeaturesTest, HavingOnGroupColumn) {
  QueryResult r = Run(
      "SELECT region, SUM(amount) AS total FROM sales "
      "GROUP BY region HAVING region <> 'eu' ORDER BY region");
  ASSERT_EQ(r.rows.size(), 2u);
}

TEST_F(SqlFeaturesTest, HavingWithoutGroupByRejected) {
  auto r = engine_->Run("SELECT region FROM sales HAVING region = 'eu'");
  EXPECT_FALSE(r.ok());
}

TEST_F(SqlFeaturesTest, HavingUnknownNameRejected) {
  auto r = engine_->Run(
      "SELECT region, SUM(amount) AS total FROM sales GROUP BY region "
      "HAVING bogus > 1");
  EXPECT_FALSE(r.ok());
}

TEST_F(SqlFeaturesTest, ParserAcceptsNewSyntax) {
  EXPECT_TRUE(ParseQuery("SELECT DISTINCT a FROM t").ok());
  EXPECT_TRUE(ParseQuery("SELECT COUNT(*) FROM t").ok());
  EXPECT_TRUE(
      ParseQuery("SELECT a, SUM(b) AS s FROM t GROUP BY a HAVING s > 1")
          .ok());
  // COUNT(*) is the only star-call.
  EXPECT_FALSE(ParseQuery("SELECT SUM(*) FROM t").ok());
}

// Compliance interactions: COUNT(*) discloses no attribute, so it may
// ship even under aggregate-only policies that do not list `count`.
TEST_F(SqlFeaturesTest, CountStarUnderRestrictivePolicies) {
  engine_->policies().Clear();
  ASSERT_TRUE(engine_
                  ->AddPolicy("m",
                              "ship amount as aggregates sum from sales "
                              "to w group by region")
                  .ok());
  // Aggregated amount may ship; COUNT(*) rides along (no attribute).
  auto ok = engine_->Optimize(
      "SELECT region, SUM(amount) AS s, COUNT(*) AS n FROM sales "
      "GROUP BY region");
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_TRUE(ok->compliant);
  // COUNT(amount) names the attribute with fn=count, which the policy
  // does not allow: usable only at home.
  auto counted = engine_->Optimize(
      "SELECT region, COUNT(amount) AS n FROM sales GROUP BY region");
  ASSERT_TRUE(counted.ok());
  EXPECT_EQ(counted->result_location, 0u);
}

}  // namespace
}  // namespace cgq
