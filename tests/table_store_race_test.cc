// Regression for the TableStore copy/move data race: the copy and move
// constructors used to read `other.fragments_` without taking other's
// mutex, so copying a store while a loader thread ran Put/Append was a
// torn read (caught by TSan). The fix locks both sides; these tests
// hammer exactly that interleaving and must stay clean under
// -fsanitize=thread.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "exec/table_store.h"
#include "types/value.h"

namespace cgq {
namespace {

Row MakeRow(int64_t i) {
  return {Value::Int64(i), Value::String("v" + std::to_string(i))};
}

std::vector<Row> MakeRows(int64_t n, int64_t base) {
  std::vector<Row> rows;
  for (int64_t i = 0; i < n; ++i) rows.push_back(MakeRow(base + i));
  return rows;
}

// A copied store is internally consistent: every fragment it reports is
// readable and every row is well-formed (width 2, non-null). Under a
// torn copy this dereferences freed vector storage.
void CheckCopyConsistent(const TableStore& copy) {
  for (const auto& frag : copy.ListFragments()) {
    auto rows = copy.Get(frag.location, frag.table);
    ASSERT_TRUE(rows.ok()) << rows.status();
    ASSERT_EQ((*rows)->size(), frag.row_count);
    for (const Row& row : **rows) {
      ASSERT_EQ(row.size(), 2u);
      ASSERT_FALSE(row[0].is_null());
    }
  }
}

TEST(TableStoreRaceTest, CopyWhileConcurrentPutAppend) {
  TableStore store;
  ASSERT_TRUE(store.Put(0, "events", MakeRows(64, 0)).ok());
  ASSERT_TRUE(store.Put(1, "users", MakeRows(64, 1000)).ok());

  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    int64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      (void)store.Put(0, "events", MakeRows(32 + (i % 64), i));
      (void)store.Append(1, "users", MakeRow(i));
      (void)store.AppendRows(0, "extra", MakeRows(8, i));
      ++i;
    }
  });

  for (int iter = 0; iter < 200; ++iter) {
    TableStore copy(store);  // copy ctor under concurrent mutation
    CheckCopyConsistent(copy);
  }
  stop.store(true);
  mutator.join();
}

TEST(TableStoreRaceTest, CopyAssignWhileConcurrentPutAppend) {
  TableStore store;
  ASSERT_TRUE(store.Put(0, "events", MakeRows(64, 0)).ok());

  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    int64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      (void)store.Put(0, "events", MakeRows(32 + (i % 64), i));
      (void)store.Append(0, "tail", MakeRow(i));
      ++i;
    }
  });

  TableStore target;
  for (int iter = 0; iter < 200; ++iter) {
    target = store;  // copy assignment under concurrent mutation
    CheckCopyConsistent(target);
  }
  stop.store(true);
  mutator.join();
}

TEST(TableStoreRaceTest, MoveFromQuiescedStoreIsComplete) {
  // Moves require the source to be externally quiesced (no concurrent
  // mutators), but must still take the source lock so a *finished*
  // mutator's writes are visible. Mutate on one thread, join, then move.
  TableStore store;
  std::thread loader([&] {
    for (int64_t i = 0; i < 100; ++i) {
      (void)store.Append(0, "t", MakeRow(i));
    }
  });
  loader.join();
  TableStore moved(std::move(store));
  auto n = moved.FragmentRows(0, "t");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 100u);
}

TEST(TableStoreRaceTest, ConcurrentReadersAndCopies) {
  TableStore store;
  ASSERT_TRUE(store.Put(0, "t", MakeRows(256, 0)).ok());

  std::atomic<bool> stop{false};
  std::thread mutator([&] {
    int64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      (void)store.Put(0, "t", MakeRows(128 + (i % 128), i));
      ++i;
    }
  });
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto cursor = store.Scan(0, "t");
      if (!cursor.ok()) continue;
      std::vector<Row> chunk;
      while (true) {
        auto more = cursor->Next(&chunk);
        if (!more.ok() || !*more) break;
      }
      (void)store.FragmentRows(0, "t");
      (void)store.TotalRows();
    }
  });

  for (int iter = 0; iter < 100; ++iter) {
    TableStore copy(store);
    CheckCopyConsistent(copy);
  }
  stop.store(true);
  mutator.join();
  reader.join();
}

}  // namespace
}  // namespace cgq
