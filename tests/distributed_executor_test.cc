// Loopback-equals-in-process: a three-server loopback deployment of the
// distributed backend must reproduce the in-process row backend's
// results byte for byte — and its ship accounting (ships, rows_shipped,
// bytes_shipped, rows_scanned) exactly — across the full 24-cell TPC-H
// compliance workload ({T, CR} policy sets x 12 queries). The servers
// here are in-process threads speaking real TCP over 127.0.0.1; CI runs
// the same contract across OS processes (ci/run_loopback.sh).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "exec/executor.h"
#include "net/cluster_client.h"
#include "net/network_model.h"
#include "net/server.h"
#include "tpch/tpch.h"

namespace cgq {
namespace {

// TPC-H data generated once, deployed once onto three loopback servers
// that partition the five locations as {0,1} / {2,3} / {4}.
struct SharedCluster {
  SharedCluster() {
    config.scale_factor = 0.002;
    catalog = std::make_unique<Catalog>(*tpch::BuildCatalog(config));
    net = std::make_unique<NetworkModel>(NetworkModel::DefaultGeo(5));
    store = std::make_unique<TableStore>();
    CGQ_CHECK(tpch::GenerateData(*catalog, config, store.get()).ok());

    const std::vector<std::vector<LocationId>> hosting = {
        {0, 1}, {2, 3}, {4}};
    std::map<LocationId, net::Endpoint> endpoints;
    for (const auto& locations : hosting) {
      net::SiteServer::Options o;
      o.locations = locations;
      servers.push_back(std::make_unique<net::SiteServer>(o));
      CGQ_CHECK(servers.back()->Start().ok());
      for (LocationId loc : locations) {
        endpoints[loc] = {"127.0.0.1", servers.back()->port()};
      }
    }
    CGQ_CHECK(cluster.Connect(endpoints).ok());
    CGQ_CHECK(cluster.Deploy(*store).ok());
  }

  tpch::TpchConfig config;
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<NetworkModel> net;
  std::unique_ptr<TableStore> store;
  std::vector<std::unique_ptr<net::SiteServer>> servers;
  net::ClusterClient cluster;
};

SharedCluster& Shared() {
  static SharedCluster* s = new SharedCluster();
  return *s;
}

// Full-precision serialization: loopback runs must reproduce the
// in-process result byte for byte, order included.
std::vector<std::string> ExactRows(const QueryResult& r) {
  std::vector<std::string> rows;
  rows.reserve(r.rows.size());
  for (const Row& row : r.rows) {
    std::string s;
    for (const Value& v : row) {
      if (v.is_null()) {
        s += "NULL|";
      } else if (v.is_double()) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g|", v.dbl());
        s += buf;
      } else {
        s += v.ToString() + "|";
      }
    }
    rows.push_back(std::move(s));
  }
  return rows;
}

Result<OptimizedQuery> OptimizeTpch(const SharedCluster& shared, int qnum,
                                    const char* policy_set) {
  PolicyCatalog policies(shared.catalog.get());
  CGQ_RETURN_NOT_OK(tpch::InstallPolicySet(policy_set, &policies));
  QueryOptimizer optimizer(shared.catalog.get(), &policies,
                           shared.net.get(), OptimizerOptions());
  CGQ_ASSIGN_OR_RETURN(std::string sql, tpch::Query(qnum));
  return optimizer.Optimize(sql);
}

ExecutorOptions DistributedOptions(SharedCluster& shared, int threads) {
  ExecutorOptions o;
  o.mode = ExecMode::kDistributed;
  o.threads = threads;
  o.cluster = &shared.cluster;
  return o;
}

// Ship accounting must agree exactly — rows and edge counts as
// integers, modeled bytes bit for bit (both backends charge the same
// NetworkModel for the same batches). Modeled network time is the one
// float the backends *sum* in different edge orders, so it gets a
// relative tolerance instead of bit equality.
void ExpectSameAccounting(const ExecMetrics& a, const ExecMetrics& b) {
  EXPECT_EQ(a.ships, b.ships);
  EXPECT_EQ(a.rows_shipped, b.rows_shipped);
  EXPECT_EQ(a.bytes_shipped, b.bytes_shipped);
  EXPECT_NEAR(a.network_ms, b.network_ms,
              1e-9 * (1.0 + std::abs(a.network_ms)));
  EXPECT_EQ(a.rows_scanned, b.rows_scanned);
  EXPECT_EQ(a.edges.size(), b.edges.size());
}

// The acceptance gate of the deployment layer: every query of both
// policy workloads, distributed over loopback TCP, equals the row
// backend exactly.
TEST(DistributedExecutorTest, ReproducesRowBackendOnFullWorkload) {
  SharedCluster& shared = Shared();
  std::vector<int> queries = tpch::QueryNumbers();
  for (int q : tpch::ExtendedQueryNumbers()) queries.push_back(q);
  ASSERT_GE(queries.size(), 12u);

  int cells = 0;
  for (const char* policy_set : {"T", "CR"}) {
    for (int qnum : queries) {
      SCOPED_TRACE(std::string(policy_set) + " Q" + std::to_string(qnum));
      auto q = OptimizeTpch(shared, qnum, policy_set);
      ASSERT_TRUE(q.ok()) << q.status();

      Executor row_exec(shared.store.get(), shared.net.get());
      auto row = row_exec.Execute(*q);
      ASSERT_TRUE(row.ok()) << row.status();

      Executor dist_exec(shared.store.get(), shared.net.get(),
                         DistributedOptions(shared, 1));
      auto dist = dist_exec.Execute(*q);
      ASSERT_TRUE(dist.ok()) << dist.status();

      EXPECT_EQ(ExactRows(*dist), ExactRows(*row));
      ExpectSameAccounting(dist->metrics, row->metrics);
      ++cells;
    }
  }
  EXPECT_EQ(cells, 24);
}

// Pipelined dispatch (worker threads running fragments concurrently)
// changes scheduling only: rows and accounting stay identical to the
// sequential schedule.
TEST(DistributedExecutorTest, PipelinedMatchesSequential) {
  SharedCluster& shared = Shared();
  for (int qnum : tpch::QueryNumbers()) {
    SCOPED_TRACE("Q" + std::to_string(qnum));
    auto q = OptimizeTpch(shared, qnum, "CR");
    ASSERT_TRUE(q.ok()) << q.status();

    Executor seq(shared.store.get(), shared.net.get(),
                 DistributedOptions(shared, 1));
    auto a = seq.Execute(*q);
    ASSERT_TRUE(a.ok()) << a.status();

    Executor par(shared.store.get(), shared.net.get(),
                 DistributedOptions(shared, 4));
    auto b = par.Execute(*q);
    ASSERT_TRUE(b.ok()) << b.status();

    EXPECT_EQ(ExactRows(*a), ExactRows(*b));
    ExpectSameAccounting(a->metrics, b->metrics);
  }
}

// The distributed accounting also matches the fragment backend (which
// shares the channel machinery directly) — the three backends form one
// equivalence class.
TEST(DistributedExecutorTest, MatchesFragmentBackend) {
  SharedCluster& shared = Shared();
  auto q = OptimizeTpch(shared, tpch::QueryNumbers().front(), "CR");
  ASSERT_TRUE(q.ok()) << q.status();

  ExecutorOptions fopt;
  fopt.mode = ExecMode::kFragment;
  Executor frag(shared.store.get(), shared.net.get(), fopt);
  auto a = frag.Execute(*q);
  ASSERT_TRUE(a.ok()) << a.status();

  Executor dist(shared.store.get(), shared.net.get(),
                DistributedOptions(shared, 1));
  auto b = dist.Execute(*q);
  ASSERT_TRUE(b.ok()) << b.status();

  EXPECT_EQ(ExactRows(*a), ExactRows(*b));
  ExpectSameAccounting(a->metrics, b->metrics);
}

// Without a connected cluster the mode is refused up front with a typed
// error, before any fragment is dispatched.
TEST(DistributedExecutorTest, RequiresConnectedCluster) {
  SharedCluster& shared = Shared();
  auto q = OptimizeTpch(shared, tpch::QueryNumbers().front(), "T");
  ASSERT_TRUE(q.ok()) << q.status();

  ExecutorOptions o;
  o.mode = ExecMode::kDistributed;  // no cluster set
  Executor exec(shared.store.get(), shared.net.get(), o);
  auto r = exec.Execute(*q);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status();
}

// Engine-level plumbing: ConnectCluster + DeployStore + ExecMode wired
// through default_exec_options, equal to the engine's row-mode Run.
TEST(DistributedExecutorTest, EngineRunsDistributedEndToEnd) {
  SharedCluster& shared = Shared();
  Engine engine(Catalog(*shared.catalog), NetworkModel::DefaultGeo(5));
  ASSERT_TRUE(tpch::InstallPolicySet("CR", &engine.policies()).ok());
  ASSERT_TRUE(
      tpch::GenerateData(engine.catalog(), shared.config, &engine.store())
          .ok());
  ASSERT_TRUE(engine.ConnectCluster(shared.cluster.endpoints()).ok());
  ASSERT_TRUE(engine.DeployStore().ok());

  auto sql = tpch::Query(tpch::QueryNumbers().front());
  ASSERT_TRUE(sql.ok());

  engine.set_exec_mode(ExecMode::kRow);
  auto row = engine.Run(*sql);
  ASSERT_TRUE(row.ok()) << row.status();

  engine.set_exec_mode(ExecMode::kDistributed);
  auto dist = engine.Run(*sql);
  ASSERT_TRUE(dist.ok()) << dist.status();

  EXPECT_EQ(ExactRows(*dist), ExactRows(*row));
  ExpectSameAccounting(dist->metrics, row->metrics);
}

}  // namespace
}  // namespace cgq
