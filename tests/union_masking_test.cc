#include <gtest/gtest.h>

#include "core/engine.h"

namespace cgq {
namespace {

// A sensor table fragmented over three sites; per-site policies only allow
// *aggregated* readings to leave. The compliant plan must aggregate each
// fragment locally (eager aggregation through UNION ALL) and combine the
// partials — and the combined result must be exact.
class UnionMaskingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Catalog catalog;
    for (const char* l : {"s1", "s2", "s3", "hq"}) {
      ASSERT_TRUE(catalog.mutable_locations().AddLocation(l).ok());
    }
    TableDef readings;
    readings.name = "readings";
    readings.schema = Schema({{"sensor", DataType::kInt64},
                              {"temp", DataType::kInt64}});
    readings.fragments = {TableFragment{0, 0.34}, TableFragment{1, 0.33},
                          TableFragment{2, 0.33}};
    readings.stats.row_count = 9;
    ASSERT_TRUE(catalog.AddTable(readings).ok());

    engine_ = std::make_unique<Engine>(std::move(catalog),
                                       NetworkModel::DefaultGeo(4));
    for (const char* l : {"s1", "s2", "s3"}) {
      ASSERT_TRUE(engine_
                      ->AddPolicy(l,
                                  "ship temp as aggregates sum, min, max, "
                                  "count from readings to hq "
                                  "group by sensor")
                      .ok());
    }
    // Sensor 1 readings: 10@s1, 20@s2, 30@s3. Sensor 2: 5@s1, 7@s1.
    engine_->store().Put(0, "readings",
                         {{Value::Int64(1), Value::Int64(10)},
                          {Value::Int64(2), Value::Int64(5)},
                          {Value::Int64(2), Value::Int64(7)}});
    engine_->store().Put(1, "readings",
                         {{Value::Int64(1), Value::Int64(20)}});
    engine_->store().Put(2, "readings",
                         {{Value::Int64(1), Value::Int64(30)}});
  }

  static int CountPartials(const PlanNode& n) {
    int c = (n.kind() == PlanKind::kAggregate && n.is_partial_agg) ? 1 : 0;
    for (const auto& ch : n.children()) c += CountPartials(*ch);
    return c;
  }

  std::unique_ptr<Engine> engine_;
};

TEST_F(UnionMaskingTest, PerFragmentAggregationIsExact) {
  const char* sql =
      "SELECT sensor, SUM(temp) AS total, MIN(temp) AS lo, "
      "MAX(temp) AS hi, COUNT(temp) AS n "
      "FROM readings GROUP BY sensor ORDER BY sensor";
  auto plan = engine_->Optimize(sql);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(plan->compliant);
  // One partial aggregate per fragment.
  EXPECT_EQ(CountPartials(*plan->plan), 3)
      << PlanToString(*plan->plan, &engine_->catalog().locations());
  EXPECT_EQ(plan->result_location, 3u);  // hq

  auto result = engine_->Run(sql);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 2u);
  // sensor 1: sum 60, min 10, max 30, count 3.
  EXPECT_EQ(result->rows[0][0].int64(), 1);
  EXPECT_EQ(result->rows[0][1].int64(), 60);
  EXPECT_EQ(result->rows[0][2].int64(), 10);
  EXPECT_EQ(result->rows[0][3].int64(), 30);
  EXPECT_EQ(result->rows[0][4].int64(), 3);
  // sensor 2: sum 12, min 5, max 7, count 2 (all at s1).
  EXPECT_EQ(result->rows[1][1].int64(), 12);
  EXPECT_EQ(result->rows[1][2].int64(), 5);
  EXPECT_EQ(result->rows[1][3].int64(), 7);
  EXPECT_EQ(result->rows[1][4].int64(), 2);
}

TEST_F(UnionMaskingTest, RawReadingsCannotLeave) {
  auto r = engine_->Optimize("SELECT sensor, temp FROM readings");
  // Raw rows can never be unified at one site.
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNonCompliant());
}

TEST_F(UnionMaskingTest, AvgCannotBeDecomposedAcrossFragments) {
  auto r = engine_->Optimize(
      "SELECT sensor, AVG(temp) FROM readings GROUP BY sensor");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNonCompliant());
}

TEST_F(UnionMaskingTest, GroupingOutsidePolicyRejected) {
  auto r = engine_->Optimize(
      "SELECT temp, COUNT(sensor) FROM readings GROUP BY temp");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNonCompliant());
}

}  // namespace
}  // namespace cgq
