#include "service/query_service.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "tpch/tpch.h"

namespace cgq {
namespace {

std::vector<std::string> RenderedRows(const QueryResult& r) {
  std::vector<std::string> out;
  out.reserve(r.rows.size());
  for (const Row& row : r.rows) {
    std::string s;
    for (const Value& v : row) s += v.ToString() + "|";
    out.push_back(std::move(s));
  }
  return out;
}

// A non-equi join the planner can only run as a nested loop over ~36M
// pairs, reduced by COUNT so no rows accumulate: busy for far longer than
// any admission window in this file, yet stops at the next cancellation
// point when asked.
constexpr const char* kSlowSql =
    "SELECT COUNT(*) AS pairs FROM lineitem l, orders o "
    "WHERE l.orderkey < o.orderkey";

void PollUntilInflight(QueryService& service, int64_t n) {
  while (service.stats().inflight < n) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

class QueryServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_.scale_factor = 0.002;
    auto catalog = tpch::BuildCatalog(config_);
    ASSERT_TRUE(catalog.ok()) << catalog.status();
    engine_ = std::make_unique<Engine>(std::move(*catalog),
                                       NetworkModel::DefaultGeo(5));
    ASSERT_TRUE(
        tpch::InstallUnrestrictedPolicies(&engine_->policies()).ok());
    ASSERT_TRUE(
        tpch::GenerateData(engine_->catalog(), config_, &engine_->store())
            .ok());
  }

  tpch::TpchConfig config_;
  std::unique_ptr<Engine> engine_;
};

// N concurrent workload queries return byte-identical rows and identical
// ship metrics to a sequential run, on both backends; the second
// (concurrent) round is served from the plan cache.
TEST_F(QueryServiceTest, ConcurrentMatchesSequentialOnBothBackends) {
  for (ExecMode mode : {ExecMode::kRow, ExecMode::kFragment}) {
    SCOPED_TRACE(ExecModeToString(mode));
    engine_->set_exec_mode(mode);

    // Sequential cold baseline, before any cache exists.
    std::vector<std::string> sqls;
    std::vector<QueryResult> baseline;
    for (int q : tpch::QueryNumbers()) {
      auto sql = tpch::Query(q);
      ASSERT_TRUE(sql.ok());
      auto r = engine_->Run(*sql);
      ASSERT_TRUE(r.ok()) << "Q" << q << ": " << r.status();
      sqls.push_back(*sql);
      baseline.push_back(std::move(*r));
    }

    ServiceOptions sopts;
    sopts.max_inflight = 4;
    QueryService service(engine_.get(), sopts);
    ASSERT_NE(service.plan_cache(), nullptr);

    // Two waves: the first fills the cache, the second hits it. Within a
    // wave all queries are in flight together.
    for (int wave = 0; wave < 2; ++wave) {
      SCOPED_TRACE("wave " + std::to_string(wave));
      QueryService::Session session = service.OpenSession();
      std::vector<QueryService::TicketId> tickets;
      for (const std::string& sql : sqls) {
        auto t = session.Submit(sql);
        ASSERT_TRUE(t.ok()) << t.status();
        tickets.push_back(*t);
      }
      for (size_t i = 0; i < tickets.size(); ++i) {
        auto r = session.Wait(tickets[i]);
        ASSERT_TRUE(r.ok()) << sqls[i] << ": " << r.status();
        EXPECT_EQ(RenderedRows(*r), RenderedRows(baseline[i])) << sqls[i];
        EXPECT_EQ(r->column_names, baseline[i].column_names);
        // Cached and cold plans make the same shipping decisions.
        EXPECT_EQ(r->metrics.ships, baseline[i].metrics.ships);
        EXPECT_EQ(r->metrics.rows_shipped, baseline[i].metrics.rows_shipped);
        EXPECT_DOUBLE_EQ(r->metrics.bytes_shipped,
                         baseline[i].metrics.bytes_shipped);
        if (wave == 1) {
          EXPECT_TRUE(r->opt_stats.cache_hit) << sqls[i];
        }
      }
    }
    EXPECT_GE(service.plan_cache()->stats().hits,
              static_cast<int64_t>(sqls.size()));

    ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, static_cast<int64_t>(2 * sqls.size()));
    EXPECT_EQ(stats.completed, static_cast<int64_t>(2 * sqls.size()));
    EXPECT_EQ(stats.failed, 0);
    EXPECT_EQ(stats.inflight, 0);
    EXPECT_EQ(stats.queued, 0);
  }
}

TEST_F(QueryServiceTest, QueueWaitTimesOutWithResourceExhausted) {
  ServiceOptions sopts;
  sopts.max_inflight = 1;
  sopts.queue_timeout_ms = 50;
  QueryService service(engine_.get(), sopts);
  QueryService::Session session = service.OpenSession();

  auto slow = session.Submit(kSlowSql);
  ASSERT_TRUE(slow.ok()) << slow.status();
  PollUntilInflight(service, 1);

  // The only worker is busy; this one's queue wait exceeds the bound.
  auto fast = session.Submit("SELECT name FROM region");
  ASSERT_TRUE(fast.ok()) << fast.status();
  auto r = session.Wait(*fast);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted()) << r.status();
  EXPECT_EQ(service.stats().timed_out, 1);

  ASSERT_TRUE(session.Cancel(*slow).ok());
  auto sr = session.Wait(*slow);
  ASSERT_FALSE(sr.ok());
  EXPECT_TRUE(sr.status().IsCancelled()) << sr.status();
}

TEST_F(QueryServiceTest, FullQueueRejectsSubmit) {
  ServiceOptions sopts;
  sopts.max_inflight = 1;
  sopts.queue_capacity = 1;
  sopts.queue_timeout_ms = 0;  // isolate the rejection path
  QueryService service(engine_.get(), sopts);
  QueryService::Session session = service.OpenSession();

  auto running = session.Submit(kSlowSql);
  ASSERT_TRUE(running.ok()) << running.status();
  PollUntilInflight(service, 1);  // dequeued: the queue is empty again

  auto queued = session.Submit(kSlowSql);
  ASSERT_TRUE(queued.ok()) << queued.status();

  auto rejected = session.Submit("SELECT name FROM region");
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsResourceExhausted()) << rejected.status();
  EXPECT_EQ(service.stats().rejected, 1);

  // A queued query cancels instantly, without ever running.
  ASSERT_TRUE(session.Cancel(*queued).ok());
  auto qr = session.Wait(*queued);
  ASSERT_FALSE(qr.ok());
  EXPECT_TRUE(qr.status().IsCancelled()) << qr.status();

  ASSERT_TRUE(session.Cancel(*running).ok());
  auto rr = session.Wait(*running);
  ASSERT_FALSE(rr.ok());
  EXPECT_TRUE(rr.status().IsCancelled()) << rr.status();
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cancelled, 2);
  EXPECT_EQ(stats.inflight, 0);
  EXPECT_EQ(stats.queued, 0);
}

TEST_F(QueryServiceTest, CancelStopsARunningQueryMidExecution) {
  for (ExecMode mode : {ExecMode::kRow, ExecMode::kFragment}) {
    SCOPED_TRACE(ExecModeToString(mode));
    engine_->set_exec_mode(mode);
    QueryService service(engine_.get());
    QueryService::Session session = service.OpenSession();

    auto ticket = session.Submit(kSlowSql);
    ASSERT_TRUE(ticket.ok()) << ticket.status();
    PollUntilInflight(service, 1);

    ASSERT_TRUE(session.Cancel(*ticket).ok());
    auto r = session.Wait(*ticket);
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsCancelled()) << r.status();
    EXPECT_EQ(service.stats().cancelled, 1);
    // The worker is free again: the service still runs queries.
    auto after = session.Run("SELECT name FROM region");
    ASSERT_TRUE(after.ok()) << after.status();
    EXPECT_EQ(after->rows.size(), 5u);
  }
}

TEST_F(QueryServiceTest, TicketsAreSingleUse) {
  QueryService service(engine_.get());
  QueryService::Session session = service.OpenSession();
  auto ticket = session.Submit("SELECT name FROM region");
  ASSERT_TRUE(ticket.ok());
  ASSERT_TRUE(session.Wait(*ticket).ok());
  EXPECT_TRUE(session.Wait(*ticket).status().IsNotFound());
  EXPECT_TRUE(session.Cancel(*ticket).IsNotFound());
  EXPECT_TRUE(session.Wait(999999).status().IsNotFound());
}

TEST_F(QueryServiceTest, FailedQueriesAreCountedNotFatal) {
  QueryService service(engine_.get());
  QueryService::Session session = service.OpenSession();
  auto r = session.Run("SELEC name FROM region");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(service.stats().failed, 1);
  EXPECT_TRUE(session.Run("SELECT name FROM region").ok());
}

// Dynamic policy updates through the service: a policy drop makes the
// affected query non-compliant for new submissions (cached plan
// included), and re-granting restores it.
TEST_F(QueryServiceTest, PolicyUpdatesApplyToSubsequentQueries) {
  QueryService service(engine_.get());
  QueryService::Session session = service.OpenSession();
  // Pin the result away from lineitem's home so the query needs the
  // lineitem policy to ship.
  session.optimizer_options().required_result = LocationSet::Single(0);
  const std::string sql = "SELECT orderkey FROM lineitem WHERE quantity > 49";

  auto cold = session.Run(sql);
  ASSERT_TRUE(cold.ok()) << cold.status();
  auto warm = session.Run(sql);
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_TRUE(warm->opt_stats.cache_hit);
  EXPECT_EQ(RenderedRows(*warm), RenderedRows(*cold));

  // Unrestricted policies install one grant per table at its home;
  // lineitem lives at l4 (location 3).
  ASSERT_EQ(engine_->policies().For(3).size(), 1u);
  int64_t lineitem_policy = engine_->policies().For(3)[0].id;
  ASSERT_TRUE(service.RemovePolicy(lineitem_policy).ok());

  auto denied = session.Run(sql);
  ASSERT_FALSE(denied.ok());
  EXPECT_TRUE(denied.status().IsNonCompliant()) << denied.status();

  ASSERT_TRUE(service.AddPolicy("l4", "ship * from lineitem to *").ok());
  auto regranted = session.Run(sql);
  ASSERT_TRUE(regranted.ok()) << regranted.status();
  EXPECT_EQ(RenderedRows(*regranted), RenderedRows(*cold));
}

// Destroying a service with queued and running work cancels everything
// and leaves the engine cache-free.
TEST_F(QueryServiceTest, ShutdownCancelsOutstandingWork) {
  {
    ServiceOptions sopts;
    sopts.max_inflight = 1;
    QueryService service(engine_.get(), sopts);
    QueryService::Session session = service.OpenSession();
    ASSERT_TRUE(session.Submit(kSlowSql).ok());
    ASSERT_TRUE(session.Submit(kSlowSql).ok());
    PollUntilInflight(service, 1);
  }
  EXPECT_EQ(engine_->plan_cache(), nullptr);
  EXPECT_TRUE(engine_->Run("SELECT name FROM region").ok());
}

}  // namespace
}  // namespace cgq
