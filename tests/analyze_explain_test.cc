#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/explain.h"
#include "exec/analyze.h"

namespace cgq {
namespace {

class AnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Catalog catalog;
    ASSERT_TRUE(catalog.mutable_locations().AddLocation("p").ok());
    ASSERT_TRUE(catalog.mutable_locations().AddLocation("q").ok());
    TableDef t;
    t.name = "data";
    t.schema = Schema({{"k", DataType::kInt64},
                       {"v", DataType::kDouble},
                       {"s", DataType::kString}});
    t.fragments = {TableFragment{0, 0.5}, TableFragment{1, 0.5}};
    t.stats.row_count = 999;  // stale on purpose
    ASSERT_TRUE(catalog.AddTable(t).ok());
    engine_ = std::make_unique<Engine>(std::move(catalog),
                                       NetworkModel::DefaultGeo(2));
    engine_->store().Put(
        0, "data",
        {{Value::Int64(1), Value::Double(1.5), Value::String("aa")},
         {Value::Int64(2), Value::Double(2.5), Value::String("bb")},
         {Value::Int64(2), Value::Null(), Value::String("aa")}});
    engine_->store().Put(
        1, "data",
        {{Value::Int64(3), Value::Double(-4.0), Value::String("cccc")}});
  }
  std::unique_ptr<Engine> engine_;
};

TEST_F(AnalyzeTest, RowCountAndFractions) {
  ASSERT_TRUE(AnalyzeAll(engine_->store(), &engine_->catalog()).ok());
  auto t = engine_->catalog().GetTable("data");
  EXPECT_DOUBLE_EQ((*t)->stats.row_count, 4);
  ASSERT_EQ((*t)->fragments.size(), 2u);
  EXPECT_DOUBLE_EQ((*t)->fragments[0].row_fraction, 0.75);
  EXPECT_DOUBLE_EQ((*t)->fragments[1].row_fraction, 0.25);
}

TEST_F(AnalyzeTest, DistinctCountsAreExact) {
  ASSERT_TRUE(AnalyzeTable(engine_->store(), "data", &engine_->catalog())
                  .ok());
  auto t = engine_->catalog().GetTable("data");
  EXPECT_DOUBLE_EQ((*t)->stats.FindColumn("k")->distinct_count, 3);
  // v: {1.5, 2.5, NULL, -4.0} -> 4 distinct incl. NULL.
  EXPECT_DOUBLE_EQ((*t)->stats.FindColumn("v")->distinct_count, 4);
  EXPECT_DOUBLE_EQ((*t)->stats.FindColumn("s")->distinct_count, 3);
}

TEST_F(AnalyzeTest, MinMaxFromData) {
  ASSERT_TRUE(AnalyzeTable(engine_->store(), "data", &engine_->catalog())
                  .ok());
  auto t = engine_->catalog().GetTable("data");
  const ColumnStats* v = (*t)->stats.FindColumn("v");
  EXPECT_DOUBLE_EQ(*v->min, -4.0);
  EXPECT_DOUBLE_EQ(*v->max, 2.5);
  // Strings have no numeric bounds.
  EXPECT_FALSE((*t)->stats.FindColumn("s")->min.has_value());
}

TEST_F(AnalyzeTest, AverageWidth) {
  ASSERT_TRUE(AnalyzeTable(engine_->store(), "data", &engine_->catalog())
                  .ok());
  auto t = engine_->catalog().GetTable("data");
  // s widths: "aa"=6, "bb"=6, "aa"=6, "cccc"=8 -> avg 6.5.
  EXPECT_DOUBLE_EQ((*t)->stats.FindColumn("s")->avg_width, 6.5);
}

TEST_F(AnalyzeTest, FailsWithoutLoadedFragment) {
  Catalog& catalog = engine_->catalog();
  TableDef t;
  t.name = "empty";
  t.schema = Schema({{"x", DataType::kInt64}});
  t.fragments = {TableFragment{0, 1.0}};
  ASSERT_TRUE(catalog.AddTable(t).ok());
  EXPECT_FALSE(AnalyzeTable(engine_->store(), "empty", &catalog).ok());
}

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Catalog catalog;
    ASSERT_TRUE(catalog.mutable_locations().AddLocation("n").ok());
    ASSERT_TRUE(catalog.mutable_locations().AddLocation("e").ok());
    TableDef c;
    c.name = "cust";
    c.schema = Schema({{"id", DataType::kInt64},
                       {"name", DataType::kString},
                       {"secret", DataType::kString}});
    c.fragments = {TableFragment{0, 1.0}};
    c.stats.row_count = 100;
    ASSERT_TRUE(catalog.AddTable(c).ok());
    TableDef o;
    o.name = "ord";
    o.schema = Schema({{"cust_id", DataType::kInt64},
                       {"total", DataType::kDouble}});
    o.fragments = {TableFragment{1, 1.0}};
    o.stats.row_count = 1000;
    ASSERT_TRUE(catalog.AddTable(o).ok());
    engine_ = std::make_unique<Engine>(std::move(catalog),
                                       NetworkModel::DefaultGeo(2));
    ASSERT_TRUE(engine_->AddPolicy("n", "ship id, name from cust to e").ok());
  }
  std::unique_ptr<Engine> engine_;
};

TEST_F(ExplainTest, NamesGrantingExpression) {
  auto r = engine_->Optimize(
      "SELECT c.name, o.total FROM cust c, ord o WHERE c.id = o.cust_id");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_TRUE(r->compliant);
  PolicyEvaluator evaluator(&engine_->catalog(), &engine_->policies());
  std::string report = ExplainCompliance(*r->plan, evaluator,
                                         engine_->catalog().locations());
  EXPECT_NE(report.find("SHIP n -> e"), std::string::npos) << report;
  EXPECT_NE(report.find("ship id, name from cust to e"), std::string::npos)
      << report;
  EXPECT_NE(report.find("cust.name"), std::string::npos) << report;
  EXPECT_EQ(report.find("VIOLATION"), std::string::npos) << report;
}

TEST_F(ExplainTest, LocalPlanSaysSo) {
  auto r = engine_->Optimize("SELECT c.secret FROM cust c");
  ASSERT_TRUE(r.ok());
  PolicyEvaluator evaluator(&engine_->catalog(), &engine_->policies());
  std::string report = ExplainCompliance(*r->plan, evaluator,
                                         engine_->catalog().locations());
  EXPECT_NE(report.find("fully local"), std::string::npos) << report;
}

TEST_F(ExplainTest, ViolationIsFlaggedInProvenance) {
  // Force a non-compliant plan through the traditional optimizer.
  OptimizerOptions opts;
  opts.compliant = false;
  auto r = engine_->Optimize(
      "SELECT c.secret, o.total FROM cust c, ord o WHERE c.id = o.cust_id",
      opts);
  ASSERT_TRUE(r.ok());
  if (!r->compliant) {
    PolicyEvaluator evaluator(&engine_->catalog(), &engine_->policies());
    std::string report = ExplainCompliance(*r->plan, evaluator,
                                           engine_->catalog().locations());
    EXPECT_NE(report.find("VIOLATION"), std::string::npos) << report;
  }
}

}  // namespace
}  // namespace cgq
